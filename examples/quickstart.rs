//! Quickstart: create a HART over an emulated PM pool, run the four basic
//! operations, and inspect what the selective-persistence design puts
//! where.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hart_suite::{
    Hart, HartConfig, Key, LatencyConfig, PersistentIndex, PmemPool, PoolConfig, Value,
};
use std::sync::Arc;

fn main() -> hart_suite::Result<()> {
    // A 64 MiB emulated PM device with the paper's 300/300 latency profile:
    // every persistent() call and every uncached PM line read is charged.
    let pool = Arc::new(PmemPool::new(PoolConfig {
        size_bytes: 64 * 1024 * 1024,
        latency: LatencyConfig::c300_300(),
        ..PoolConfig::default()
    }));
    let index = Hart::create(Arc::clone(&pool), HartConfig::default())?;

    // Insert: Fig. 1's running example — "AABF" splits into hash key "AA"
    // and ART key "BF".
    index.insert(&Key::from_str("AABF")?, &Value::from_u64(1))?;
    index.insert(&Key::from_str("AACD")?, &Value::from_u64(2))?;
    index.insert(&Key::from_str("AAEG")?, &Value::from_u64(3))?;
    index.insert(&Key::from_str("AAEH")?, &Value::from_u64(4))?;
    index.insert(&Key::from_str("XY12")?, &Value::from_u64(5))?;
    println!(
        "inserted {} records across {} ARTs",
        index.len(),
        index.art_count()
    );

    // Search.
    let got = index.search(&Key::from_str("AABF")?)?.expect("present");
    println!("search(AABF) = {}", got.as_u64());

    // Update (the logged out-of-place protocol of Algorithm 3).
    index.update(&Key::from_str("AABF")?, &Value::new(b"a 16-byte value!")?)?;
    let got = index.search(&Key::from_str("AABF")?)?.expect("present");
    println!(
        "after update  = {:?}",
        String::from_utf8_lossy(got.as_slice())
    );

    // Ordered range scan (extension; the paper's own range query is a
    // per-key search loop — see `multi_get`).
    let hits = index.range(&Key::from_str("AAC")?, &Key::from_str("AAZ")?)?;
    println!(
        "range [AAC, AAZ] -> {:?}",
        hits.iter().map(|(k, _)| k.to_string()).collect::<Vec<_>>()
    );

    // Delete.
    index.remove(&Key::from_str("XY12")?)?;
    println!(
        "after delete: {} records, {} ARTs",
        index.len(),
        index.art_count()
    );

    // Where did everything go? DRAM: hash table + ART inner nodes;
    // PM: 40-byte leaves + value objects in EPallocator chunks.
    let m = index.memory_stats();
    let s = index.pm_stats();
    println!("\nmemory: {m}");
    println!("allocator: {:?}", index.alloc_stats());
    println!("PM events:\n{s}");
    Ok(())
}
