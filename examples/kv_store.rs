//! A small persistent key-value store built on HART — the DRAM-PM hybrid
//! use case the paper's introduction motivates (a KV store "managing user
//! data on a PM device", like HiKV).
//!
//! The example models a session store for a web service:
//! * session tokens (random 16-char keys) map to 16-byte session records;
//! * a write-heavy login storm, a read-heavy steady state, and an expiry
//!   sweep run against the same index;
//! * the "service" then restarts: the store recovers from the PM image and
//!   continues serving.
//!
//! ```text
//! cargo run --release --example kv_store
//! ```

use hart_suite::workloads::{random, value_for};
use hart_suite::{
    Hart, HartConfig, Key, LatencyConfig, PersistentIndex, PmemPool, PoolConfig, Value,
};
use std::sync::Arc;
use std::time::Instant;

const SESSIONS: usize = 100_000;

fn main() -> hart_suite::Result<()> {
    let pool = Arc::new(PmemPool::new(PoolConfig {
        size_bytes: 256 * 1024 * 1024,
        latency: LatencyConfig::c300_300(),
        ..PoolConfig::default()
    }));
    let store = Hart::create(Arc::clone(&pool), HartConfig::default())?;
    let tokens = random(SESSIONS, 2024);

    // Login storm: create sessions.
    let t0 = Instant::now();
    for (i, tok) in tokens.iter().enumerate() {
        let record = session_record(i as u64, 0);
        store.insert(tok, &record)?;
    }
    let dt = t0.elapsed();
    println!(
        "login storm: {} sessions in {:.2}s ({:.2} µs/op)",
        SESSIONS,
        dt.as_secs_f64(),
        dt.as_secs_f64() * 1e6 / SESSIONS as f64
    );

    // Steady state: 80% reads, 20% session refreshes (updates).
    let t0 = Instant::now();
    let mut hits = 0usize;
    for (i, tok) in tokens.iter().enumerate() {
        if i % 5 == 0 {
            store.update(tok, &session_record(i as u64, 1))?;
        } else if store.search(tok)?.is_some() {
            hits += 1;
        }
    }
    let dt = t0.elapsed();
    println!(
        "steady state: {hits} hits, {:.2} µs/op",
        dt.as_secs_f64() * 1e6 / SESSIONS as f64
    );

    // Expiry sweep: evict every 7th session.
    let t0 = Instant::now();
    let mut evicted = 0usize;
    for tok in tokens.iter().step_by(7) {
        if store.remove(tok)? {
            evicted += 1;
        }
    }
    println!(
        "expiry sweep: evicted {evicted} in {:.2}s; {} sessions remain",
        t0.elapsed().as_secs_f64(),
        store.len()
    );
    let live_before = store.len();
    println!("footprint before restart: {}", store.memory_stats());

    // Service restart: drop all DRAM state, recover from the PM image.
    drop(store);
    let t0 = Instant::now();
    let store = Hart::recover(Arc::clone(&pool), HartConfig::default())?;
    println!(
        "restart: recovered {} sessions in {:.3}s",
        store.len(),
        t0.elapsed().as_secs_f64()
    );
    assert_eq!(store.len(), live_before);

    // The store keeps serving: surviving tokens still resolve, evicted
    // tokens do not, and new logins work.
    assert!(store.search(&tokens[1])?.is_some());
    assert!(
        store.search(&tokens[7])?.is_none(),
        "evicted (index 7 is a multiple of 7)"
    );
    let fresh = Key::from_str("fresh-session-0001")?;
    store.insert(&fresh, &value_for(&fresh))?;
    assert!(store.search(&fresh)?.is_some());
    println!("post-restart service checks passed ✓");
    Ok(())
}

/// A 16-byte session record: user id + last-activity counter.
fn session_record(user: u64, refreshes: u64) -> Value {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&user.to_le_bytes());
    bytes[8..].copy_from_slice(&refreshes.to_le_bytes());
    Value::new(&bytes).expect("16 bytes fit")
}
