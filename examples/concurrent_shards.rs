//! Concurrency demo (§III-A.3 / §IV-G): HART keeps one reader-writer lock
//! per ART, so writers on distinct hash prefixes run fully in parallel
//! while readers share.
//!
//! The example measures MIOPS for insert and search at increasing thread
//! counts — a miniature of Fig. 10d — and then runs a mixed
//! readers-plus-writers phase against overlapping ARTs to show the lock
//! protocol under contention.
//!
//! ```text
//! cargo run --release --example concurrent_shards
//! ```

use hart_suite::workloads::{random, value_for};
use hart_suite::{Hart, HartConfig, LatencyConfig, PersistentIndex, PmemPool, PoolConfig};
use std::sync::Arc;
use std::time::Instant;

const N: usize = 200_000;

fn main() -> hart_suite::Result<()> {
    let keys = random(N, 7);
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    println!("host parallelism: {cores} threads\n");
    println!(
        "{:>8}  {:>14}  {:>14}",
        "threads", "insert MIOPS", "search MIOPS"
    );

    let mut baseline: Option<(f64, f64)> = None;
    for threads in [1usize, 2, 4, 8, 16] {
        if threads > cores * 2 {
            break;
        }
        // Fresh tree per row, 300/100 like the paper's Fig. 10d.
        let pool = Arc::new(PmemPool::new(PoolConfig {
            size_bytes: 256 * 1024 * 1024,
            latency: LatencyConfig::c300_100(),
            ..PoolConfig::default()
        }));
        let tree = Arc::new(Hart::create(pool, HartConfig::default())?);

        let chunk = N.div_ceil(threads);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for part in keys.chunks(chunk) {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for k in part {
                        tree.insert(k, &value_for(k)).expect("insert");
                    }
                });
            }
        });
        let ins = N as f64 / t0.elapsed().as_secs_f64() / 1e6;

        let t0 = Instant::now();
        std::thread::scope(|s| {
            for part in keys.chunks(chunk) {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for k in part {
                        std::hint::black_box(tree.search(k).expect("search"));
                    }
                });
            }
        });
        let srch = N as f64 / t0.elapsed().as_secs_f64() / 1e6;

        let (b_ins, b_srch) = *baseline.get_or_insert((ins, srch));
        println!(
            "{threads:>8}  {ins:>10.2} ({:>4.2}x)  {srch:>9.2} ({:>4.2}x)",
            ins / b_ins,
            srch / b_srch
        );
        assert_eq!(tree.len(), N);
        tree.check_consistency()
            .expect("consistent after concurrent phase");
    }

    // Contended phase: all threads hammer the same keyspace with mixed ops.
    println!("\ncontended mixed phase (same ARTs, reads + writes)...");
    let pool = Arc::new(PmemPool::new(PoolConfig {
        size_bytes: 256 * 1024 * 1024,
        latency: LatencyConfig::c300_100(),
        ..PoolConfig::default()
    }));
    let tree = Arc::new(Hart::create(pool, HartConfig::default())?);
    for k in &keys[..N / 4] {
        tree.insert(k, &value_for(k))?;
    }
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..cores.min(8) {
            let tree = Arc::clone(&tree);
            let keys = &keys;
            s.spawn(move || {
                for (i, k) in keys[..N / 4].iter().enumerate() {
                    match (i + t) % 4 {
                        0 => {
                            tree.update(k, &value_for(k)).expect("update");
                        }
                        _ => {
                            std::hint::black_box(tree.search(k).expect("search"));
                        }
                    }
                }
            });
        }
    });
    println!(
        "mixed phase done in {:.2}s; {} records, {} ARTs, consistent: {}",
        t0.elapsed().as_secs_f64(),
        tree.len(),
        tree.art_count(),
        tree.check_consistency().is_ok()
    );
    Ok(())
}
