//! Crash recovery: exercise the paper's failure-atomicity story end to end
//! using the pool's shadow-image crash simulation.
//!
//! 1. Insert a batch of records (each completed insert is durable the
//!    moment Algorithm 1 sets the leaf bit).
//! 2. Stage a *torn* insert — crash after the value bit is set but before
//!    the leaf bit (the exact window Algorithm 2's scrub handles).
//! 3. Stage a *torn* update — crash with the update log fully recorded
//!    (the roll-forward case of Algorithm 3's recovery analysis).
//! 4. Power-fail, recover with Algorithm 7, and verify: completed work
//!    survives, the torn insert vanished without leaking PM, the torn
//!    update rolled forward.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use hart_suite::epalloc::{
    leaf_write_key, leaf_write_pvalue, persist_leaf_key, persist_leaf_pvalue, ObjClass,
};
use hart_suite::{
    Hart, HartConfig, Key, LatencyConfig, PersistentIndex, PmemPool, PoolConfig, Value,
};
use std::sync::Arc;

fn main() -> hart_suite::Result<()> {
    let pool = Arc::new(PmemPool::new(PoolConfig {
        size_bytes: 64 * 1024 * 1024,
        latency: LatencyConfig::c300_100(),
        crash_sim: true,
        ..PoolConfig::default()
    }));
    let index = Hart::create(Arc::clone(&pool), HartConfig::default())?;

    // 1. Committed records.
    const N: u64 = 10_000;
    for i in 0..N {
        index.insert(&Key::from_u64_base62(i, 8), &Value::from_u64(i))?;
    }
    println!("inserted {N} records; allocator: {:?}", index.alloc_stats());

    // 2. A torn insert: replicate Algorithm 1 up to line 16, then "crash"
    //    before line 18 sets the leaf bit. The value bit IS set — this is
    //    the paper's persistent-leak scenario.
    let torn_key = Key::from_str("TORN-INSERT")?;
    {
        let alloc = index.epallocator();
        let leaf = alloc.alloc(ObjClass::Leaf)?;
        let vptr = alloc.alloc(ObjClass::Value8)?;
        pool.write(vptr, &999u64);
        pool.persist_val::<u64>(vptr);
        leaf_write_pvalue(&pool, leaf, vptr, 8);
        persist_leaf_pvalue(&pool, leaf);
        alloc.commit(vptr, ObjClass::Value8); // value bit set...
        leaf_write_key(&pool, leaf, &torn_key);
        persist_leaf_key(&pool, leaf);
        // ...crash before the leaf bit.
    }

    // 3. A torn update: log fully recorded, new value committed, but the
    //    leaf's value pointer not yet swung.
    let updated_key = Key::from_u64_base62(42, 8);
    {
        let alloc = index.epallocator();
        let leaf = index.leaf_of(&updated_key).expect("present");
        let old_v = hart_suite::epalloc::leaf_read_pvalue(&pool, leaf);
        let ulog = alloc.acquire_ulog();
        ulog.record_leaf(leaf);
        ulog.record_old(old_v);
        let new_v = alloc.alloc(ObjClass::Value8)?;
        pool.write(new_v, &777_777u64);
        pool.persist_val::<u64>(new_v);
        ulog.record_new(new_v, 8, ObjClass::Value8, ObjClass::Value8);
        alloc.commit(new_v, ObjClass::Value8);
        std::mem::forget(ulog); // leave the PM log record in place
    }

    println!("unpersisted cache lines at crash: {}", pool.dirty_lines());
    pool.simulate_crash();
    println!("-- power failure --");

    // 4. Recover (Algorithm 7 + log replay + leak scrub).
    let recovered = Hart::recover(Arc::clone(&pool), HartConfig::default())?;
    println!(
        "recovered {} records across {} ARTs",
        recovered.len(),
        recovered.art_count()
    );

    assert_eq!(
        recovered.len(),
        N as usize,
        "every committed record survives"
    );
    for i in (0..N).step_by(997) {
        let got = recovered
            .search(&Key::from_u64_base62(i, 8))?
            .expect("survives");
        if i != 42 {
            assert_eq!(got.as_u64(), i);
        }
    }
    assert_eq!(
        recovered.search(&torn_key)?,
        None,
        "torn insert must vanish"
    );
    let rolled = recovered.search(&updated_key)?.expect("present");
    assert_eq!(rolled.as_u64(), 777_777, "torn update must roll forward");

    // No persistent leak: exactly N leaves and N values remain live.
    let s = recovered.alloc_stats();
    assert_eq!(s.live[0], N, "leaf count");
    assert_eq!(s.live[1] + s.live[2], N, "value count — nothing leaked");
    recovered
        .check_consistency()
        .expect("post-recovery consistency");

    println!("torn insert scrubbed, torn update rolled forward, no PM leaked ✓");
    println!("post-recovery allocator: {s:?}");
    Ok(())
}
