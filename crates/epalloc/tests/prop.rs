//! Property-based tests for EPallocator: no double hand-outs, exact live
//! accounting, chunk reclamation, and crash-at-any-point leak freedom.

use hart_epalloc::{EPallocator, ObjClass, OBJS_PER_CHUNK};
use hart_pm::{PmPtr, PmemPool, PoolConfig};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

#[derive(Clone, Copy, Debug)]
enum Op {
    Alloc(u8),  // class index 0..3
    Commit(u8), // commit the i-th oldest reserved object (mod live)
    Abort(u8),
    Retire(u8),  // retire the i-th oldest committed object
    Recycle(u8), // try recycling the chunk of a committed/retired object
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..3).prop_map(Op::Alloc),
        any::<u8>().prop_map(Op::Commit),
        any::<u8>().prop_map(Op::Abort),
        any::<u8>().prop_map(Op::Retire),
        any::<u8>().prop_map(Op::Recycle),
    ]
}

fn pool() -> Arc<PmemPool> {
    Arc::new(PmemPool::new(PoolConfig {
        alloc_overhead_ns: 0,
        ..PoolConfig::test_small()
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn alloc_state_machine(ops in vec(arb_op(), 1..300)) {
        let alloc = EPallocator::create(pool());
        // Model: reserved and committed object sets per class.
        let mut reserved: [Vec<PmPtr>; 3] = Default::default();
        let mut committed: [Vec<PmPtr>; 3] = Default::default();

        for op in ops {
            match op {
                Op::Alloc(ci) => {
                    let class = ObjClass::from_idx(ci as usize);
                    let p = alloc.alloc(class).unwrap();
                    // Never hand out something already outstanding.
                    prop_assert!(!reserved[ci as usize].contains(&p), "double reserve");
                    prop_assert!(!committed[ci as usize].contains(&p), "reserve of live");
                    reserved[ci as usize].push(p);
                }
                Op::Commit(sel) => {
                    let ci = (sel % 3) as usize;
                    if !reserved[ci].is_empty() {
                        let p = reserved[ci].remove(sel as usize % reserved[ci].len());
                        alloc.commit(p, ObjClass::from_idx(ci));
                        committed[ci].push(p);
                    }
                }
                Op::Abort(sel) => {
                    let ci = (sel % 3) as usize;
                    if !reserved[ci].is_empty() {
                        let p = reserved[ci].remove(sel as usize % reserved[ci].len());
                        alloc.abort(p, ObjClass::from_idx(ci));
                    }
                }
                Op::Retire(sel) => {
                    let ci = (sel % 3) as usize;
                    if !committed[ci].is_empty() {
                        let p = committed[ci].remove(sel as usize % committed[ci].len());
                        alloc.retire(p, ObjClass::from_idx(ci));
                    }
                }
                Op::Recycle(sel) => {
                    let ci = (sel % 3) as usize;
                    if !committed[ci].is_empty() {
                        let p = committed[ci][sel as usize % committed[ci].len()];
                        // Must refuse: the chunk holds a committed object.
                        prop_assert!(!alloc.recycle_containing(p, ObjClass::from_idx(ci)));
                    }
                }
            }
            // Live accounting matches the model exactly.
            for (ci, objs) in committed.iter().enumerate() {
                prop_assert_eq!(
                    alloc.live_count(ObjClass::from_idx(ci)),
                    objs.len() as u64,
                    "class {} live count", ci
                );
            }
        }
        // Enumeration agrees with the model.
        for (ci, objs) in committed.iter().enumerate() {
            let mut listed = Vec::new();
            alloc.for_each_live(ObjClass::from_idx(ci), |p| listed.push(p));
            let listed: BTreeSet<PmPtr> = listed.into_iter().collect();
            let expect: BTreeSet<PmPtr> = objs.iter().copied().collect();
            prop_assert_eq!(listed, expect);
        }
    }

    #[test]
    fn full_lifecycle_reclaims_all_chunks(
        n in 1usize..200,
        class_sel in 0u8..3,
    ) {
        let class = ObjClass::from_idx(class_sel as usize);
        let alloc = EPallocator::create(pool());
        let mut objs = Vec::new();
        for _ in 0..n {
            let p = alloc.alloc(class).unwrap();
            alloc.commit(p, class);
            objs.push(p);
        }
        let expected_chunks = n.div_ceil(OBJS_PER_CHUNK as usize);
        prop_assert_eq!(alloc.stats().chunks[class.idx()], expected_chunks);
        for p in &objs {
            alloc.retire(*p, class);
        }
        for p in &objs {
            alloc.recycle_containing(*p, class);
        }
        prop_assert_eq!(alloc.stats().chunks[class.idx()], 0);
        prop_assert_eq!(alloc.live_count(class), 0);
    }

    #[test]
    fn crash_preserves_exactly_the_committed(
        commit_mask in vec(any::<bool>(), 1..150),
    ) {
        let pm = Arc::new(PmemPool::new(PoolConfig {
            alloc_overhead_ns: 0,
            ..PoolConfig::test_crash()
        }));
        let alloc = EPallocator::create(Arc::clone(&pm));
        let mut expected = BTreeSet::new();
        for commit in &commit_mask {
            let p = alloc.alloc(ObjClass::Value16).unwrap();
            if *commit {
                alloc.commit(p, ObjClass::Value16);
                expected.insert(p);
            }
            // Uncommitted reservations simply evaporate at the crash.
        }
        drop(alloc);
        pm.simulate_crash();
        let re = EPallocator::open(pm).unwrap();
        let mut live = BTreeSet::new();
        re.for_each_live(ObjClass::Value16, |p| { live.insert(p); });
        prop_assert_eq!(live, expected);
    }
}
