//! Micro-log guards: the update log of Algorithm 3 and the recycle log of
//! Algorithm 6.
//!
//! The paper's `GetMicroLog(UPDATE)` / `GetMicroLog(RECYCLE)` hand out a
//! persistent log record; this module wraps a slot from the root page's log
//! pool in an RAII guard. **Dropping a guard without calling
//! [`UlogGuard::finish`] releases the volatile slot but leaves the PM record
//! intact** — deliberately, so a simulated crash between log writes leaves
//! exactly the bytes recovery will see (`EPallocator::open` replays every
//! non-empty slot).

use crate::chunk::ObjClass;
use crate::root::{
    Root, UlogMeta, RLOG_CLASS, RLOG_PCURRENT, RLOG_PPREV, RLOG_SIZE, ULOG_META, ULOG_PLEAF,
    ULOG_PNEWV, ULOG_POLDV, ULOG_SIZE,
};
use hart_pm::{PmPtr, PmemPool};
use parking_lot::{Condvar, Mutex};

/// Volatile free-slot manager for a log pool.
pub(crate) struct SlotPool {
    free: Mutex<Vec<usize>>,
    cv: Condvar,
}

impl SlotPool {
    pub fn new(n: usize) -> SlotPool {
        SlotPool {
            free: Mutex::new_ranked(
                (0..n).collect(),
                parking_lot::rank::LOG_SLOTS,
                false,
                "SlotPool.free",
            ),
            cv: Condvar::new(),
        }
    }

    /// Take a slot, waiting if every slot is in use (bounded by the number
    /// of concurrent writers, so waits are rare and short).
    pub fn acquire(&self) -> usize {
        let mut free = self.free.lock();
        loop {
            if let Some(s) = free.pop() {
                return s;
            }
            self.cv.wait(&mut free);
        }
    }

    pub fn release(&self, slot: usize) {
        self.free.lock().push(slot);
        self.cv.notify_one();
    }
}

/// RAII guard over a persistent update-log record (Algorithm 3).
pub struct UlogGuard<'a> {
    pub(crate) pool: &'a PmemPool,
    pub(crate) root: Root,
    pub(crate) slots: &'a SlotPool,
    pub(crate) slot: usize,
    finished: bool,
}

impl<'a> UlogGuard<'a> {
    pub(crate) fn new(pool: &'a PmemPool, root: Root, slots: &'a SlotPool) -> UlogGuard<'a> {
        let slot = slots.acquire();
        UlogGuard {
            pool,
            root,
            slots,
            slot,
            finished: false,
        }
    }

    #[inline]
    fn base(&self) -> PmPtr {
        self.root.ulog_ptr(self.slot)
    }

    /// Algorithm 3 line 2: record the leaf under update.
    pub fn record_leaf(&self, leaf: PmPtr) {
        let p = self.base().add(ULOG_PLEAF);
        self.pool.write_u64_atomic(p, leaf.offset());
        self.pool.persist(p, 8);
    }

    /// Algorithm 3 line 3: record the old value.
    pub fn record_old(&self, old_value: PmPtr) {
        let p = self.base().add(ULOG_POLDV);
        self.pool.write_u64_atomic(p, old_value.offset());
        self.pool.persist(p, 8);
    }

    /// Algorithm 3 line 6: record the new value. The metadata word (value
    /// classes + length) and `PNewV` are adjacent and flushed with one
    /// `persistent()` call, which is crash-atomic in this emulation, so
    /// recovery may trust the metadata whenever `PNewV` is non-null.
    pub fn record_new(
        &self,
        new_value: PmPtr,
        new_len: usize,
        new_class: ObjClass,
        old_class: ObjClass,
    ) {
        // The new value must be durable before the log points at it:
        // recovery trusts `PNewV` unconditionally (pm-check asserts this;
        // no-op otherwise).
        if !new_value.is_null() {
            self.pool.check_durable(new_value, new_len.max(1));
        }
        let meta = UlogMeta {
            new_len: new_len as u8,
            new_class: new_class.idx() as u8,
            old_class: old_class.idx() as u8,
        };
        self.pool
            .write_u64_atomic(self.base().add(ULOG_META), meta.pack());
        self.pool
            .write_u64_atomic(self.base().add(ULOG_PNEWV), new_value.offset());
        self.pool.persist(self.base().add(ULOG_PNEWV), 16);
    }

    /// Algorithm 3 line 11 (`LogReclaim`): zero + persist the record, then
    /// release the slot.
    pub fn finish(mut self) {
        self.pool.write_zeros(self.base(), ULOG_SIZE as usize);
        self.pool.persist(self.base(), ULOG_SIZE as usize);
        self.finished = true;
        // Drop releases the slot.
    }
}

impl Drop for UlogGuard<'_> {
    fn drop(&mut self) {
        // PM record deliberately left as-is when not finished (crash tests).
        self.slots.release(self.slot);
    }
}

/// RAII guard over a persistent recycle-log record (Algorithm 6).
pub struct RlogGuard<'a> {
    pub(crate) pool: &'a PmemPool,
    pub(crate) root: Root,
    pub(crate) slots: &'a SlotPool,
    pub(crate) slot: usize,
}

impl<'a> RlogGuard<'a> {
    pub(crate) fn new(pool: &'a PmemPool, root: Root, slots: &'a SlotPool) -> RlogGuard<'a> {
        let slot = slots.acquire();
        RlogGuard {
            pool,
            root,
            slots,
            slot,
        }
    }

    #[inline]
    fn base(&self) -> PmPtr {
        self.root.rlog_ptr(self.slot)
    }

    /// Algorithm 6 line 4: record the chunk being unlinked. The class is
    /// persisted strictly before `PCurrent` so recovery may trust it.
    pub fn record_current(&self, chunk: PmPtr, class: ObjClass) {
        let pc = self.base().add(RLOG_CLASS);
        self.pool.write_u64_atomic(pc, class.idx() as u64);
        self.pool.persist(pc, 8);
        let p = self.base().add(RLOG_PCURRENT);
        self.pool.write_u64_atomic(p, chunk.offset());
        self.pool.persist(p, 8);
    }

    /// Algorithm 6 line 9: record the predecessor chunk.
    pub fn record_prev(&self, prev: PmPtr) {
        let p = self.base().add(RLOG_PPREV);
        self.pool.write_u64_atomic(p, prev.offset());
        self.pool.persist(p, 8);
    }

    /// Algorithm 6 line 12 (`LogReclaim`).
    pub fn finish(self) {
        self.pool.write_zeros(self.base(), RLOG_SIZE as usize);
        self.pool.persist(self.base(), RLOG_SIZE as usize);
    }
}

impl Drop for RlogGuard<'_> {
    fn drop(&mut self) {
        self.slots.release(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_pool_roundtrip() {
        let p = SlotPool::new(3);
        let a = p.acquire();
        let b = p.acquire();
        let c = p.acquire();
        assert_eq!(
            {
                let mut v = vec![a, b, c];
                v.sort_unstable();
                v
            },
            vec![0, 1, 2]
        );
        p.release(b);
        assert_eq!(p.acquire(), b);
    }

    #[test]
    fn slot_pool_blocks_until_release() {
        use std::sync::Arc;
        use std::time::Duration;
        let p = Arc::new(SlotPool::new(1));
        let a = p.acquire();
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || p2.acquire());
        std::thread::sleep(Duration::from_millis(20));
        p.release(a);
        assert_eq!(h.join().unwrap(), a);
    }
}
