//! `fsck`-style deep verification of an EPallocator PM image.
//!
//! Run after `open()` (so micro-logs are already replayed) to validate
//! every persistent structure the paper's design relies on:
//!
//! * chunk lists are acyclic, aligned and in-bounds;
//! * each chunk header is internally consistent (full indicator matches
//!   the bitmap; the next-free hint points at a free slot);
//! * every live leaf holds a valid key, and its `p_value` points at a
//!   properly aligned, *committed* value object;
//! * no two live leaves share a value object (ownership is unique);
//! * every committed value object is owned by exactly one live leaf
//!   (no persistent leaks — the paper's §III-A.6 guarantee).

use crate::chunk::{ChunkHeader, Geometry, ObjClass, OBJS_PER_CHUNK};
use crate::epalloc::EPallocator;
use crate::leaf::{leaf_read_key, leaf_read_pvalue, leaf_read_val_len};
use hart_kv::MAX_KEY_LEN;
use hart_pm::PmPtr;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Outcome of a verification pass.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Chunks per class.
    pub chunks: [usize; 3],
    /// Committed objects per class.
    pub live: [u64; 3],
    /// Value objects owned by a live leaf.
    pub owned_values: u64,
    /// Every problem found (empty = healthy image).
    pub errors: Vec<String>,
}

impl FsckReport {
    /// True when no problems were found.
    pub fn is_healthy(&self) -> bool {
        self.errors.is_empty()
    }
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chunks: leaf={} v8={} v16={}",
            self.chunks[0], self.chunks[1], self.chunks[2]
        )?;
        writeln!(
            f,
            "live objects: leaf={} v8={} v16={} (values owned: {})",
            self.live[0], self.live[1], self.live[2], self.owned_values
        )?;
        if self.is_healthy() {
            write!(f, "image healthy ✓")
        } else {
            writeln!(f, "{} problem(s):", self.errors.len())?;
            for e in &self.errors {
                writeln!(f, "  - {e}")?;
            }
            Ok(())
        }
    }
}

impl EPallocator {
    /// Deep-verify the persistent image. Read-only; safe on a live
    /// allocator only when no writers are active.
    pub fn verify(&self) -> FsckReport {
        let mut rep = FsckReport::default();
        let pool = self.pool();
        let cap = pool.capacity() as u64;

        // Pass 1: chunk lists per class.
        let mut live_objects: [Vec<PmPtr>; 3] = Default::default();
        for class in ObjClass::ALL {
            let geo = Geometry::of(class);
            let mut seen: HashSet<u64> = HashSet::new();
            self.for_each_chunk(class, |chunk, hdr| {
                rep.chunks[class.idx()] += 1;
                if !seen.insert(chunk.offset()) {
                    rep.errors
                        .push(format!("{class:?}: cycle at chunk {chunk:?}"));
                }
                if chunk.offset() % geo.align != 0 {
                    rep.errors
                        .push(format!("{class:?}: misaligned chunk {chunk:?}"));
                }
                if chunk.offset() + geo.chunk_bytes as u64 > cap {
                    rep.errors
                        .push(format!("{class:?}: chunk {chunk:?} out of bounds"));
                }
                check_header(class, chunk, hdr, &mut rep);
                let mut bits = hdr.bitmap();
                while bits != 0 {
                    let idx = bits.trailing_zeros() as u64;
                    bits &= bits - 1;
                    live_objects[class.idx()].push(geo.obj_ptr(chunk, idx));
                }
            });
            // Guard against unbounded/corrupt lists.
            if rep.chunks[class.idx()] > (cap / geo.align.max(1)) as usize + 1 {
                rep.errors
                    .push(format!("{class:?}: chunk list longer than the pool allows"));
            }
            rep.live[class.idx()] = live_objects[class.idx()].len() as u64;
        }

        // Pass 2: leaf contents + value ownership.
        let mut value_owner: HashMap<u64, PmPtr> = HashMap::new();
        for &leaf in &live_objects[ObjClass::Leaf.idx()] {
            let key = leaf_read_key(pool, leaf);
            if key.is_empty() || key.len() > MAX_KEY_LEN {
                rep.errors
                    .push(format!("leaf {leaf:?}: invalid key length {}", key.len()));
            }
            if key.as_slice().contains(&0) {
                rep.errors
                    .push(format!("leaf {leaf:?}: NUL byte inside key"));
            }
            let pv = leaf_read_pvalue(pool, leaf);
            if pv.is_null() {
                rep.errors
                    .push(format!("leaf {leaf:?}: live leaf with null p_value"));
                continue;
            }
            let vlen = leaf_read_val_len(pool, leaf);
            if vlen > 16 {
                rep.errors
                    .push(format!("leaf {leaf:?}: value length {vlen} out of range"));
            }
            let vclass = ObjClass::for_value_len(vlen);
            let vgeo = Geometry::of(vclass);
            if pv.offset() + vgeo.obj_size > cap {
                rep.errors
                    .push(format!("leaf {leaf:?}: p_value {pv:?} out of bounds"));
                continue;
            }
            let (vchunk, _) = vgeo.locate(pv);
            let delta = pv.offset() - vchunk.offset();
            if delta < 16 || !(delta - 16).is_multiple_of(vgeo.obj_size) {
                rep.errors.push(format!(
                    "leaf {leaf:?}: p_value {pv:?} not at a {vclass:?} object boundary"
                ));
                continue;
            }
            if !self.is_live(pv, vclass) {
                rep.errors
                    .push(format!("leaf {leaf:?}: value {pv:?} has no committed bit"));
            }
            if let Some(prev) = value_owner.insert(pv.offset(), leaf) {
                rep.errors.push(format!(
                    "value {pv:?} owned by two leaves: {prev:?} and {leaf:?}"
                ));
            }
        }
        rep.owned_values = value_owner.len() as u64;

        // Pass 3: leak check — every committed value must be owned.
        for class in [ObjClass::Value8, ObjClass::Value16] {
            for &v in &live_objects[class.idx()] {
                if !value_owner.contains_key(&v.offset()) {
                    rep.errors
                        .push(format!("{class:?} object {v:?} is leaked (no owner)"));
                }
            }
        }
        rep
    }
}

fn check_header(class: ObjClass, chunk: PmPtr, hdr: ChunkHeader, rep: &mut FsckReport) {
    let full = hdr.popcount() as u64 == OBJS_PER_CHUNK;
    if full != hdr.is_full() {
        rep.errors.push(format!(
            "{class:?} chunk {chunk:?}: full indicator {} but {} objects used",
            hdr.is_full(),
            hdr.popcount()
        ));
    }
    if !full {
        let hint = hdr.next_free_hint();
        if hint >= OBJS_PER_CHUNK || hdr.is_set(hint) {
            rep.errors.push(format!(
                "{class:?} chunk {chunk:?}: next-free hint {hint} points at a used slot"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leaf::{leaf_write_key, leaf_write_pvalue, persist_leaf_key, persist_leaf_pvalue};
    use hart_kv::Key;
    use hart_pm::{PmemPool, PoolConfig};
    use std::sync::Arc;

    fn setup() -> (Arc<PmemPool>, EPallocator) {
        let pool = Arc::new(PmemPool::new(PoolConfig::test_small()));
        let alloc = EPallocator::create(Arc::clone(&pool));
        (pool, alloc)
    }

    fn make_record(pool: &PmemPool, alloc: &EPallocator, key: &str, v: u64) -> PmPtr {
        let leaf = alloc.alloc(ObjClass::Leaf).unwrap();
        let val = alloc.alloc(ObjClass::Value8).unwrap();
        pool.write(val, &v);
        pool.persist_val::<u64>(val);
        leaf_write_pvalue(pool, leaf, val, 8);
        persist_leaf_pvalue(pool, leaf);
        alloc.commit(val, ObjClass::Value8);
        leaf_write_key(pool, leaf, &Key::from_str(key).unwrap());
        persist_leaf_key(pool, leaf);
        alloc.commit(leaf, ObjClass::Leaf);
        leaf
    }

    #[test]
    fn healthy_image_verifies() {
        let (pool, alloc) = setup();
        for i in 0..100 {
            make_record(&pool, &alloc, &format!("key{i:03}"), i);
        }
        let rep = alloc.verify();
        assert!(rep.is_healthy(), "{rep}");
        assert_eq!(rep.live[0], 100);
        assert_eq!(rep.owned_values, 100);
        assert!(rep.to_string().contains("healthy"));
    }

    #[test]
    fn empty_allocator_is_healthy() {
        let (_pool, alloc) = setup();
        let rep = alloc.verify();
        assert!(rep.is_healthy());
        assert_eq!(rep.chunks, [0, 0, 0]);
    }

    #[test]
    fn detects_leaked_value() {
        let (pool, alloc) = setup();
        make_record(&pool, &alloc, "good", 1);
        // A committed value that no leaf owns.
        let orphan = alloc.alloc(ObjClass::Value8).unwrap();
        pool.write(orphan, &9u64);
        pool.persist_val::<u64>(orphan);
        alloc.commit(orphan, ObjClass::Value8);
        let rep = alloc.verify();
        assert!(!rep.is_healthy());
        assert!(rep.errors.iter().any(|e| e.contains("leaked")), "{rep}");
    }

    #[test]
    fn detects_null_pvalue_on_live_leaf() {
        let (pool, alloc) = setup();
        let leaf = alloc.alloc(ObjClass::Leaf).unwrap();
        leaf_write_key(&pool, leaf, &Key::from_str("bad").unwrap());
        persist_leaf_key(&pool, leaf);
        alloc.commit(leaf, ObjClass::Leaf); // committed without a value
        let rep = alloc.verify();
        assert!(
            rep.errors.iter().any(|e| e.contains("null p_value")),
            "{rep}"
        );
    }

    #[test]
    fn detects_shared_value() {
        let (pool, alloc) = setup();
        let l1 = make_record(&pool, &alloc, "one", 1);
        let l2 = make_record(&pool, &alloc, "two", 2);
        // Corrupt: point leaf 2 at leaf 1's value.
        let pv1 = leaf_read_pvalue(&pool, l1);
        leaf_write_pvalue(&pool, l2, pv1, 8);
        persist_leaf_pvalue(&pool, l2);
        let rep = alloc.verify();
        assert!(rep.errors.iter().any(|e| e.contains("two leaves")), "{rep}");
        // The abandoned value of leaf 2 is now leaked too.
        assert!(rep.errors.iter().any(|e| e.contains("leaked")), "{rep}");
    }

    #[test]
    fn detects_corrupt_header() {
        let (pool, alloc) = setup();
        let leaf = make_record(&pool, &alloc, "x", 1);
        let geo = Geometry::of(ObjClass::Leaf);
        let (chunk, _) = geo.locate(leaf);
        // Flip the full indicator on a non-full chunk.
        let hdr = ChunkHeader::load(&pool, chunk);
        pool.write(chunk, &(hdr.0 | (0b01 << 62)));
        pool.persist(chunk, 8);
        let rep = alloc.verify();
        assert!(
            rep.errors.iter().any(|e| e.contains("full indicator")),
            "{rep}"
        );
    }
}
