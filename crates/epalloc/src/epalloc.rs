//! The allocator core: Algorithm 2 (`EPMalloc`), Algorithm 6 (`EPRecycle`),
//! and the recovery-side log replay.

use crate::chunk::{ChunkHeader, Geometry, ObjClass, OBJS_PER_CHUNK};
use crate::leaf::{leaf_read_pvalue, leaf_read_val_len, leaf_write_pvalue, persist_leaf_pvalue};
use crate::logs::{RlogGuard, SlotPool, UlogGuard};
use crate::root::{
    Root, UlogMeta, N_RLOGS, N_ULOGS, RLOG_CLASS, RLOG_PCURRENT, RLOG_SIZE, ULOG_META, ULOG_PLEAF,
    ULOG_PNEWV, ULOG_POLDV, ULOG_SIZE,
};
use hart_kv::{Error, Result};
use hart_pm::{PmPtr, PmemPool};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const BITMAP_MASK: u64 = (1 << OBJS_PER_CHUNK) - 1;

/// Volatile per-class state: reservation masks for handed-out-but-not-yet-
/// committed objects, plus a cache of chunks known to have free slots. A
/// crash drops both — reservations are what make the allocation protocol
/// leak-free, and the free-chunk cache is rebuilt from the persistent
/// bitmaps on open.
///
/// The cache keeps `EPMalloc` O(1): without it, Algorithm 2's list walk
/// degenerates to O(#chunks) per allocation once retired slots accumulate
/// in old chunks (e.g. during the paper's update phases).
#[derive(Default)]
struct ClassState {
    reserved: HashMap<u64, u64>,
    free_hints: BTreeSet<u64>,
}

impl ClassState {
    /// Reserve a free slot in `chunk` if one exists, maintaining the
    /// free-chunk cache. Returns the chosen object index.
    fn try_reserve(&mut self, hdr: ChunkHeader, chunk: PmPtr) -> Option<u64> {
        let reserved = self.reserved.get(&chunk.offset()).copied().unwrap_or(0);
        let free = !(hdr.bitmap() | reserved) & BITMAP_MASK;
        if free == 0 {
            self.free_hints.remove(&chunk.offset());
            return None;
        }
        let hint = hdr.next_free_hint();
        let idx = if hint < OBJS_PER_CHUNK && free & (1 << hint) != 0 {
            hint
        } else {
            free.trailing_zeros() as u64
        };
        *self.reserved.entry(chunk.offset()).or_insert(0) |= 1 << idx;
        if free & !(1 << idx) == 0 {
            self.free_hints.remove(&chunk.offset());
        } else {
            self.free_hints.insert(chunk.offset());
        }
        Some(idx)
    }
}

/// Aggregate allocator statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Committed (bitmap-set) objects per class `[LEAF, VALUE8, VALUE16]`.
    pub live: [u64; 3],
    /// Chunks currently linked per class.
    pub chunks: [usize; 3],
}

/// The enhanced persistent memory allocator (§III-A.4).
///
/// Thread safety: each object class has its own mutex guarding both the
/// volatile reservations and its persistent chunk list, so leaf and value
/// allocations on different classes proceed in parallel while list surgery
/// stays serialized per class.
pub struct EPallocator {
    pool: Arc<PmemPool>,
    root: Root,
    classes: [Mutex<ClassState>; 3],
    live: [AtomicU64; 3],
    ulog_slots: SlotPool,
    rlog_slots: SlotPool,
    /// Observability sink for alloc/commit/retire/recycle/ulog rates; inert
    /// until [`EPallocator::with_recorder`] replaces it.
    obs: hart_obs::Recorder,
}

impl EPallocator {
    /// Format a fresh pool and return an allocator over it.
    pub fn create(pool: Arc<PmemPool>) -> EPallocator {
        let root = Root::format(&pool);
        EPallocator::build(pool, root)
    }

    /// Open an existing pool: validate the root page, replay unfinished
    /// micro-logs, scrub stale leaf slots, and recount live objects.
    pub fn open(pool: Arc<PmemPool>) -> Result<EPallocator> {
        let root = Root::check(&pool)?;
        // Volatile free lists did not survive the "crash".
        pool.reset_volatile_alloc();
        let alloc = EPallocator::build(pool, root);
        alloc.replay_rlogs();
        alloc.replay_ulogs();
        alloc.scrub_all_stale_leaves();
        alloc.recount_live();
        Ok(alloc)
    }

    fn build(pool: Arc<PmemPool>, root: Root) -> EPallocator {
        EPallocator {
            pool,
            root,
            classes: std::array::from_fn(|_| {
                Mutex::new_ranked(
                    ClassState::default(),
                    parking_lot::rank::EPALLOC_CLASS,
                    false,
                    "EPallocator.classes",
                )
            }),
            live: Default::default(),
            ulog_slots: SlotPool::new(N_ULOGS),
            rlog_slots: SlotPool::new(N_RLOGS),
            obs: hart_obs::Recorder::disabled(),
        }
    }

    /// Route allocator events into `rec` (builder style, called by the
    /// index right after `create`/`open`, before the allocator is shared).
    pub fn with_recorder(mut self, rec: hart_obs::Recorder) -> EPallocator {
        self.obs = rec;
        self
    }

    /// The underlying pool.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    // ------------------------------------------------------------- EPMalloc

    /// Algorithm 2: hand out a free object of `class`.
    ///
    /// The object's persistent bit is **not** set; call
    /// [`EPallocator::commit`] once the object is fully initialized, or
    /// [`EPallocator::abort`] to hand it back. Leaf allocations scrub the
    /// stale `p_value` a crashed insert/delete may have left (lines 12–16).
    pub fn alloc(&self, class: ObjClass) -> Result<PmPtr> {
        let geo = class.geometry();
        let obj = {
            let mut st = self.classes[class.idx()].lock();
            let head_slot = self.root.head_ptr(class.idx());
            // Lines 1–7 of Algorithm 2, through the free-chunk cache: the
            // cache provably contains every chunk with a reservable slot
            // (maintained on retire/abort/scrub/new-chunk and rebuilt on
            // open), so an empty cache means "no free object exists" and
            // the paper's list walk would scan every chunk only to find
            // them all full — O(#chunks) per fresh-chunk allocation, which
            // made bulk insertion quadratic (DESIGN.md §7.2).
            let mut found = None;
            while let Some(&off) = st.free_hints.iter().next() {
                let chunk = PmPtr(off);
                let hdr = ChunkHeader::load(&self.pool, chunk);
                if let Some(idx) = st.try_reserve(hdr, chunk) {
                    found = Some(geo.obj_ptr(chunk, idx));
                    break;
                }
                // try_reserve dropped the stale hint; keep looking.
            }
            match found {
                Some(o) => o,
                None => {
                    // Lines 8–11: allocate a fresh chunk, link it at the
                    // head (pnext first, head pointer last — an 8-byte
                    // atomic store — so a crash leaves either the old or
                    // the new list).
                    let new_chunk = self
                        .pool
                        .alloc_raw(geo.chunk_bytes, geo.align)
                        .ok_or(Error::PmExhausted)?;
                    let old_head = self.pool.read::<u64>(head_slot);
                    geo.set_pnext(&self.pool, new_chunk, PmPtr(old_head));
                    self.pool.write_u64_atomic(head_slot, new_chunk.offset());
                    self.pool.persist(head_slot, 8);
                    *st.reserved.entry(new_chunk.offset()).or_insert(0) |= 1;
                    st.free_hints.insert(new_chunk.offset());
                    geo.obj_ptr(new_chunk, 0)
                }
            }
        };
        if class == ObjClass::Leaf {
            self.scrub_stale_leaf(obj);
        }
        self.obs.add(hart_obs::Event::Alloc, 1);
        Ok(obj)
    }

    /// Mark `obj` as durably used: set its bitmap bit and persist the chunk
    /// header. The final step of Algorithm 1 (line 18 for leaves, line 14
    /// for values).
    pub fn commit(&self, obj: PmPtr, class: ObjClass) {
        let geo = class.geometry();
        let (chunk, idx) = geo.locate(obj);
        let mut st = self.classes[class.idx()].lock();
        let hdr = ChunkHeader::load(&self.pool, chunk);
        debug_assert!(!hdr.is_set(idx), "commit of an already-committed object");
        // The object image must be durable before the bitmap bit makes it
        // recoverable (no-op unless built with hart-pm's `pm-check`).
        self.pool.check_durable(obj, class.obj_size() as usize);
        hdr.with_set(idx).store(&self.pool, chunk);
        if let Some(m) = st.reserved.get_mut(&chunk.offset()) {
            *m &= !(1 << idx);
            if *m == 0 {
                st.reserved.remove(&chunk.offset());
            }
        }
        self.live[class.idx()].fetch_add(1, Ordering::Relaxed);
        self.obs.add(hart_obs::Event::Commit, 1);
    }

    /// Hand back an uncommitted object (failed multi-step operation).
    /// Volatile only — nothing to persist, by design.
    pub fn abort(&self, obj: PmPtr, class: ObjClass) {
        let geo = class.geometry();
        let (chunk, idx) = geo.locate(obj);
        let mut st = self.classes[class.idx()].lock();
        if let Some(m) = st.reserved.get_mut(&chunk.offset()) {
            *m &= !(1 << idx);
            if *m == 0 {
                st.reserved.remove(&chunk.offset());
            }
        }
        st.free_hints.insert(chunk.offset());
    }

    /// Durably mark a committed object free again: clear its bitmap bit and
    /// persist the header ("Reset and persistent() the bit", Algorithms 3
    /// and 5).
    pub fn retire(&self, obj: PmPtr, class: ObjClass) {
        let geo = class.geometry();
        let (chunk, idx) = geo.locate(obj);
        let mut st = self.classes[class.idx()].lock();
        let hdr = ChunkHeader::load(&self.pool, chunk);
        debug_assert!(hdr.is_set(idx), "retire of a non-committed object");
        hdr.with_clear(idx).store(&self.pool, chunk);
        st.free_hints.insert(chunk.offset());
        self.dec_live(class);
        self.obs.add(hart_obs::Event::Retire, 1);
    }

    /// Durably retire a leaf *and* null its `p_value`, atomically with
    /// respect to reallocation: both happen under the leaf-class lock, so
    /// no concurrent `alloc` can hand the slot out while it still points
    /// at a value object (the aliasing race described in the crate docs).
    ///
    /// Crash-ordering: the bit is cleared (persisted) before the pointer
    /// is nulled (persisted). A crash in between leaves a *free* leaf with
    /// a dangling `p_value`, exactly the state Algorithm 2's scrub and the
    /// recovery sweep already handle.
    pub fn retire_leaf(&self, leaf: PmPtr) {
        let geo = ObjClass::Leaf.geometry();
        let (chunk, idx) = geo.locate(leaf);
        let mut st = self.classes[ObjClass::Leaf.idx()].lock();
        let hdr = ChunkHeader::load(&self.pool, chunk);
        debug_assert!(hdr.is_set(idx), "retire of a non-committed leaf");
        hdr.with_clear(idx).store(&self.pool, chunk);
        leaf_write_pvalue(&self.pool, leaf, PmPtr::NULL, 0);
        persist_leaf_pvalue(&self.pool, leaf);
        st.free_hints.insert(chunk.offset());
        self.dec_live(ObjClass::Leaf);
        self.obs.add(hart_obs::Event::Retire, 1);
    }

    /// Is `obj`'s bitmap bit set? (Algorithm 4 line 9's validity check.)
    pub fn is_live(&self, obj: PmPtr, class: ObjClass) -> bool {
        let geo = class.geometry();
        let (chunk, idx) = geo.locate(obj);
        ChunkHeader::load(&self.pool, chunk).is_set(idx)
    }

    fn dec_live(&self, class: ObjClass) {
        let c = &self.live[class.idx()];
        let _ = c.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    // ------------------------------------------------------------ EPRecycle

    /// Algorithm 6: if the chunk containing `obj` is completely free,
    /// unlink it from its class list (recycle-logged) and return it to the
    /// pool. Returns `true` when the chunk was reclaimed.
    pub fn recycle_containing(&self, obj: PmPtr, class: ObjClass) -> bool {
        let geo = class.geometry();
        let (chunk, _) = geo.locate(obj);
        self.recycle_chunk(chunk, class)
    }

    /// Algorithm 6 on a chunk pointer.
    pub fn recycle_chunk(&self, chunk: PmPtr, class: ObjClass) -> bool {
        let geo = class.geometry();
        // The class lock is held across the whole operation (including the
        // raw free and the log reclaim) so a concurrent same-class
        // allocation cannot reuse the chunk while the recycle log still
        // references it.
        let mut st = self.classes[class.idx()].lock();
        let hdr = ChunkHeader::load(&self.pool, chunk);
        if hdr.bitmap() != 0 {
            return false; // lines 1–2: a used object exists
        }
        if st.reserved.get(&chunk.offset()).copied().unwrap_or(0) != 0 {
            return false; // handed out but uncommitted
        }
        st.free_hints.remove(&chunk.offset());
        let rlog = RlogGuard::new(&self.pool, self.root, &self.rlog_slots);
        rlog.record_current(chunk, class); // line 4
        let head_slot = self.root.head_ptr(class.idx());
        let head = PmPtr(self.pool.read::<u64>(head_slot));
        if head == chunk {
            // Lines 5–6: unlink at the head.
            let next = geo.read_pnext(&self.pool, chunk);
            self.pool.write_u64_atomic(head_slot, next.offset());
            self.pool.persist(head_slot, 8);
        } else {
            // Lines 8–10: find the predecessor and splice it out.
            let mut prev = head;
            loop {
                if prev.is_null() {
                    // Not in the list (already recycled by a replay).
                    rlog.finish();
                    return false;
                }
                let next = geo.read_pnext(&self.pool, prev);
                if next == chunk {
                    break;
                }
                prev = next;
            }
            rlog.record_prev(prev);
            let next = geo.read_pnext(&self.pool, chunk);
            geo.set_pnext(&self.pool, prev, next);
        }
        // Line 11: pfree (zeroes + persists the chunk).
        self.pool.free_raw(chunk, geo.chunk_bytes, geo.align);
        // Line 12: LogReclaim.
        rlog.finish();
        drop(st);
        self.obs.add(hart_obs::Event::RecycleChunk, 1);
        true
    }

    // ------------------------------------------------------------ micro-logs

    /// `GetMicroLog(UPDATE)`: acquire an update-log record for Algorithm 3.
    pub fn acquire_ulog(&self) -> UlogGuard<'_> {
        self.obs.add(hart_obs::Event::UlogAcquire, 1);
        UlogGuard::new(&self.pool, self.root, &self.ulog_slots)
    }

    // -------------------------------------------------------------- walking

    /// Visit every linked chunk of `class`.
    pub fn for_each_chunk<F: FnMut(PmPtr, ChunkHeader)>(&self, class: ObjClass, mut f: F) {
        let geo = class.geometry();
        let mut chunk = PmPtr(self.pool.read::<u64>(self.root.head_ptr(class.idx())));
        while !chunk.is_null() {
            let hdr = ChunkHeader::load(&self.pool, chunk);
            let next = geo.read_pnext(&self.pool, chunk);
            f(chunk, hdr);
            chunk = next;
        }
    }

    /// Visit every committed object of `class` (Algorithm 7's traversal).
    pub fn for_each_live<F: FnMut(PmPtr)>(&self, class: ObjClass, mut f: F) {
        let geo = class.geometry();
        self.for_each_chunk(class, |chunk, hdr| {
            let mut bits = hdr.bitmap();
            while bits != 0 {
                let idx = bits.trailing_zeros() as u64;
                bits &= bits - 1;
                f(geo.obj_ptr(chunk, idx));
            }
        });
    }

    /// Committed objects of `class`.
    pub fn live_count(&self, class: ObjClass) -> u64 {
        self.live[class.idx()].load(Ordering::Relaxed)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> AllocStats {
        let mut s = AllocStats::default();
        for class in ObjClass::ALL {
            s.live[class.idx()] = self.live_count(class);
            let mut n = 0;
            self.for_each_chunk(class, |_, _| n += 1);
            s.chunks[class.idx()] = n;
        }
        s
    }

    // ------------------------------------------------------------- recovery

    /// Algorithm 2 lines 12–16: a freshly handed-out leaf slot may carry a
    /// `p_value` from a crashed insert or deletion; release the value it
    /// references and null the pointer.
    fn scrub_stale_leaf(&self, leaf: PmPtr) {
        let pv = leaf_read_pvalue(&self.pool, leaf);
        if pv.is_null() {
            return;
        }
        let vclass = ObjClass::for_value_len(leaf_read_val_len(&self.pool, leaf));
        let vgeo = vclass.geometry();
        let (vchunk, vidx) = vgeo.locate(pv);
        {
            let mut st = self.classes[vclass.idx()].lock();
            let hdr = ChunkHeader::load(&self.pool, vchunk);
            if hdr.is_set(vidx) {
                // Line 14: reset and persist the value bit.
                hdr.with_clear(vidx).store(&self.pool, vchunk);
                st.free_hints.insert(vchunk.offset());
                self.dec_live(vclass);
            }
        }
        // Line 15: EPRecycle(MemChunkOf(object.p_value)).
        self.recycle_chunk(vchunk, vclass);
        // Line 16: object.p_value = NULL (persisted — a deviation from the
        // paper that prevents stale aliasing; see crate docs).
        leaf_write_pvalue(&self.pool, leaf, PmPtr::NULL, 0);
        persist_leaf_pvalue(&self.pool, leaf);
    }

    /// Recovery-time sweep: scrub every *free* leaf slot with a dangling
    /// `p_value`, so crashed inserts/deletes cannot leak value objects even
    /// if their leaf slot is never reallocated.
    fn scrub_all_stale_leaves(&self) {
        let geo = Geometry::of(ObjClass::Leaf);
        let mut stale = Vec::new();
        self.for_each_chunk(ObjClass::Leaf, |chunk, hdr| {
            for idx in 0..OBJS_PER_CHUNK {
                if !hdr.is_set(idx) {
                    let leaf = geo.obj_ptr(chunk, idx);
                    if !leaf_read_pvalue(&self.pool, leaf).is_null() {
                        stale.push(leaf);
                    }
                }
            }
        });
        for leaf in stale {
            self.scrub_stale_leaf(leaf);
        }
    }

    /// Replay unfinished recycle logs (Algorithm 6's recovery analysis):
    /// finish the unlink if needed, then free the chunk.
    fn replay_rlogs(&self) {
        for i in 0..N_RLOGS {
            let base = self.root.rlog_ptr(i);
            let pcur = PmPtr(self.pool.read::<u64>(base.add(RLOG_PCURRENT)));
            if pcur.is_null() {
                continue;
            }
            let class_idx = self.pool.read::<u64>(base.add(RLOG_CLASS)) as usize;
            if class_idx >= 3 {
                // Unreachable given write ordering; clear conservatively.
                self.reset_rlog(base);
                continue;
            }
            let class = ObjClass::from_idx(class_idx);
            let geo = class.geometry();
            let hdr = ChunkHeader::load(&self.pool, pcur);
            if hdr.bitmap() != 0 {
                // The recycle cannot have started on a non-empty chunk;
                // stale record — clear it.
                self.reset_rlog(base);
                continue;
            }
            // If the chunk is still linked, splice it out (the logged PPrev
            // may be stale, so recompute the predecessor).
            let head_slot = self.root.head_ptr(class.idx());
            let head = PmPtr(self.pool.read::<u64>(head_slot));
            if head == pcur {
                let next = geo.read_pnext(&self.pool, pcur);
                self.pool.write_u64_atomic(head_slot, next.offset());
                self.pool.persist(head_slot, 8);
            } else {
                let mut prev = head;
                while !prev.is_null() {
                    let next = geo.read_pnext(&self.pool, prev);
                    if next == pcur {
                        geo.set_pnext(&self.pool, prev, geo.read_pnext(&self.pool, pcur));
                        break;
                    }
                    prev = next;
                }
            }
            // Resume from line 11: pfree. (A pre-crash pfree only fed the
            // volatile free list, which is gone — freeing again is the
            // recovery.)
            self.pool.free_raw(pcur, geo.chunk_bytes, geo.align);
            self.reset_rlog(base);
        }
    }

    fn reset_rlog(&self, base: PmPtr) {
        self.pool.write_zeros(base, RLOG_SIZE as usize);
        self.pool.persist(base, RLOG_SIZE as usize);
    }

    /// Replay unfinished update logs following Algorithm 3's recovery case
    /// analysis:
    /// * only `PLeaf` valid, or `PLeaf`+`POldV` valid → reset the log;
    /// * all three valid → resume from line 7 (every step idempotent).
    fn replay_ulogs(&self) {
        for i in 0..N_ULOGS {
            let base = self.root.ulog_ptr(i);
            let pleaf = PmPtr(self.pool.read::<u64>(base.add(ULOG_PLEAF)));
            let poldv = PmPtr(self.pool.read::<u64>(base.add(ULOG_POLDV)));
            let pnewv = PmPtr(self.pool.read::<u64>(base.add(ULOG_PNEWV)));
            if pleaf.is_null() && poldv.is_null() && pnewv.is_null() {
                continue;
            }
            if pleaf.is_null() || poldv.is_null() || pnewv.is_null() {
                // Crash before line 6: the old value is still current and
                // the new value's bit was never set — just reset the log.
                self.reset_ulog(base);
                continue;
            }
            let meta = UlogMeta::unpack(self.pool.read::<u64>(base.add(ULOG_META)));
            if meta.new_class as usize >= 3 || meta.old_class as usize >= 3 {
                self.reset_ulog(base);
                continue;
            }
            let new_class = ObjClass::from_idx(meta.new_class as usize);
            let old_class = ObjClass::from_idx(meta.old_class as usize);
            // Line 7: set the new value's bit.
            let ngeo = new_class.geometry();
            let (nchunk, nidx) = ngeo.locate(pnewv);
            let nhdr = ChunkHeader::load(&self.pool, nchunk);
            if !nhdr.is_set(nidx) {
                nhdr.with_set(nidx).store(&self.pool, nchunk);
            }
            // Line 8: swing the leaf's value pointer.
            leaf_write_pvalue(&self.pool, pleaf, pnewv, meta.new_len as usize);
            persist_leaf_pvalue(&self.pool, pleaf);
            // Line 9: reset the old value's bit.
            let ogeo = old_class.geometry();
            let (ochunk, oidx) = ogeo.locate(poldv);
            let ohdr = ChunkHeader::load(&self.pool, ochunk);
            if ohdr.is_set(oidx) {
                ohdr.with_clear(oidx).store(&self.pool, ochunk);
            }
            // Line 10: EPRecycle on the old value's chunk.
            self.recycle_chunk(ochunk, old_class);
            // Line 11: LogReclaim.
            self.reset_ulog(base);
        }
    }

    fn reset_ulog(&self, base: PmPtr) {
        self.pool.write_zeros(base, ULOG_SIZE as usize);
        self.pool.persist(base, ULOG_SIZE as usize);
    }

    fn recount_live(&self) {
        for class in ObjClass::ALL {
            let mut n = 0u64;
            let mut hints = BTreeSet::new();
            self.for_each_chunk(class, |chunk, hdr| {
                n += hdr.popcount() as u64;
                if !hdr.is_full() {
                    hints.insert(chunk.offset());
                }
            });
            self.live[class.idx()].store(n, Ordering::Relaxed);
            self.classes[class.idx()].lock().free_hints = hints;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hart_pm::PoolConfig;

    fn fresh() -> EPallocator {
        EPallocator::create(Arc::new(PmemPool::new(PoolConfig::test_small())))
    }

    fn crashy() -> EPallocator {
        EPallocator::create(Arc::new(PmemPool::new(PoolConfig::test_crash())))
    }

    #[test]
    fn alloc_commit_cycle() {
        let a = fresh();
        let p = a.alloc(ObjClass::Value8).unwrap();
        assert!(!a.is_live(p, ObjClass::Value8));
        a.commit(p, ObjClass::Value8);
        assert!(a.is_live(p, ObjClass::Value8));
        assert_eq!(a.live_count(ObjClass::Value8), 1);
        a.retire(p, ObjClass::Value8);
        assert!(!a.is_live(p, ObjClass::Value8));
        assert_eq!(a.live_count(ObjClass::Value8), 0);
    }

    #[test]
    fn alloc_is_unique_until_released() {
        let a = fresh();
        let p1 = a.alloc(ObjClass::Value8).unwrap();
        let p2 = a.alloc(ObjClass::Value8).unwrap();
        assert_ne!(p1, p2, "reserved objects must not be handed out twice");
        a.abort(p1, ObjClass::Value8);
        let p3 = a.alloc(ObjClass::Value8).unwrap();
        assert_eq!(p3, p1, "aborted object becomes available again");
    }

    #[test]
    fn chunk_fills_then_grows() {
        let a = fresh();
        let mut ptrs = Vec::new();
        for _ in 0..OBJS_PER_CHUNK {
            let p = a.alloc(ObjClass::Value16).unwrap();
            a.commit(p, ObjClass::Value16);
            ptrs.push(p);
        }
        assert_eq!(a.stats().chunks[ObjClass::Value16.idx()], 1);
        let extra = a.alloc(ObjClass::Value16).unwrap();
        a.commit(extra, ObjClass::Value16);
        assert_eq!(a.stats().chunks[ObjClass::Value16.idx()], 2);
        // All 57 pointers distinct.
        ptrs.push(extra);
        ptrs.sort_unstable();
        ptrs.dedup();
        assert_eq!(ptrs.len(), 57);
    }

    #[test]
    fn retire_then_reuse_same_slot() {
        let a = fresh();
        let p = a.alloc(ObjClass::Value8).unwrap();
        a.commit(p, ObjClass::Value8);
        a.retire(p, ObjClass::Value8);
        let q = a.alloc(ObjClass::Value8).unwrap();
        assert_eq!(p, q, "hint should lead back to the freed slot");
    }

    #[test]
    fn recycle_empty_chunk() {
        let a = fresh();
        // Fill one chunk and one object of a second chunk.
        let mut first = Vec::new();
        for _ in 0..OBJS_PER_CHUNK {
            let p = a.alloc(ObjClass::Value8).unwrap();
            a.commit(p, ObjClass::Value8);
            first.push(p);
        }
        let second = a.alloc(ObjClass::Value8).unwrap();
        a.commit(second, ObjClass::Value8);
        assert_eq!(a.stats().chunks[ObjClass::Value8.idx()], 2);

        // Retire the whole first chunk and recycle it.
        for p in &first {
            a.retire(*p, ObjClass::Value8);
        }
        assert!(a.recycle_containing(first[0], ObjClass::Value8));
        assert_eq!(a.stats().chunks[ObjClass::Value8.idx()], 1);
        // The survivor is still live.
        assert!(a.is_live(second, ObjClass::Value8));
    }

    #[test]
    fn recycle_refuses_nonempty_or_reserved() {
        let a = fresh();
        let p = a.alloc(ObjClass::Value8).unwrap();
        a.commit(p, ObjClass::Value8);
        assert!(
            !a.recycle_containing(p, ObjClass::Value8),
            "live object present"
        );
        a.retire(p, ObjClass::Value8);
        let q = a.alloc(ObjClass::Value8).unwrap(); // reserved, uncommitted
        assert!(
            !a.recycle_containing(q, ObjClass::Value8),
            "reservation present"
        );
    }

    #[test]
    fn recycle_middle_of_list() {
        let a = fresh();
        // Three chunks: fill chunk1, chunk2, chunk3 partially. List order is
        // newest-first: head=c3 -> c2 -> c1.
        let mut all = Vec::new();
        for _ in 0..(2 * OBJS_PER_CHUNK + 1) {
            let p = a.alloc(ObjClass::Value8).unwrap();
            a.commit(p, ObjClass::Value8);
            all.push(p);
        }
        assert_eq!(a.stats().chunks[ObjClass::Value8.idx()], 3);
        // Empty the *second* chunk (objects 56..112 are in chunk 2).
        for p in &all[OBJS_PER_CHUNK as usize..2 * OBJS_PER_CHUNK as usize] {
            a.retire(*p, ObjClass::Value8);
        }
        assert!(a.recycle_containing(all[OBJS_PER_CHUNK as usize], ObjClass::Value8));
        assert_eq!(a.stats().chunks[ObjClass::Value8.idx()], 2);
        // Others still reachable.
        let mut seen = 0;
        a.for_each_live(ObjClass::Value8, |_| seen += 1);
        assert_eq!(seen, OBJS_PER_CHUNK + 1);
    }

    #[test]
    fn for_each_live_enumerates_commits_only() {
        let a = fresh();
        let p1 = a.alloc(ObjClass::Leaf).unwrap();
        a.commit(p1, ObjClass::Leaf);
        let _uncommitted = a.alloc(ObjClass::Leaf).unwrap();
        let mut live = Vec::new();
        a.for_each_live(ObjClass::Leaf, |p| live.push(p));
        assert_eq!(live, vec![p1]);
    }

    #[test]
    fn open_rejects_unformatted_pool() {
        let pool = Arc::new(PmemPool::new(PoolConfig::test_small()));
        assert!(EPallocator::open(pool).is_err());
    }

    #[test]
    fn reopen_preserves_live_objects() {
        let pool = Arc::new(PmemPool::new(PoolConfig::test_small()));
        let a = EPallocator::create(Arc::clone(&pool));
        let mut committed = Vec::new();
        for i in 0..100 {
            let class = if i % 2 == 0 {
                ObjClass::Value8
            } else {
                ObjClass::Leaf
            };
            let p = a.alloc(class).unwrap();
            a.commit(p, class);
            committed.push((p, class));
        }
        drop(a);
        let b = EPallocator::open(pool).unwrap();
        assert_eq!(b.live_count(ObjClass::Value8), 50);
        assert_eq!(b.live_count(ObjClass::Leaf), 50);
        for (p, class) in committed {
            assert!(b.is_live(p, class));
        }
    }

    #[test]
    fn crash_drops_uncommitted_allocations() {
        let a = crashy();
        let pool = Arc::clone(a.pool());
        // Committed object survives; reserved-but-uncommitted one is
        // reclaimed because its bit was never set.
        let keep = a.alloc(ObjClass::Value8).unwrap();
        a.commit(keep, ObjClass::Value8);
        let lose = a.alloc(ObjClass::Value8).unwrap();
        assert_ne!(keep, lose);
        drop(a);
        pool.simulate_crash();
        let b = EPallocator::open(pool).unwrap();
        assert_eq!(b.live_count(ObjClass::Value8), 1);
        assert!(b.is_live(keep, ObjClass::Value8));
        // The lost slot is allocatable again — no persistent leak.
        let again = b.alloc(ObjClass::Value8).unwrap();
        assert_eq!(again, lose);
    }

    #[test]
    fn crash_mid_insert_scrubs_value_via_leaf_alloc() {
        // Simulate Algorithm 1 crashing between line 14 (value bit set) and
        // line 18 (leaf bit set): the value bit is set, the leaf bit is not,
        // and the leaf's p_value points at the value.
        let a = crashy();
        let pool = Arc::clone(a.pool());
        let leaf = a.alloc(ObjClass::Leaf).unwrap();
        let val = a.alloc(ObjClass::Value8).unwrap();
        pool.write(val, &0x1111u64);
        pool.persist_val::<u64>(val);
        leaf_write_pvalue(&pool, leaf, val, 8);
        persist_leaf_pvalue(&pool, leaf);
        a.commit(val, ObjClass::Value8); // value bit set
                                         // ... crash before the leaf bit is set.
        drop(a);
        pool.simulate_crash();
        let b = EPallocator::open(Arc::clone(&pool)).unwrap();
        // The recovery sweep must have freed the orphaned value.
        assert_eq!(
            b.live_count(ObjClass::Value8),
            0,
            "orphaned value must be scrubbed"
        );
        assert_eq!(b.live_count(ObjClass::Leaf), 0);
        assert!(
            leaf_read_pvalue(&pool, leaf).is_null(),
            "p_value must be nulled"
        );
    }

    #[test]
    fn crashed_recycle_completes_at_open() {
        // Crash after the recycle log records PCurrent but before the
        // unlink: open() must finish the job.
        let a = crashy();
        let pool = Arc::clone(a.pool());
        // Two chunks so the head case and middle case both get exercise.
        let mut objs = Vec::new();
        for _ in 0..(OBJS_PER_CHUNK + 1) {
            let p = a.alloc(ObjClass::Value8).unwrap();
            a.commit(p, ObjClass::Value8);
            objs.push(p);
        }
        for p in &objs[..OBJS_PER_CHUNK as usize] {
            a.retire(*p, ObjClass::Value8);
        }
        // Hand-craft the crashed log: record PCurrent for the (now empty)
        // first chunk, then "crash".
        let geo = ObjClass::Value8.geometry();
        let (chunk, _) = geo.locate(objs[0]);
        {
            let rlog = RlogGuard::new(&pool, a.root, &a.rlog_slots);
            rlog.record_current(chunk, ObjClass::Value8);
            std::mem::forget(rlog); // leave the PM record in place
        }
        let chunks_before = a.stats().chunks[ObjClass::Value8.idx()];
        assert_eq!(chunks_before, 2);
        drop(a);
        pool.simulate_crash();
        let b = EPallocator::open(pool).unwrap();
        assert_eq!(
            b.stats().chunks[ObjClass::Value8.idx()],
            1,
            "replay must unlink and free the logged chunk"
        );
        assert!(b.is_live(objs[OBJS_PER_CHUNK as usize], ObjClass::Value8));
    }

    #[test]
    fn concurrent_alloc_commit_is_disjoint() {
        let a = Arc::new(fresh());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..300 {
                    let p = a.alloc(ObjClass::Value16).unwrap();
                    a.commit(p, ObjClass::Value16);
                    got.push(p.offset());
                }
                got
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate object handed out concurrently");
        assert_eq!(a.live_count(ObjClass::Value16), 1200);
    }

    #[test]
    fn stats_report_chunks_and_live() {
        let a = fresh();
        let s0 = a.stats();
        assert_eq!(s0, AllocStats::default());
        let p = a.alloc(ObjClass::Leaf).unwrap();
        a.commit(p, ObjClass::Leaf);
        let s1 = a.stats();
        assert_eq!(s1.live, [1, 0, 0]);
        assert_eq!(s1.chunks, [1, 0, 0]);
    }
}
