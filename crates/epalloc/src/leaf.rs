//! The 40-byte PM leaf-node layout (Fig. 3).
//!
//! ```text
//! offset  0..24  key bytes (complete key, stored "for the purpose of
//!                failure recovery", §III-A.1)
//! offset 24      key_len
//! offset 25      val_len
//! offset 26..32  padding
//! offset 32..40  p_value (PmPtr to the out-of-leaf value object)
//! ```
//!
//! Accessors are free functions over `(pool, leaf_ptr)` so the same layout
//! is shared by the allocator's scrub/recovery paths and by HART itself.
//! Reads go through the pool and are therefore charged PM read latency.

use hart_kv::{InlineKey, Key, MAX_KEY_LEN};
use hart_pm::{PmPtr, PmemPool};

/// Size of a leaf object in bytes.
pub const LEAF_SIZE: usize = 40;

const KEY_OFF: u64 = 0;
const KEY_LEN_OFF: u64 = 24;
const VAL_LEN_OFF: u64 = 25;
const P_VALUE_OFF: u64 = 32;

/// Write the complete key and its length (no persist — call
/// [`persist_leaf_key`] after, mirroring Algorithm 1 lines 15–16).
pub fn leaf_write_key(pool: &PmemPool, leaf: PmPtr, key: &Key) {
    let mut buf = [0u8; MAX_KEY_LEN];
    buf[..key.len()].copy_from_slice(key.as_slice());
    pool.write_bytes(leaf.add(KEY_OFF), &buf);
    pool.write(leaf.add(KEY_LEN_OFF), &(key.len() as u8));
}

/// Persist the key + key_len region (one `persistent()` call — the two
/// fields share the leaf's first cache lines).
pub fn persist_leaf_key(pool: &PmemPool, leaf: PmPtr) {
    pool.persist(leaf.add(KEY_OFF), MAX_KEY_LEN + 1);
}

/// Read the complete key stored in a leaf.
pub fn leaf_read_key(pool: &PmemPool, leaf: PmPtr) -> InlineKey {
    let len = pool.read::<u8>(leaf.add(KEY_LEN_OFF)) as usize;
    let mut buf = [0u8; MAX_KEY_LEN];
    pool.read_bytes(leaf.add(KEY_OFF), &mut buf);
    InlineKey::from_slice(&buf[..len.min(MAX_KEY_LEN)])
}

/// Write `p_value` and the value length (no persist — call
/// [`persist_leaf_pvalue`], mirroring Algorithm 1 line 13 / Algorithm 3
/// line 8).
pub fn leaf_write_pvalue(pool: &PmemPool, leaf: PmPtr, p_value: PmPtr, val_len: usize) {
    pool.write(leaf.add(VAL_LEN_OFF), &(val_len as u8));
    pool.write_u64_atomic(leaf.add(P_VALUE_OFF), p_value.offset());
}

/// Persist the `val_len + p_value` region (one `persistent()` call).
pub fn persist_leaf_pvalue(pool: &PmemPool, leaf: PmPtr) {
    pool.persist(
        leaf.add(VAL_LEN_OFF),
        (LEAF_SIZE as u64 - VAL_LEN_OFF) as usize,
    );
}

/// Read the value pointer.
pub fn leaf_read_pvalue(pool: &PmemPool, leaf: PmPtr) -> PmPtr {
    PmPtr(pool.read::<u64>(leaf.add(P_VALUE_OFF)))
}

/// Read the value length.
pub fn leaf_read_val_len(pool: &PmemPool, leaf: PmPtr) -> usize {
    pool.read::<u8>(leaf.add(VAL_LEN_OFF)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use hart_pm::PoolConfig;

    #[test]
    fn layout_constants() {
        assert_eq!(LEAF_SIZE, 40);
        assert!(
            P_VALUE_OFF.is_multiple_of(8),
            "p_value must be 8-byte aligned for atomic stores"
        );
    }

    #[test]
    fn key_roundtrip() {
        let pool = PmemPool::new(PoolConfig::test_small());
        let leaf = pool.alloc_raw(LEAF_SIZE, 8).unwrap();
        let key = Key::from_str("hello-world").unwrap();
        leaf_write_key(&pool, leaf, &key);
        persist_leaf_key(&pool, leaf);
        assert_eq!(leaf_read_key(&pool, leaf).as_slice(), key.as_slice());
    }

    #[test]
    fn pvalue_roundtrip() {
        let pool = PmemPool::new(PoolConfig::test_small());
        let leaf = pool.alloc_raw(LEAF_SIZE, 8).unwrap();
        leaf_write_pvalue(&pool, leaf, PmPtr(0x1000), 16);
        persist_leaf_pvalue(&pool, leaf);
        assert_eq!(leaf_read_pvalue(&pool, leaf), PmPtr(0x1000));
        assert_eq!(leaf_read_val_len(&pool, leaf), 16);
    }

    #[test]
    fn max_len_key() {
        let pool = PmemPool::new(PoolConfig::test_small());
        let leaf = pool.alloc_raw(LEAF_SIZE, 8).unwrap();
        let key = Key::new(&[b'x'; MAX_KEY_LEN]).unwrap();
        leaf_write_key(&pool, leaf, &key);
        assert_eq!(leaf_read_key(&pool, leaf).len(), MAX_KEY_LEN);
    }
}
