//! Memory-chunk geometry and the packed chunk header of Fig. 2.

use hart_pm::{PmPtr, PmemPool};

/// Objects per memory chunk (Fig. 2: "56 leaf nodes" / "56 value objects").
pub const OBJS_PER_CHUNK: u64 = 56;

/// Offset of the object array within a chunk: 8-byte header + 8-byte PNext.
pub(crate) const CHUNK_DATA_OFF: u64 = 16;

/// Offset of the `PNext` pointer within a chunk.
pub(crate) const CHUNK_PNEXT_OFF: u64 = 8;

const BITMAP_MASK: u64 = (1 << OBJS_PER_CHUNK) - 1;
const HINT_SHIFT: u32 = 56;
const HINT_MASK: u64 = 0x3F;
const FULL_SHIFT: u32 = 62;

/// The paper's three object classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObjClass {
    /// 40-byte HART leaf nodes.
    Leaf,
    /// 8-byte value objects.
    Value8,
    /// 16-byte value objects.
    Value16,
}

impl ObjClass {
    /// All classes, in index order.
    pub const ALL: [ObjClass; 3] = [ObjClass::Leaf, ObjClass::Value8, ObjClass::Value16];

    /// Dense index 0..3.
    #[inline]
    pub fn idx(self) -> usize {
        match self {
            ObjClass::Leaf => 0,
            ObjClass::Value8 => 1,
            ObjClass::Value16 => 2,
        }
    }

    /// Class from dense index.
    pub fn from_idx(i: usize) -> ObjClass {
        Self::ALL[i]
    }

    /// The value class for a value of `len` bytes (§III-A.5: two sizes).
    #[inline]
    pub fn for_value_len(len: usize) -> ObjClass {
        if len <= 8 {
            ObjClass::Value8
        } else {
            ObjClass::Value16
        }
    }

    /// Object size in bytes.
    #[inline]
    pub fn obj_size(self) -> u64 {
        match self {
            ObjClass::Leaf => crate::leaf::LEAF_SIZE as u64,
            ObjClass::Value8 => 8,
            ObjClass::Value16 => 16,
        }
    }

    /// Full chunk geometry for this class.
    #[inline]
    pub fn geometry(self) -> Geometry {
        Geometry::of(self)
    }
}

/// Chunk geometry: size, alignment and object addressing.
///
/// Chunks are allocated at an alignment ≥ their size (rounded to the next
/// power of two) so the enclosing chunk of any object pointer is recovered
/// with a single mask — the emulation's equivalent of the paper's
/// `MemChunkOf()`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Geometry {
    pub class: ObjClass,
    pub obj_size: u64,
    pub chunk_bytes: usize,
    pub align: u64,
}

impl Geometry {
    /// Geometry of `class`.
    pub fn of(class: ObjClass) -> Geometry {
        let obj_size = class.obj_size();
        let chunk_bytes = (CHUNK_DATA_OFF + OBJS_PER_CHUNK * obj_size) as usize;
        let align = (chunk_bytes as u64).next_power_of_two();
        Geometry {
            class,
            obj_size,
            chunk_bytes,
            align,
        }
    }

    /// Pointer to object `idx` within `chunk`.
    #[inline]
    pub fn obj_ptr(&self, chunk: PmPtr, idx: u64) -> PmPtr {
        debug_assert!(idx < OBJS_PER_CHUNK);
        chunk.add(CHUNK_DATA_OFF + idx * self.obj_size)
    }

    /// Map an object pointer back to `(chunk, index)` — `MemChunkOf()`.
    #[inline]
    pub fn locate(&self, obj: PmPtr) -> (PmPtr, u64) {
        let chunk = obj.align_down(self.align);
        let delta = obj.offset() - chunk.offset();
        debug_assert!(delta >= CHUNK_DATA_OFF, "pointer into chunk header");
        let idx = (delta - CHUNK_DATA_OFF) / self.obj_size;
        debug_assert_eq!(
            (delta - CHUNK_DATA_OFF) % self.obj_size,
            0,
            "pointer not at an object boundary"
        );
        (chunk, idx)
    }

    /// Read a chunk's `PNext`.
    #[inline]
    pub fn read_pnext(&self, pool: &PmemPool, chunk: PmPtr) -> PmPtr {
        PmPtr(pool.read::<u64>(chunk.add(CHUNK_PNEXT_OFF)))
    }

    /// Write + persist a chunk's `PNext`.
    pub fn set_pnext(&self, pool: &PmemPool, chunk: PmPtr, next: PmPtr) {
        pool.write_u64_atomic(chunk.add(CHUNK_PNEXT_OFF), next.offset());
        pool.persist(chunk.add(CHUNK_PNEXT_OFF), 8);
    }
}

/// The packed 8-byte chunk header of Fig. 2:
///
/// ```text
/// bits  0..56  leaf/value bitmap (1 = used)
/// bits 56..62  next-free-index hint
/// bits 62..64  full indicator (00 available, 01 full, 10/11 reserved)
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct ChunkHeader(pub u64);

impl ChunkHeader {
    /// Load from PM.
    #[inline]
    pub fn load(pool: &PmemPool, chunk: PmPtr) -> ChunkHeader {
        ChunkHeader(pool.read::<u64>(chunk))
    }

    /// Store + persist to PM (the "set and persistent() the bit" steps of
    /// Algorithms 1, 3 and 5).
    pub fn store(self, pool: &PmemPool, chunk: PmPtr) {
        pool.write_u64_atomic(chunk, self.0);
        pool.persist(chunk, 8);
    }

    /// The 56-bit occupancy bitmap.
    #[inline]
    pub fn bitmap(self) -> u64 {
        self.0 & BITMAP_MASK
    }

    /// Is object `idx` marked used?
    #[inline]
    pub fn is_set(self, idx: u64) -> bool {
        debug_assert!(idx < OBJS_PER_CHUNK);
        self.0 & (1 << idx) != 0
    }

    /// Number of used objects.
    #[inline]
    pub fn popcount(self) -> u32 {
        self.bitmap().count_ones()
    }

    /// The full indicator says no free object exists.
    #[inline]
    pub fn is_full(self) -> bool {
        (self.0 >> FULL_SHIFT) & 0b11 == 0b01
    }

    /// The 6-bit next-free-index hint.
    #[inline]
    pub fn next_free_hint(self) -> u64 {
        (self.0 >> HINT_SHIFT) & HINT_MASK
    }

    /// Return a header with bit `idx` set and hint/full recomputed.
    #[must_use]
    pub fn with_set(self, idx: u64) -> ChunkHeader {
        debug_assert!(idx < OBJS_PER_CHUNK);
        ChunkHeader::compose(self.bitmap() | (1 << idx))
    }

    /// Return a header with bit `idx` cleared and hint/full recomputed.
    #[must_use]
    pub fn with_clear(self, idx: u64) -> ChunkHeader {
        debug_assert!(idx < OBJS_PER_CHUNK);
        ChunkHeader::compose(self.bitmap() & !(1 << idx))
    }

    /// Build a header from a bitmap, computing hint and full indicator.
    pub fn compose(bitmap: u64) -> ChunkHeader {
        debug_assert_eq!(bitmap & !BITMAP_MASK, 0);
        let free = !bitmap & BITMAP_MASK;
        if free == 0 {
            // Full: indicator 01, hint unused (0).
            ChunkHeader(bitmap | (0b01 << FULL_SHIFT))
        } else {
            let hint = free.trailing_zeros() as u64;
            ChunkHeader(bitmap | (hint << HINT_SHIFT))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_invariants() {
        for class in ObjClass::ALL {
            let g = Geometry::of(class);
            assert!(g.align >= g.chunk_bytes as u64, "{class:?}");
            assert!(g.align.is_power_of_two());
            assert_eq!(
                g.chunk_bytes as u64,
                CHUNK_DATA_OFF + OBJS_PER_CHUNK * g.obj_size
            );
        }
        // Spot-check the paper's leaf geometry: 16 + 56*40 = 2256 B.
        assert_eq!(Geometry::of(ObjClass::Leaf).chunk_bytes, 2256);
        assert_eq!(Geometry::of(ObjClass::Leaf).align, 4096);
        assert_eq!(Geometry::of(ObjClass::Value8).chunk_bytes, 464);
        assert_eq!(Geometry::of(ObjClass::Value16).chunk_bytes, 912);
    }

    #[test]
    fn obj_ptr_locate_roundtrip() {
        for class in ObjClass::ALL {
            let g = Geometry::of(class);
            let chunk = PmPtr(g.align * 3);
            for idx in [0u64, 1, 27, 55] {
                let p = g.obj_ptr(chunk, idx);
                assert_eq!(g.locate(p), (chunk, idx), "{class:?} idx {idx}");
            }
        }
    }

    #[test]
    fn header_set_clear() {
        let h = ChunkHeader::compose(0);
        assert!(!h.is_full());
        assert_eq!(h.next_free_hint(), 0);
        assert_eq!(h.popcount(), 0);

        let h = h.with_set(0);
        assert!(h.is_set(0));
        assert_eq!(h.next_free_hint(), 1);

        let h = h.with_set(1).with_set(2);
        assert_eq!(h.next_free_hint(), 3);
        assert_eq!(h.popcount(), 3);

        let h = h.with_clear(1);
        assert_eq!(h.next_free_hint(), 1);
        assert!(!h.is_set(1));
    }

    #[test]
    fn header_full_indicator() {
        let mut h = ChunkHeader::compose(0);
        for i in 0..OBJS_PER_CHUNK {
            assert!(!h.is_full(), "not full before bit {i}");
            h = h.with_set(i);
        }
        assert!(h.is_full());
        assert_eq!(h.popcount(), 56);
        let h = h.with_clear(37);
        assert!(!h.is_full());
        assert_eq!(h.next_free_hint(), 37);
    }

    #[test]
    fn value_class_selection() {
        assert_eq!(ObjClass::for_value_len(0), ObjClass::Value8);
        assert_eq!(ObjClass::for_value_len(8), ObjClass::Value8);
        assert_eq!(ObjClass::for_value_len(9), ObjClass::Value16);
        assert_eq!(ObjClass::for_value_len(16), ObjClass::Value16);
    }

    #[test]
    fn class_indexing() {
        for (i, c) in ObjClass::ALL.iter().enumerate() {
            assert_eq!(c.idx(), i);
            assert_eq!(ObjClass::from_idx(i), *c);
        }
    }
}
