//! The PM root page: magic, chunk-list heads, and the micro-log pools.
//!
//! Everything a recovery needs to find lives at a fixed offset in the
//! pool's root area, so `EPallocator::open` requires no volatile input.
//!
//! ```text
//! offset   0  magic            u64
//! offset   8  version          u64
//! offset  16  heads[3]         u64 × 3   (LEAF, VALUE8, VALUE16)
//! offset  40  ulogs[32]        32 B each: pleaf, poldv, pnewv, meta
//! offset 1064 rlogs[32]        24 B each: pprev, pcurrent, class
//! ```

use hart_kv::{Error, Result};
use hart_pm::{PmPtr, PmemPool};

pub(crate) const MAGIC: u64 = 0x4841_5254_2D45_5031; // "HART-EP1"
pub(crate) const VERSION: u64 = 1;

pub(crate) const N_ULOGS: usize = 32;
pub(crate) const N_RLOGS: usize = 32;

const HEADS_OFF: u64 = 16;
const ULOGS_OFF: u64 = 40;
pub(crate) const ULOG_SIZE: u64 = 32;
const RLOGS_OFF: u64 = ULOGS_OFF + (N_ULOGS as u64) * ULOG_SIZE;
pub(crate) const RLOG_SIZE: u64 = 24;
pub(crate) const ROOT_SIZE: usize = (RLOGS_OFF + (N_RLOGS as u64) * RLOG_SIZE) as usize;

/// Field offsets within an update-log slot.
pub(crate) const ULOG_PLEAF: u64 = 0;
pub(crate) const ULOG_POLDV: u64 = 8;
pub(crate) const ULOG_PNEWV: u64 = 16;
pub(crate) const ULOG_META: u64 = 24;

/// Field offsets within a recycle-log slot.
pub(crate) const RLOG_PPREV: u64 = 0;
pub(crate) const RLOG_PCURRENT: u64 = 8;
pub(crate) const RLOG_CLASS: u64 = 16;

/// Typed view of the root page.
#[derive(Clone, Copy)]
pub(crate) struct Root {
    base: PmPtr,
}

impl Root {
    /// Claim the root area of `pool`.
    pub fn locate(pool: &PmemPool) -> Root {
        Root {
            base: pool.root_area(ROOT_SIZE),
        }
    }

    /// Format a fresh root page (magic last, so a crash mid-format is
    /// indistinguishable from an unformatted pool).
    pub fn format(pool: &PmemPool) -> Root {
        let root = Root::locate(pool);
        pool.write_zeros(root.base, ROOT_SIZE);
        pool.persist(root.base, ROOT_SIZE);
        pool.write(root.base.add(8), &VERSION);
        pool.persist(root.base.add(8), 8);
        pool.write_u64_atomic(root.base, MAGIC);
        pool.persist(root.base, 8);
        root
    }

    /// Validate an existing root page.
    pub fn check(pool: &PmemPool) -> Result<Root> {
        let root = Root::locate(pool);
        if pool.read::<u64>(root.base) != MAGIC {
            return Err(Error::Corrupted("bad EPallocator magic"));
        }
        if pool.read::<u64>(root.base.add(8)) != VERSION {
            return Err(Error::Corrupted("unsupported EPallocator version"));
        }
        Ok(root)
    }

    /// PM location of the chunk-list head for class index `ci`.
    #[inline]
    pub fn head_ptr(&self, ci: usize) -> PmPtr {
        debug_assert!(ci < 3);
        self.base.add(HEADS_OFF + 8 * ci as u64)
    }

    /// PM location of update-log slot `i`.
    #[inline]
    pub fn ulog_ptr(&self, i: usize) -> PmPtr {
        debug_assert!(i < N_ULOGS);
        self.base.add(ULOGS_OFF + ULOG_SIZE * i as u64)
    }

    /// PM location of recycle-log slot `i`.
    #[inline]
    pub fn rlog_ptr(&self, i: usize) -> PmPtr {
        debug_assert!(i < N_RLOGS);
        self.base.add(RLOGS_OFF + RLOG_SIZE * i as u64)
    }
}

/// Packed metadata word of an update log: new value length, new value
/// class, old value class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct UlogMeta {
    pub new_len: u8,
    pub new_class: u8,
    pub old_class: u8,
}

impl UlogMeta {
    pub fn pack(self) -> u64 {
        self.new_len as u64 | ((self.new_class as u64) << 8) | ((self.old_class as u64) << 16)
    }

    pub fn unpack(v: u64) -> UlogMeta {
        UlogMeta {
            new_len: (v & 0xFF) as u8,
            new_class: ((v >> 8) & 0xFF) as u8,
            old_class: ((v >> 16) & 0xFF) as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hart_pm::PoolConfig;

    #[test]
    fn root_fits_in_root_area() {
        let size = ROOT_SIZE; // runtime binding: assert the actual layout
        assert!(size <= 4032, "root page is {size} B");
    }

    #[test]
    fn format_then_check() {
        let pool = PmemPool::new(PoolConfig::test_small());
        assert!(
            Root::check(&pool).is_err(),
            "unformatted pool must not validate"
        );
        Root::format(&pool);
        assert!(Root::check(&pool).is_ok());
    }

    #[test]
    fn slot_pointers_are_disjoint() {
        let pool = PmemPool::new(PoolConfig::test_small());
        let root = Root::format(&pool);
        let mut offs = Vec::new();
        for ci in 0..3 {
            offs.push((root.head_ptr(ci).offset(), 8));
        }
        for i in 0..N_ULOGS {
            offs.push((root.ulog_ptr(i).offset(), ULOG_SIZE));
        }
        for i in 0..N_RLOGS {
            offs.push((root.rlog_ptr(i).offset(), RLOG_SIZE));
        }
        offs.sort_unstable();
        for w in offs.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {:?} {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn meta_roundtrip() {
        let m = UlogMeta {
            new_len: 16,
            new_class: 2,
            old_class: 1,
        };
        assert_eq!(UlogMeta::unpack(m.pack()), m);
    }
}
