//! EPallocator — the enhanced persistent memory allocator of HART
//! (§III-A.4–6, Figs. 2–3, Algorithms 2 and 6).
//!
//! EPallocator manages emulated PM as singly linked lists of fixed-geometry
//! **memory chunks**, one list per object class:
//!
//! * `LEAF` — 40-byte HART leaf nodes,
//! * `VALUE8` / `VALUE16` — the paper's two variable-size value classes.
//!
//! Each chunk holds an 8-byte header (a 56-bit occupancy bitmap, a 6-bit
//! next-free-index hint and a 2-bit full indicator — exactly Fig. 2), an
//! 8-byte `PNext` pointer, and 56 objects. One raw pool allocation therefore
//! serves 56 object allocations, which is the paper's answer to the poor
//! small-object performance of general-purpose PM allocators.
//!
//! # Leak-freedom protocol
//!
//! [`EPallocator::alloc`] hands out an object **without** setting its
//! persistent bitmap bit; the caller sets the bit (via
//! [`EPallocator::commit`]) only after the object is fully initialized and
//! linked. A *volatile* per-chunk reservation mask prevents the same slot
//! from being handed out twice in the meantime; a crash wipes reservations,
//! so a half-initialized object is simply free space again — no persistent
//! leak. Leaf allocation additionally scrubs the stale `p_value` left by a
//! crashed insert or deletion (Algorithm 2 lines 12–16).
//!
//! # Micro-logs
//!
//! The PM root page carries a pool of **update logs** (`PLeaf/POldV/PNewV`,
//! Algorithm 3) and **recycle logs** (`PPrev/PCurrent`, Algorithm 6).
//! [`EPallocator::open`] replays unfinished logs following the paper's case
//! analysis before any new operation runs.
//!
//! # Deviations from the paper (documented in DESIGN.md)
//!
//! * Deletion additionally zeroes the dead leaf's `p_value` (one extra
//!   persist). Without it, a dead leaf slot could alias a value object that
//!   was freed and later reallocated to a *different* leaf, and the
//!   Algorithm 2 scrub would free live data.
//! * The log pool has 32 slots of each kind (the paper implies one global
//!   log), so concurrent writers on different ARTs do not serialize on one
//!   log. Recovery replays every slot.

//! # Example
//!
//! ```
//! use hart_epalloc::{EPallocator, ObjClass};
//! use hart_pm::{PmemPool, PoolConfig};
//! use std::sync::Arc;
//!
//! let pool = Arc::new(PmemPool::new(PoolConfig::test_small()));
//! let alloc = EPallocator::create(Arc::clone(&pool));
//!
//! // Reserve, initialize, then durably commit (sets the bitmap bit).
//! let v = alloc.alloc(ObjClass::Value8).unwrap();
//! pool.write(v, &42u64);
//! pool.persist_val::<u64>(v);
//! alloc.commit(v, ObjClass::Value8);
//! assert!(alloc.is_live(v, ObjClass::Value8));
//!
//! // A reopened allocator sees exactly the committed objects.
//! drop(alloc);
//! let reopened = EPallocator::open(pool).unwrap();
//! assert_eq!(reopened.live_count(ObjClass::Value8), 1);
//! ```

mod chunk;
mod epalloc;
mod fsck;
mod leaf;
mod logs;
mod root;

pub use chunk::{ChunkHeader, Geometry, ObjClass, OBJS_PER_CHUNK};
pub use epalloc::{AllocStats, EPallocator};
pub use fsck::FsckReport;
pub use leaf::{
    leaf_read_key, leaf_read_pvalue, leaf_read_val_len, leaf_write_key, leaf_write_pvalue,
    persist_leaf_key, persist_leaf_pvalue, LEAF_SIZE,
};
pub use logs::{RlogGuard, UlogGuard};
