//! ART+CoW — an adaptive radix tree in persistent memory made
//! crash-consistent by **copy-on-write** (Lee et al., FAST 2017; the
//! paper's third radix baseline).
//!
//! ART+CoW shares WOART's PM node formats (re-used from
//! [`hart_woart::layout`]) but never mutates a published node's edge set in
//! place: every child addition or removal copies the affected node, applies
//! the change to the copy, persists the copy wholesale, and then publishes
//! it with a single 8-byte atomic parent-pointer store. The old node is
//! freed afterwards.
//!
//! This gives simple failure atomicity at the price the paper observes in
//! §IV-B: "in most cases ART+CoW performs the worst. The main reason is
//! that its CoW overhead is very high" — every insert pays a node-sized
//! copy, an extra PM allocation and an extra free on top of WOART's costs.

mod tree;

pub use tree::ArtCow;
