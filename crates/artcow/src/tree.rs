//! The ART+CoW tree.

use hart_epalloc::{
    leaf_read_key, leaf_read_pvalue, leaf_read_val_len, leaf_write_key, leaf_write_pvalue,
    persist_leaf_pvalue, LEAF_SIZE,
};
use hart_kv::{Error, Key, MemoryStats, PersistentIndex, Result, Value, MAX_KEY_LEN};
use hart_pm::{PmPtr, PmemPool, PoolConfig};
use hart_woart::layout::*;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const MAGIC: u64 = 0x4152_5443_4F57_3031; // "ARTCOW01"

#[inline]
fn tb(key: &[u8], i: usize) -> u8 {
    if i >= key.len() {
        0
    } else {
        key[i]
    }
}

/// ART with copy-on-write consistency, entirely in emulated PM.
pub struct ArtCow {
    pool: Arc<PmemPool>,
    lock: RwLock<()>,
    len: AtomicUsize,
    root_slot: PmPtr,
}

impl ArtCow {
    /// Format a fresh pool.
    pub fn create(pool: Arc<PmemPool>) -> Result<ArtCow> {
        let base = pool.root_area(16);
        pool.write_zeros(base, 16);
        pool.persist(base, 16);
        pool.write_u64_atomic(base, MAGIC);
        pool.persist(base, 8);
        Ok(ArtCow {
            root_slot: base.add(8),
            pool,
            lock: RwLock::new(()),
            len: AtomicUsize::new(0),
        })
    }

    /// Open an existing pool (pure-PM tree — nothing to rebuild, only the
    /// record count is re-derived).
    pub fn open(pool: Arc<PmemPool>) -> Result<ArtCow> {
        let base = pool.root_area(16);
        if pool.read::<u64>(base) != MAGIC {
            return Err(Error::Corrupted("bad ART+CoW magic"));
        }
        let t = ArtCow {
            root_slot: base.add(8),
            pool,
            lock: RwLock::new(()),
            len: AtomicUsize::new(0),
        };
        let mut n = 0;
        t.for_each_leaf(|_| n += 1);
        t.len.store(n, Ordering::Relaxed);
        Ok(t)
    }

    /// Convenience constructor: fresh pool from a config.
    pub fn with_config(cfg: PoolConfig) -> Result<ArtCow> {
        ArtCow::create(Arc::new(PmemPool::new(cfg)))
    }

    /// The underlying pool.
    pub fn pm_pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    fn make_leaf(&self, key: &Key, value: &Value) -> Result<PmPtr> {
        let pool = &self.pool;
        let vptr = alloc_value(pool, value)?;
        let leaf = pool.alloc_raw(LEAF_SIZE, 8).ok_or(Error::PmExhausted)?;
        leaf_write_key(pool, leaf, key);
        leaf_write_pvalue(pool, leaf, vptr, value.len());
        pool.persist(leaf, LEAF_SIZE);
        Ok(leaf)
    }

    fn free_leaf(&self, leaf: PmPtr) {
        let pool = &self.pool;
        let pv = leaf_read_pvalue(pool, leaf);
        if !pv.is_null() {
            free_value(pool, pv, leaf_read_val_len(pool, leaf));
        }
        pool.free_raw(leaf, LEAF_SIZE, 8);
    }

    fn update_value(&self, leaf: PmPtr, value: &Value) -> Result<()> {
        let pool = &self.pool;
        let old = leaf_read_pvalue(pool, leaf);
        let old_len = leaf_read_val_len(pool, leaf);
        let new = alloc_value(pool, value)?;
        leaf_write_pvalue(pool, leaf, new, value.len());
        persist_leaf_pvalue(pool, leaf);
        if !old.is_null() {
            free_value(pool, old, old_len);
        }
        Ok(())
    }

    /// Copy `node` (optionally into a different kind), run `edit` on the
    /// unpublished copy, persist it wholesale and publish it — the CoW
    /// primitive every structural change goes through.
    fn cow_replace<F: FnOnce(&PmemPool, PmPtr)>(
        &self,
        slot: PmPtr,
        node: PmPtr,
        new_kind: u8,
        edit: F,
    ) -> Result<PmPtr> {
        let pool = &self.pool;
        let copy = copy_to_kind(pool, node, new_kind)?;
        edit(pool, copy);
        persist_node(pool, copy);
        publish_slot(pool, slot, Tagged::Node(copy));
        free_node(pool, node);
        Ok(copy)
    }

    fn insert_rec(&self, slot: PmPtr, key: &Key, depth: usize, value: &Value) -> Result<bool> {
        let pool = &self.pool;
        let kb = key.as_slice();
        match read_slot(pool, slot) {
            Tagged::Null => {
                let leaf = self.make_leaf(key, value)?;
                publish_slot(pool, slot, Tagged::Leaf(leaf));
                Ok(true)
            }
            Tagged::Leaf(l) => {
                let lk = leaf_read_key(pool, l);
                if lk.as_slice() == kb {
                    self.update_value(l, value)?;
                    return Ok(false);
                }
                let lks = lk.as_slice();
                let mut lcp = 0;
                while depth + lcp < lks.len()
                    && depth + lcp < kb.len()
                    && lks[depth + lcp] == kb[depth + lcp]
                {
                    lcp += 1;
                }
                let new_leaf = self.make_leaf(key, value)?;
                let node = alloc_node(pool, NT_N4, &kb[depth..depth + lcp])?;
                add_child_volatile(pool, node, tb(lks, depth + lcp), Tagged::Leaf(l));
                add_child_volatile(pool, node, tb(kb, depth + lcp), Tagged::Leaf(new_leaf));
                persist_node(pool, node);
                publish_slot(pool, slot, Tagged::Node(node));
                Ok(true)
            }
            Tagged::Node(n) => {
                let pfx = prefix(pool, n);
                let p = pfx.as_slice();
                let mut m = 0;
                while m < p.len() && depth + m < kb.len() && kb[depth + m] == p[m] {
                    m += 1;
                }
                if m < p.len() {
                    // CoW prefix split: copy the old node with a truncated
                    // prefix (never mutate the published node), build the
                    // new parent over the copy, publish, free the original.
                    let e_old = p[m];
                    let b_new = tb(kb, depth + m);
                    let new_leaf = self.make_leaf(key, value)?;
                    let truncated = copy_to_kind(pool, n, node_type(pool, n))?;
                    set_prefix(pool, truncated, &p[m + 1..]);
                    persist_node(pool, truncated);
                    let parent = alloc_node(pool, NT_N4, &p[..m])?;
                    add_child_volatile(pool, parent, e_old, Tagged::Node(truncated));
                    add_child_volatile(pool, parent, b_new, Tagged::Leaf(new_leaf));
                    persist_node(pool, parent);
                    publish_slot(pool, slot, Tagged::Node(parent));
                    free_node(pool, n);
                    Ok(true)
                } else {
                    let depth = depth + p.len();
                    let b = tb(kb, depth);
                    if let Some(cslot) = find_child_slot(pool, n, b) {
                        self.insert_rec(cslot, key, depth + 1, value)
                    } else {
                        // CoW child addition (growing the kind when full).
                        let new_leaf = self.make_leaf(key, value)?;
                        let nt = node_type(pool, n);
                        let target = if node_count(pool, n) == node_capacity(nt) {
                            grown_kind(nt)
                        } else {
                            nt
                        };
                        self.cow_replace(slot, n, target, |pool, copy| {
                            let ok = add_child_volatile(pool, copy, b, Tagged::Leaf(new_leaf));
                            debug_assert!(ok);
                        })?;
                        Ok(true)
                    }
                }
            }
        }
    }

    fn remove_rec(&self, slot: PmPtr, key: &[u8], depth: usize) -> Result<bool> {
        let pool = &self.pool;
        let Tagged::Node(node) = read_slot(pool, slot) else {
            unreachable!("remove_rec called on a node slot");
        };
        let pfx = prefix(pool, node);
        let p = pfx.as_slice();
        if key.len() < depth + p.len() || &key[depth..depth + p.len()] != p {
            return Ok(false);
        }
        let depth = depth + p.len();
        let b = tb(key, depth);
        let Some(cslot) = find_child_slot(pool, node, b) else {
            return Ok(false);
        };
        match read_slot(pool, cslot) {
            Tagged::Null => Ok(false),
            Tagged::Leaf(l) => {
                if leaf_read_key(pool, l).as_slice() != key {
                    return Ok(false);
                }
                // CoW removal: copy without the child (shrinking the kind
                // on underflow), publish, then free leaf + old node.
                let count = node_count(pool, node) - 1;
                if count == 1 {
                    // Collapse: the survivor replaces this node entirely.
                    let survivor = children_sorted(pool, node)
                        .into_iter()
                        .find(|(eb, _)| *eb != b)
                        .expect("two children before removal");
                    match survivor.1 {
                        Tagged::Leaf(sl) => {
                            publish_slot(pool, slot, Tagged::Leaf(sl));
                        }
                        Tagged::Node(gn) => {
                            // CoW the grandchild with the folded prefix.
                            let folded = copy_to_kind(pool, gn, node_type(pool, gn))?;
                            let mut buf = [0u8; MAX_KEY_LEN];
                            let a = prefix(pool, node);
                            let c = prefix(pool, gn);
                            let total = a.len() + 1 + c.len();
                            assert!(total <= MAX_KEY_LEN);
                            buf[..a.len()].copy_from_slice(a.as_slice());
                            buf[a.len()] = survivor.0;
                            buf[a.len() + 1..total].copy_from_slice(c.as_slice());
                            set_prefix(pool, folded, &buf[..total]);
                            persist_node(pool, folded);
                            publish_slot(pool, slot, Tagged::Node(folded));
                            free_node(pool, gn);
                        }
                        Tagged::Null => unreachable!(),
                    }
                    free_node(pool, node);
                } else {
                    let nt = node_type(pool, node);
                    let target = shrink_kind(nt, count).unwrap_or(nt);
                    let pool2 = &self.pool;
                    let copy = copy_to_kind(pool2, node, target)?;
                    let ok = remove_child(pool2, copy, b);
                    debug_assert!(ok);
                    persist_node(pool2, copy);
                    publish_slot(pool2, slot, Tagged::Node(copy));
                    free_node(pool2, node);
                }
                self.free_leaf(l);
                Ok(true)
            }
            Tagged::Node(_) => self.remove_rec(cslot, key, depth + 1),
        }
    }

    /// In-order traversal over every leaf.
    pub fn for_each_leaf<F: FnMut(PmPtr)>(&self, mut f: F) {
        fn walk<F: FnMut(PmPtr)>(pool: &PmemPool, t: Tagged, f: &mut F) {
            match t {
                Tagged::Null => {}
                Tagged::Leaf(l) => f(l),
                Tagged::Node(n) => {
                    for (_, c) in children_sorted(pool, n) {
                        walk(pool, c, f);
                    }
                }
            }
        }
        walk(&self.pool, read_slot(&self.pool, self.root_slot), &mut f);
    }

    /// Bounded in-order descent for `range`/`scan`: seek to `start` like a
    /// point search (the left spine compares compressed prefixes and skips
    /// smaller sibling edges), then emit leaves in key order until `end`,
    /// `limit`, or the tree is exhausted — O(depth + answer) node visits
    /// instead of one PM key read per live leaf.
    fn scan_ordered(&self, s: &[u8], e: &[u8], limit: usize) -> Vec<(Key, Value)> {
        /// Returns `false` once the traversal is done (past `end` or at
        /// `limit`); in-order visiting makes that a global stop.
        #[allow(clippy::too_many_arguments)]
        fn walk(
            pool: &PmemPool,
            t: Tagged,
            depth: usize,
            seeking: bool,
            s: &[u8],
            e: &[u8],
            limit: usize,
            out: &mut Vec<(Key, Value)>,
        ) -> bool {
            match t {
                Tagged::Null => true,
                Tagged::Leaf(l) => {
                    let k = leaf_read_key(pool, l);
                    let ks = k.as_slice();
                    if ks > e {
                        return false;
                    }
                    if ks >= s {
                        if let Ok(key) = Key::new(ks) {
                            let pv = leaf_read_pvalue(pool, l);
                            out.push((key, read_value(pool, pv, leaf_read_val_len(pool, l))));
                        }
                        if out.len() >= limit {
                            return false;
                        }
                    }
                    true
                }
                Tagged::Node(n) => {
                    let mut depth = depth;
                    let mut seeking = seeking;
                    if seeking {
                        // Compare the compressed prefix against the
                        // terminated start key: a smaller prefix byte means
                        // the whole subtree precedes `start` (skip it), a
                        // larger one that it follows (emit everything,
                        // still bounded by `end` at the leaves).
                        let pfx = prefix(pool, n);
                        for (i, &pb) in pfx.as_slice().iter().enumerate() {
                            match pb.cmp(&tb(s, depth + i)) {
                                std::cmp::Ordering::Less => return true,
                                std::cmp::Ordering::Greater => {
                                    seeking = false;
                                    break;
                                }
                                std::cmp::Ordering::Equal => {}
                            }
                        }
                        depth += pfx.as_slice().len();
                    }
                    let sb = tb(s, depth);
                    for (b, c) in children_sorted(pool, n) {
                        if seeking && b < sb {
                            continue;
                        }
                        if !walk(pool, c, depth + 1, seeking && b == sb, s, e, limit, out) {
                            return false;
                        }
                    }
                    true
                }
            }
        }
        let mut out = Vec::new();
        if s > e || limit == 0 {
            return out;
        }
        walk(
            &self.pool,
            read_slot(&self.pool, self.root_slot),
            0,
            true,
            s,
            e,
            limit,
            &mut out,
        );
        out
    }

    fn descend(&self, key: &[u8]) -> Option<PmPtr> {
        let pool = &self.pool;
        let mut cur = read_slot(pool, self.root_slot);
        let mut depth = 0usize;
        loop {
            match cur {
                Tagged::Null => return None,
                Tagged::Leaf(l) => {
                    return (leaf_read_key(pool, l).as_slice() == key).then_some(l);
                }
                Tagged::Node(n) => {
                    let pfx = prefix(pool, n);
                    let p = pfx.as_slice();
                    if key.len() < depth + p.len() || &key[depth..depth + p.len()] != p {
                        return None;
                    }
                    depth += p.len();
                    let slot = find_child_slot(pool, n, tb(key, depth))?;
                    cur = read_slot(pool, slot);
                    depth += 1;
                }
            }
        }
    }
}

impl PersistentIndex for ArtCow {
    fn insert(&self, key: &Key, value: &Value) -> Result<()> {
        let _g = self.lock.write();
        if self.insert_rec(self.root_slot, key, 0, value)? {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn search(&self, key: &Key) -> Result<Option<Value>> {
        let _g = self.lock.read();
        let pool = &self.pool;
        Ok(self.descend(key.as_slice()).map(|leaf| {
            let pv = leaf_read_pvalue(pool, leaf);
            read_value(pool, pv, leaf_read_val_len(pool, leaf))
        }))
    }

    fn update(&self, key: &Key, value: &Value) -> Result<bool> {
        let _g = self.lock.write();
        match self.descend(key.as_slice()) {
            Some(leaf) => {
                self.update_value(leaf, value)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn remove(&self, key: &Key) -> Result<bool> {
        let _g = self.lock.write();
        let pool = &self.pool;
        let kb = key.as_slice();
        let removed = match read_slot(pool, self.root_slot) {
            Tagged::Null => false,
            Tagged::Leaf(l) => {
                if leaf_read_key(pool, l).as_slice() == kb {
                    publish_slot(pool, self.root_slot, Tagged::Null);
                    self.free_leaf(l);
                    true
                } else {
                    false
                }
            }
            Tagged::Node(_) => self.remove_rec(self.root_slot, kb, 0)?,
        };
        if removed {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        Ok(removed)
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn memory_stats(&self) -> MemoryStats {
        MemoryStats {
            dram_bytes: std::mem::size_of::<Self>(),
            pm_bytes: self.pool.stats().snapshot().bytes_in_use as usize,
        }
    }

    fn range(&self, start: &Key, end: &Key) -> Result<Vec<(Key, Value)>> {
        let _g = self.lock.read();
        Ok(self.scan_ordered(start.as_slice(), end.as_slice(), usize::MAX))
    }

    fn scan(&self, start: &Key, end: &Key, limit: usize) -> Result<Vec<(Key, Value)>> {
        let _g = self.lock.read();
        Ok(self.scan_ordered(start.as_slice(), end.as_slice(), limit))
    }

    fn name(&self) -> &'static str {
        "ART+CoW"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn fresh() -> ArtCow {
        ArtCow::with_config(PoolConfig::test_small()).unwrap()
    }

    fn k(s: &str) -> Key {
        Key::from_str(s).unwrap()
    }

    fn v(n: u64) -> Value {
        Value::from_u64(n)
    }

    #[test]
    fn roundtrip_basics() {
        let t = fresh();
        for (i, key) in ["romane", "romanus", "romulus", "rubens", "ruber"]
            .iter()
            .enumerate()
        {
            t.insert(&k(key), &v(i as u64)).unwrap();
        }
        for (i, key) in ["romane", "romanus", "romulus", "rubens", "ruber"]
            .iter()
            .enumerate()
        {
            assert_eq!(t.search(&k(key)).unwrap().unwrap().as_u64(), i as u64);
        }
        assert_eq!(t.search(&k("roman")).unwrap(), None);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn prefix_keys_and_deletes() {
        let t = fresh();
        for key in ["a", "ab", "abc", "b"] {
            t.insert(&k(key), &v(key.len() as u64)).unwrap();
        }
        assert!(t.remove(&k("ab")).unwrap());
        assert!(!t.remove(&k("ab")).unwrap());
        assert_eq!(t.search(&k("a")).unwrap().unwrap().as_u64(), 1);
        assert_eq!(t.search(&k("abc")).unwrap().unwrap().as_u64(), 3);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn cow_frees_old_nodes() {
        let t = fresh();
        let baseline = t.pm_pool().stats().snapshot().bytes_in_use;
        for i in 0..300u64 {
            t.insert(&Key::from_u64_base62(i, 6), &v(i)).unwrap();
        }
        for i in 0..300u64 {
            assert!(t.remove(&Key::from_u64_base62(i, 6)).unwrap());
        }
        assert_eq!(
            t.pm_pool().stats().snapshot().bytes_in_use,
            baseline,
            "CoW must free every superseded node"
        );
    }

    #[test]
    fn matches_btreemap_model() {
        let t = fresh();
        let mut model: BTreeMap<String, u64> = BTreeMap::new();
        let mut state = 0x9876_5432u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..4000 {
            let r = rng();
            let key_s = format!("K{:03}", r % 500);
            let key = k(&key_s);
            match r % 4 {
                0 | 1 => {
                    t.insert(&key, &v(r)).unwrap();
                    model.insert(key_s, r);
                }
                2 => {
                    assert_eq!(t.remove(&key).unwrap(), model.remove(&key_s).is_some());
                }
                _ => {
                    assert_eq!(
                        t.search(&key).unwrap().map(|x| x.as_u64()),
                        model.get(&key_s).copied()
                    );
                }
            }
        }
        assert_eq!(t.len(), model.len());
    }

    #[test]
    fn update_swaps_values() {
        let t = fresh();
        t.insert(&k("key"), &v(1)).unwrap();
        assert!(t
            .update(&k("key"), &Value::new(b"0123456789abcdef").unwrap())
            .unwrap());
        assert_eq!(
            t.search(&k("key")).unwrap().unwrap().as_slice(),
            b"0123456789abcdef"
        );
        assert!(!t.update(&k("absent"), &v(0)).unwrap());
    }

    #[test]
    fn reopen_preserves_tree() {
        let pool = Arc::new(PmemPool::new(PoolConfig::test_small()));
        let t = ArtCow::create(Arc::clone(&pool)).unwrap();
        for i in 0..400u64 {
            t.insert(&Key::from_u64_base62(i, 6), &v(i)).unwrap();
        }
        drop(t);
        let t2 = ArtCow::open(pool).unwrap();
        assert_eq!(t2.len(), 400);
        for i in 0..400u64 {
            assert_eq!(
                t2.search(&Key::from_u64_base62(i, 6))
                    .unwrap()
                    .unwrap()
                    .as_u64(),
                i
            );
        }
    }

    #[test]
    fn cow_does_more_allocations_than_woart_would() {
        // The CoW cost signature: allocation traffic far above live bytes.
        let t = fresh();
        for i in 0..200u64 {
            t.insert(&Key::from_u64_base62(i, 6), &v(i)).unwrap();
        }
        let s = t.pm_pool().stats().snapshot();
        assert!(
            s.raw_frees > 100,
            "CoW must continually free superseded nodes (saw {})",
            s.raw_frees
        );
    }

    #[test]
    fn range_sorted() {
        let t = fresh();
        for i in (0..50u64).rev() {
            t.insert(&Key::from_u64_base62(i, 4), &v(i)).unwrap();
        }
        let got = t
            .range(&Key::from_u64_base62(0, 4), &Key::from_u64_base62(49, 4))
            .unwrap();
        assert_eq!(got.len(), 50);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
