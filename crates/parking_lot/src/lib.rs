//! A drop-in subset of the `parking_lot` API implemented over `std::sync`.
//!
//! The build environment has no crates.io mirror, so the workspace vendors
//! the small slice of `parking_lot` it actually uses: `Mutex`, `RwLock`
//! and `Condvar` with non-poisoning guards, plus `data_ptr` (which the
//! optimistic read path relies on to reach lock-protected data without
//! acquiring the lock; see `hart`'s concurrency notes).
//!
//! Poisoning is deliberately swallowed (`PoisonError::into_inner`): like
//! real `parking_lot`, a panicking critical section does not make the data
//! permanently unreachable.
//!
//! # The lock witness (`--features lock-witness`)
//!
//! The workspace's locks form a strict hierarchy (DESIGN.md §8; the same
//! table `pmlint`'s static R5 `lock-order` rule checks). Locks opt in by
//! being built with [`Mutex::new_ranked`] / [`RwLock::new_ranked`] using
//! the ranks in [`rank`]. With the `lock-witness` feature enabled, every
//! *blocking* acquisition is checked against a thread-local stack of held
//! ranks and panics immediately on an out-of-hierarchy acquisition —
//! turning a potential deadlock into a deterministic test failure at the
//! exact offending call site. The rules mirror R5:
//!
//! * a blocking acquire must have a rank strictly above every held rank,
//!   except that a *chained* lock class (hand-over-hand, e.g. bucket
//!   old→current migration) may nest at its own rank;
//! * `try_*` acquisitions are never checked (they cannot deadlock) but
//!   are pushed, so later blocking acquires are still validated against
//!   them;
//! * rank-0 locks (everything built with plain `new`) are invisible to
//!   the witness: they are leaf locks whose critical sections take no
//!   other lock (asserted by review, not by the witness).
//!
//! Without the feature, `new_ranked` compiles to `new` and the witness
//! costs nothing.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync;

/// Canonical lock ranks (DESIGN.md §8). `pmlint`'s `LOCK_ORDER` table
/// mirrors these; its self-test asserts the two stay in sync. Gaps are
/// left for future classes.
///
/// These classes are also the vocabulary of pmlint's R10 `guarded-by`
/// table (`crates/pmlint/src/racer.rs`): each `GUARDED_BY` entry names
/// which of these classes must be held to touch a shared field, so a
/// new ranked lock usually lands in three places at once — a rank here,
/// an acquisition pattern in `locks.rs`, and the fields it covers in
/// `racer.rs` (the pattern-liveness selftest fails if any of the three
/// goes stale).
pub mod rank {
    /// `Directory.scan_cache` — generation-stamped sorted-shard list for
    /// ordered scans; never held across another acquisition (the list is
    /// rebuilt *before* the lock is taken), hence the lowest rank.
    pub const DIR_SCAN_CACHE: u16 = 5;
    /// `Directory.resize` — serializes grow/finish and the pinless
    /// fallback read path.
    pub const DIR_RESIZE: u16 = 10;
    /// `Bucket.entries` — per-bucket entry table; chained (old→current
    /// hand-over-hand during migration).
    pub const BUCKET_ENTRIES: u16 = 20;
    /// `Shard.inner` — per-ART-shard seqlock'd RwLock.
    pub const SHARD: u16 = 30;
    /// `EPallocator.classes[i]` — per-object-class allocator state.
    pub const EPALLOC_CLASS: u16 = 40;
    /// `SlotPool.free` — micro-log slot free list.
    pub const LOG_SLOTS: u16 = 50;
    /// `ebr::GARBAGE` — global deferred-drop bag.
    pub const EBR_GARBAGE: u16 = 60;
    /// `GroupCommitter.state` — group-commit batch state. A batch flush
    /// runs `PmemPool::persist` promotion under it, and no other ranked
    /// lock is ever acquired while it is held; only the leaf-level
    /// connection registry ranks above it.
    pub const GROUP_COMMIT: u16 = 70;
    /// `Shared.conns` — server connection registry; held briefly to
    /// push/drain sockets for shutdown, with nothing ranked ever
    /// acquired under it, hence the top rank.
    pub const SERVER_CONNS: u16 = 80;
}

#[cfg(feature = "lock-witness")]
mod witness {
    use std::cell::RefCell;

    /// Witness identity of one acquisition: carried by the guard so the
    /// release pops exactly what the acquire pushed.
    #[derive(Clone, Copy)]
    pub(crate) struct Token {
        pub rank: u16,
        pub chained: bool,
        /// Address of the lock's raw field — stable for the lock's
        /// lifetime and thin even for `T: ?Sized` data.
        pub addr: usize,
        pub name: &'static str,
    }

    thread_local! {
        static HELD: RefCell<Vec<Token>> = const { RefCell::new(Vec::new()) };
    }

    /// Validate a *blocking* acquisition against the held stack. Called
    /// before blocking so a would-be inversion fails fast even when the
    /// lock happens to be free.
    pub(crate) fn check(t: Token) {
        if t.rank == 0 {
            return;
        }
        HELD.with(|h| {
            let h = h.borrow();
            // Compare against the *maximum* held rank, not the top of
            // stack: try-pushes may leave the stack non-monotonic.
            if let Some(max) = h.iter().max_by_key(|e| e.rank) {
                let ok = t.rank > max.rank || (t.rank == max.rank && t.chained && max.chained);
                if !ok {
                    panic!(
                        "lock-witness: acquiring {} (rank {}) while holding {} (rank {}) \
                         violates the lock hierarchy (DESIGN.md §8)",
                        t.name, t.rank, max.name, max.rank
                    );
                }
            }
        });
    }

    /// Record a successful acquisition (blocking after [`check`], or any
    /// successful `try_*`).
    pub(crate) fn push(t: Token) {
        if t.rank == 0 {
            return;
        }
        HELD.with(|h| h.borrow_mut().push(t));
    }

    /// Record a release: pop the most recent entry for this lock.
    pub(crate) fn release(t: Token) {
        if t.rank == 0 {
            return;
        }
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(i) = h.iter().rposition(|e| e.addr == t.addr) {
                h.remove(i);
            }
        });
    }

    /// Held-rank snapshot for assertions in tests.
    #[allow(dead_code)]
    pub fn held_ranks() -> Vec<u16> {
        HELD.with(|h| h.borrow().iter().map(|e| e.rank).collect())
    }
}

/// Rank/name metadata attached to a ranked lock under `lock-witness`.
#[cfg(feature = "lock-witness")]
#[derive(Clone, Copy)]
struct LockMeta {
    rank: u16,
    chained: bool,
    name: &'static str,
}

#[cfg(feature = "lock-witness")]
const UNRANKED: LockMeta = LockMeta {
    rank: 0,
    chained: false,
    name: "<unranked>",
};

/// A mutual-exclusion lock with `parking_lot`-style (non-poisoning,
/// `Result`-free) API.
pub struct Mutex<T: ?Sized> {
    raw: sync::Mutex<()>,
    #[cfg(feature = "lock-witness")]
    meta: LockMeta,
    data: UnsafeCell<T>,
}

// SAFETY: identical bounds to std::sync::Mutex — the raw lock serializes
// all access to `data`.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
// SAFETY: as above — shared handles only reach `data` through the lock.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// New unlocked mutex, invisible to the lock witness (rank 0).
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            raw: sync::Mutex::new(()),
            #[cfg(feature = "lock-witness")]
            meta: UNRANKED,
            data: UnsafeCell::new(value),
        }
    }

    /// New unlocked mutex carrying a lock-hierarchy rank (see [`rank`]).
    /// Without the `lock-witness` feature this is exactly [`Mutex::new`].
    pub const fn new_ranked(value: T, rank: u16, chained: bool, name: &'static str) -> Mutex<T> {
        #[cfg(not(feature = "lock-witness"))]
        {
            let _ = (rank, chained, name);
            Mutex::new(value)
        }
        #[cfg(feature = "lock-witness")]
        Mutex {
            raw: sync::Mutex::new(()),
            meta: LockMeta {
                rank,
                chained,
                name,
            },
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    #[cfg(feature = "lock-witness")]
    fn token(&self) -> witness::Token {
        witness::Token {
            rank: self.meta.rank,
            chained: self.meta.chained,
            addr: &self.raw as *const sync::Mutex<()> as usize,
            name: self.meta.name,
        }
    }

    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lock-witness")]
        let tok = {
            let t = self.token();
            witness::check(t);
            t
        };
        let raw = self
            .raw
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        #[cfg(feature = "lock-witness")]
        witness::push(tok);
        MutexGuard {
            raw: ManuallyDrop::new(raw),
            data: self.data.get(),
            #[cfg(feature = "lock-witness")]
            w: tok,
        }
    }

    /// Try to acquire without blocking. Never checked by the lock witness
    /// (a failed try cannot deadlock), but a successful acquisition is
    /// recorded so later blocking acquires are validated against it.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let raw = match self.raw.try_lock() {
            Ok(raw) => raw,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "lock-witness")]
        let tok = {
            let t = self.token();
            witness::push(t);
            t
        };
        Some(MutexGuard {
            raw: ManuallyDrop::new(raw),
            data: self.data.get(),
            #[cfg(feature = "lock-witness")]
            w: tok,
        })
    }

    /// Mutable access without locking (requires unique ownership).
    pub fn get_mut(&mut self) -> &mut T {
        // SAFETY: `&mut self` proves no guard or other borrow is alive.
        unsafe { &mut *self.data.get() }
    }

    /// Raw pointer to the protected data, without acquiring the lock.
    pub fn data_ptr(&self) -> *mut T {
        self.data.get()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    raw: ManuallyDrop<sync::MutexGuard<'a, ()>>,
    data: *mut T,
    #[cfg(feature = "lock-witness")]
    w: witness::Token,
}

// SAFETY: a shared guard only hands out `&T`, so `T: Sync` suffices.
unsafe impl<T: ?Sized + Sync> Sync for MutexGuard<'_, T> {}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the raw lock, so `data` is valid and
        // unaliased by other threads for the guard's lifetime.
        unsafe { &*self.data }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive guard borrow + held lock give unique access.
        unsafe { &mut *self.data }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "lock-witness")]
        witness::release(self.w);
        // SAFETY: `raw` is only taken here or in `Condvar::wait`, which
        // always puts a fresh guard back before returning.
        unsafe { ManuallyDrop::drop(&mut self.raw) }
    }
}

/// A reader-writer lock with `parking_lot`-style API.
pub struct RwLock<T: ?Sized> {
    raw: sync::RwLock<()>,
    #[cfg(feature = "lock-witness")]
    meta: LockMeta,
    data: UnsafeCell<T>,
}

// SAFETY: identical bounds to std::sync::RwLock — the raw lock mediates
// every access to `data`.
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
// SAFETY: readers share `&T` (needs `T: Sync`) and writers are exclusive
// (needs `T: Send`), matching std's bounds.
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// New unlocked lock, invisible to the lock witness (rank 0).
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            raw: sync::RwLock::new(()),
            #[cfg(feature = "lock-witness")]
            meta: UNRANKED,
            data: UnsafeCell::new(value),
        }
    }

    /// New unlocked lock carrying a lock-hierarchy rank (see [`rank`]).
    /// Without the `lock-witness` feature this is exactly [`RwLock::new`].
    pub const fn new_ranked(value: T, rank: u16, chained: bool, name: &'static str) -> RwLock<T> {
        #[cfg(not(feature = "lock-witness"))]
        {
            let _ = (rank, chained, name);
            RwLock::new(value)
        }
        #[cfg(feature = "lock-witness")]
        RwLock {
            raw: sync::RwLock::new(()),
            meta: LockMeta {
                rank,
                chained,
                name,
            },
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    #[cfg(feature = "lock-witness")]
    fn token(&self) -> witness::Token {
        witness::Token {
            rank: self.meta.rank,
            chained: self.meta.chained,
            addr: &self.raw as *const sync::RwLock<()> as usize,
            name: self.meta.name,
        }
    }

    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lock-witness")]
        let tok = {
            let t = self.token();
            witness::check(t);
            t
        };
        let raw = self
            .raw
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner);
        #[cfg(feature = "lock-witness")]
        witness::push(tok);
        RwLockReadGuard {
            _raw: raw,
            data: self.data.get(),
            #[cfg(feature = "lock-witness")]
            w: tok,
        }
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lock-witness")]
        let tok = {
            let t = self.token();
            witness::check(t);
            t
        };
        let raw = self
            .raw
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner);
        #[cfg(feature = "lock-witness")]
        witness::push(tok);
        RwLockWriteGuard {
            _raw: raw,
            data: self.data.get(),
            #[cfg(feature = "lock-witness")]
            w: tok,
        }
    }

    /// Try to acquire exclusive access without blocking. Witness-exempt
    /// like [`Mutex::try_lock`], but recorded on success.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let raw = match self.raw.try_write() {
            Ok(raw) => raw,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "lock-witness")]
        let tok = {
            let t = self.token();
            witness::push(t);
            t
        };
        Some(RwLockWriteGuard {
            _raw: raw,
            data: self.data.get(),
            #[cfg(feature = "lock-witness")]
            w: tok,
        })
    }

    /// Try to acquire shared access without blocking. Witness-exempt like
    /// [`Mutex::try_lock`], but recorded on success.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let raw = match self.raw.try_read() {
            Ok(raw) => raw,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "lock-witness")]
        let tok = {
            let t = self.token();
            witness::push(t);
            t
        };
        Some(RwLockReadGuard {
            _raw: raw,
            data: self.data.get(),
            #[cfg(feature = "lock-witness")]
            w: tok,
        })
    }

    /// Mutable access without locking (requires unique ownership).
    pub fn get_mut(&mut self) -> &mut T {
        // SAFETY: `&mut self` proves no guard or other borrow is alive.
        unsafe { &mut *self.data.get() }
    }

    /// Raw pointer to the protected data, without acquiring the lock.
    ///
    /// The optimistic read path uses this to traverse a shard's ART with
    /// no lock held; all such reads are validated against a seqlock
    /// version counter before being trusted.
    pub fn data_ptr(&self) -> *mut T {
        self.data.get()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    _raw: sync::RwLockReadGuard<'a, ()>,
    data: *mut T,
    #[cfg(feature = "lock-witness")]
    w: witness::Token,
}

// SAFETY: a read guard only hands out `&T`, so `T: Sync` suffices.
unsafe impl<T: ?Sized + Sync> Sync for RwLockReadGuard<'_, T> {}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the held read lock keeps writers out, so `data` is valid
        // and unchanging for the guard's lifetime.
        unsafe { &*self.data }
    }
}

#[cfg(feature = "lock-witness")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        witness::release(self.w);
    }
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    _raw: sync::RwLockWriteGuard<'a, ()>,
    data: *mut T,
    #[cfg(feature = "lock-witness")]
    w: witness::Token,
}

// SAFETY: sharing the guard only shares `&T`, so `T: Sync` suffices.
unsafe impl<T: ?Sized + Sync> Sync for RwLockWriteGuard<'_, T> {}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the held write lock gives this guard sole access.
        unsafe { &*self.data }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive guard borrow + held write lock give unique
        // access.
        unsafe { &mut *self.data }
    }
}

#[cfg(feature = "lock-witness")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        witness::release(self.w);
    }
}

/// A condition variable paired with [`Mutex`].
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's mutex and wait for a notification,
    /// reacquiring before returning.
    pub fn wait<T: ?Sized>(&self, guard: &mut MutexGuard<'_, T>) {
        // The witness mirrors the real lock state across the wait: the
        // mutex is released for the wait's duration and reacquired after
        // (re-pushed without a rank check — the reacquisition restores an
        // ordering that was already validated at the original acquire).
        #[cfg(feature = "lock-witness")]
        witness::release(guard.w);
        // SAFETY: the raw guard is moved out for the duration of the wait
        // and a fresh one is written back before this function returns, so
        // `MutexGuard::drop` always sees an initialized guard.
        let raw = unsafe { ManuallyDrop::take(&mut guard.raw) };
        let raw = self
            .inner
            .wait(raw)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.raw = ManuallyDrop::new(raw);
        #[cfg(feature = "lock-witness")]
        witness::push(guard.w);
    }

    /// As [`Condvar::wait`], but give up after `timeout`. Returns whether
    /// the wait timed out; spurious wakeups are possible either way, so
    /// callers re-check their predicate.
    pub fn wait_for<T: ?Sized>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        #[cfg(feature = "lock-witness")]
        witness::release(guard.w);
        // SAFETY: the raw guard is moved out for the duration of the wait
        // and a fresh one is written back before this function returns, so
        // `MutexGuard::drop` always sees an initialized guard.
        let raw = unsafe { ManuallyDrop::take(&mut guard.raw) };
        let (raw, res) = match self.inner.wait_timeout(raw, timeout) {
            Ok((raw, res)) => (raw, res),
            Err(p) => {
                let (raw, res) = p.into_inner();
                (raw, res)
            }
        };
        guard.raw = ManuallyDrop::new(raw);
        #[cfg(feature = "lock-witness")]
        witness::push(guard.w);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7u64));
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
        drop((r1, r2));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn data_ptr_points_at_value() {
        let l = RwLock::new(41u64);
        // SAFETY: `l` is locally owned with no guard alive, so the raw
        // pointer is unaliased.
        unsafe { *l.data_ptr() += 1 };
        assert_eq!(*l.read(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn guard_survives_panic_in_section() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // Non-poisoning: the data stays reachable.
        assert_eq!(*m.lock(), 0);
    }

    #[cfg(feature = "lock-witness")]
    mod witness {
        use super::super::*;

        #[test]
        fn in_order_acquisition_passes() {
            let a = Mutex::new_ranked(1, rank::DIR_RESIZE, false, "A");
            let b = RwLock::new_ranked(2, rank::BUCKET_ENTRIES, true, "B");
            let c = Mutex::new_ranked(3, rank::EBR_GARBAGE, false, "C");
            let _ga = a.lock();
            let _gb = b.write();
            let _gc = c.lock();
        }

        #[test]
        fn out_of_order_acquisition_panics() {
            let lo = Mutex::new_ranked(1, rank::DIR_RESIZE, false, "LO");
            let hi = Mutex::new_ranked(2, rank::LOG_SLOTS, false, "HI");
            let _ghi = hi.lock();
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _glo = lo.lock();
            }));
            assert!(r.is_err(), "inversion must panic");
        }

        #[test]
        fn equal_rank_needs_chained() {
            let a = RwLock::new_ranked(1, rank::BUCKET_ENTRIES, true, "OLD");
            let b = RwLock::new_ranked(2, rank::BUCKET_ENTRIES, true, "CUR");
            // Chained class: hand-over-hand nesting at the same rank.
            let _ga = a.write();
            let _gb = b.write();
            drop((_ga, _gb));
            let c = Mutex::new_ranked(1, rank::SHARD, false, "S1");
            let d = Mutex::new_ranked(2, rank::SHARD, false, "S2");
            let _gc = c.lock();
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _gd = d.lock();
            }));
            assert!(r.is_err(), "unchained same-rank nesting must panic");
        }

        #[test]
        fn try_acquisitions_are_exempt_but_recorded() {
            let lo = Mutex::new_ranked(1, rank::DIR_RESIZE, false, "LO");
            let hi = Mutex::new_ranked(2, rank::LOG_SLOTS, false, "HI");
            let _ghi = hi.lock();
            // A try below the held rank is allowed…
            let glo = lo.try_lock().unwrap();
            // …but it is on the stack: a blocking acquire between the two
            // ranks must now fail against the *maximum* held rank.
            let mid = Mutex::new_ranked(3, rank::SHARD, false, "MID");
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _gm = mid.lock();
            }));
            assert!(r.is_err(), "blocking acquire below a held rank must panic");
            drop(glo);
        }

        #[test]
        fn release_unwinds_the_stack() {
            let lo = Mutex::new_ranked(1, rank::DIR_RESIZE, false, "LO");
            let hi = Mutex::new_ranked(2, rank::LOG_SLOTS, false, "HI");
            {
                let _ghi = hi.lock();
            }
            // After release, the lower rank is legal again.
            let _glo = lo.lock();
        }

        #[test]
        fn unranked_locks_are_invisible() {
            let plain = Mutex::new(1);
            let ranked = Mutex::new_ranked(2, rank::DIR_RESIZE, false, "R");
            let _gp = plain.lock();
            // Rank 0 held → any ranked acquire is still legal.
            let _gr = ranked.lock();
            // And rank 0 under a high rank is legal too.
            let hi = Mutex::new_ranked(3, rank::EBR_GARBAGE, false, "HI");
            let _gh = hi.lock();
            let plain2 = Mutex::new(4);
            let _gp2 = plain2.lock();
        }

        #[test]
        fn condvar_wait_releases_for_the_witness() {
            let pair = Arc::new((
                Mutex::new_ranked(false, rank::LOG_SLOTS, false, "CV"),
                Condvar::new(),
            ));
            let p2 = Arc::clone(&pair);
            let t = std::thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut g = m.lock();
                while !*g {
                    cv.wait(&mut g);
                }
                // Reacquired after the wait: still on the witness stack.
                assert_eq!(crate::witness::held_ranks(), vec![rank::LOG_SLOTS]);
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
            t.join().unwrap();
        }

        use std::sync::Arc;
    }
}
