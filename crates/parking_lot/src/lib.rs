//! A drop-in subset of the `parking_lot` API implemented over `std::sync`.
//!
//! The build environment has no crates.io mirror, so the workspace vendors
//! the small slice of `parking_lot` it actually uses: `Mutex`, `RwLock`
//! and `Condvar` with non-poisoning guards, plus `data_ptr` (which the
//! optimistic read path relies on to reach lock-protected data without
//! acquiring the lock; see `hart`'s concurrency notes).
//!
//! Poisoning is deliberately swallowed (`PoisonError::into_inner`): like
//! real `parking_lot`, a panicking critical section does not make the data
//! permanently unreachable.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock with `parking_lot`-style (non-poisoning,
/// `Result`-free) API.
pub struct Mutex<T: ?Sized> {
    raw: sync::Mutex<()>,
    data: UnsafeCell<T>,
}

// SAFETY: identical bounds to std::sync::Mutex — the raw lock serializes
// all access to `data`.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
// SAFETY: as above — shared handles only reach `data` through the lock.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// New unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            raw: sync::Mutex::new(()),
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let raw = self
            .raw
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard {
            raw: ManuallyDrop::new(raw),
            data: self.data.get(),
        }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.raw.try_lock() {
            Ok(raw) => Some(MutexGuard {
                raw: ManuallyDrop::new(raw),
                data: self.data.get(),
            }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                raw: ManuallyDrop::new(p.into_inner()),
                data: self.data.get(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires unique ownership).
    pub fn get_mut(&mut self) -> &mut T {
        // SAFETY: `&mut self` proves no guard or other borrow is alive.
        unsafe { &mut *self.data.get() }
    }

    /// Raw pointer to the protected data, without acquiring the lock.
    pub fn data_ptr(&self) -> *mut T {
        self.data.get()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    raw: ManuallyDrop<sync::MutexGuard<'a, ()>>,
    data: *mut T,
}

// SAFETY: a shared guard only hands out `&T`, so `T: Sync` suffices.
unsafe impl<T: ?Sized + Sync> Sync for MutexGuard<'_, T> {}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the raw lock, so `data` is valid and
        // unaliased by other threads for the guard's lifetime.
        unsafe { &*self.data }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive guard borrow + held lock give unique access.
        unsafe { &mut *self.data }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: `raw` is only taken here or in `Condvar::wait`, which
        // always puts a fresh guard back before returning.
        unsafe { ManuallyDrop::drop(&mut self.raw) }
    }
}

/// A reader-writer lock with `parking_lot`-style API.
pub struct RwLock<T: ?Sized> {
    raw: sync::RwLock<()>,
    data: UnsafeCell<T>,
}

// SAFETY: identical bounds to std::sync::RwLock — the raw lock mediates
// every access to `data`.
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
// SAFETY: readers share `&T` (needs `T: Sync`) and writers are exclusive
// (needs `T: Send`), matching std's bounds.
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// New unlocked lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            raw: sync::RwLock::new(()),
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let raw = self
            .raw
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner);
        RwLockReadGuard {
            _raw: raw,
            data: self.data.get(),
        }
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let raw = self
            .raw
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner);
        RwLockWriteGuard {
            _raw: raw,
            data: self.data.get(),
        }
    }

    /// Try to acquire exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.raw.try_write() {
            Ok(raw) => Some(RwLockWriteGuard {
                _raw: raw,
                data: self.data.get(),
            }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                _raw: p.into_inner(),
                data: self.data.get(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.raw.try_read() {
            Ok(raw) => Some(RwLockReadGuard {
                _raw: raw,
                data: self.data.get(),
            }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                _raw: p.into_inner(),
                data: self.data.get(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires unique ownership).
    pub fn get_mut(&mut self) -> &mut T {
        // SAFETY: `&mut self` proves no guard or other borrow is alive.
        unsafe { &mut *self.data.get() }
    }

    /// Raw pointer to the protected data, without acquiring the lock.
    ///
    /// The optimistic read path uses this to traverse a shard's ART with
    /// no lock held; all such reads are validated against a seqlock
    /// version counter before being trusted.
    pub fn data_ptr(&self) -> *mut T {
        self.data.get()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    _raw: sync::RwLockReadGuard<'a, ()>,
    data: *mut T,
}

// SAFETY: a read guard only hands out `&T`, so `T: Sync` suffices.
unsafe impl<T: ?Sized + Sync> Sync for RwLockReadGuard<'_, T> {}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the held read lock keeps writers out, so `data` is valid
        // and unchanging for the guard's lifetime.
        unsafe { &*self.data }
    }
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    _raw: sync::RwLockWriteGuard<'a, ()>,
    data: *mut T,
}

// SAFETY: sharing the guard only shares `&T`, so `T: Sync` suffices.
unsafe impl<T: ?Sized + Sync> Sync for RwLockWriteGuard<'_, T> {}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the held write lock gives this guard sole access.
        unsafe { &*self.data }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive guard borrow + held write lock give unique
        // access.
        unsafe { &mut *self.data }
    }
}

/// A condition variable paired with [`Mutex`].
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's mutex and wait for a notification,
    /// reacquiring before returning.
    pub fn wait<T: ?Sized>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: the raw guard is moved out for the duration of the wait
        // and a fresh one is written back before this function returns, so
        // `MutexGuard::drop` always sees an initialized guard.
        let raw = unsafe { ManuallyDrop::take(&mut guard.raw) };
        let raw = self
            .inner
            .wait(raw)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.raw = ManuallyDrop::new(raw);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7u64));
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
        drop((r1, r2));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn data_ptr_points_at_value() {
        let l = RwLock::new(41u64);
        // SAFETY: `l` is locally owned with no guard alive, so the raw
        // pointer is unaliased.
        unsafe { *l.data_ptr() += 1 };
        assert_eq!(*l.read(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn guard_survives_panic_in_section() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // Non-poisoning: the data stays reachable.
        assert_eq!(*m.lock(), 0);
    }
}
