//! A small blocking client for the hart-server wire protocol.
//!
//! `send`/`recv` are split so callers can pipeline: enqueue a window of
//! requests, then drain responses and match them up by `req_id`. The
//! typed helpers (`get`, `put`, …) are one-request-one-response
//! conveniences built on that split.

use crate::proto::*;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One client connection.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    /// Responses read while draining for some other id (pipelining).
    stash: HashMap<u64, Response>,
}

/// A typed outcome for point ops.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    Ok(Vec<u8>),
    NotFound,
    Busy(String),
    Err(String),
}

impl Outcome {
    fn from(resp: Response) -> Outcome {
        match resp.status {
            ST_OK => Outcome::Ok(resp.payload),
            ST_NOT_FOUND => Outcome::NotFound,
            ST_BUSY => Outcome::Busy(String::from_utf8_lossy(&resp.payload).into_owned()),
            _ => Outcome::Err(String::from_utf8_lossy(&resp.payload).into_owned()),
        }
    }
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            next_id: 1,
            stash: HashMap::new(),
        })
    }

    /// Enqueue a request without waiting for its response; returns the
    /// assigned `req_id`.
    pub fn send(&mut self, req: &Request) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream.write_all(&encode_request(id, req))?;
        Ok(id)
    }

    /// Write raw bytes to the socket (protocol-robustness tests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// The underlying stream (tests: half-close, peer inspection).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Read the next response off the wire, whatever request it answers.
    pub fn recv(&mut self) -> io::Result<Response> {
        let body = read_frame(&mut self.stream, MAX_RESPONSE_BODY)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        parse_response(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.msg))
    }

    /// Read until the response for `id` arrives, stashing out-of-order
    /// responses for other in-flight ids.
    pub fn recv_for(&mut self, id: u64) -> io::Result<Response> {
        if let Some(r) = self.stash.remove(&id) {
            return Ok(r);
        }
        loop {
            let r = self.recv()?;
            if r.req_id == id {
                return Ok(r);
            }
            self.stash.insert(r.req_id, r);
        }
    }

    fn call(&mut self, req: &Request) -> io::Result<Response> {
        let id = self.send(req)?;
        self.recv_for(id)
    }

    /// Bind this connection to a tenant namespace.
    pub fn hello(&mut self, tenant: &[u8]) -> io::Result<Outcome> {
        self.call(&Request::Hello {
            tenant: tenant.to_vec(),
        })
        .map(Outcome::from)
    }

    pub fn put(&mut self, key: &[u8], value: &[u8]) -> io::Result<Outcome> {
        self.call(&Request::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        })
        .map(Outcome::from)
    }

    /// `Ok(Some(v))` on hit, `Ok(None)` on miss.
    pub fn get(&mut self, key: &[u8]) -> io::Result<Option<Vec<u8>>> {
        match self
            .call(&Request::Get { key: key.to_vec() })
            .map(Outcome::from)?
        {
            Outcome::Ok(p) => {
                // GET OK payload = [u8 len][value]
                if p.is_empty() || p.len() != 1 + p[0] as usize {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "bad GET payload",
                    ));
                }
                Ok(Some(p[1..].to_vec()))
            }
            Outcome::NotFound => Ok(None),
            Outcome::Busy(m) | Outcome::Err(m) => Err(io::Error::other(m)),
        }
    }

    pub fn del(&mut self, key: &[u8]) -> io::Result<Outcome> {
        self.call(&Request::Del { key: key.to_vec() })
            .map(Outcome::from)
    }

    pub fn scan(
        &mut self,
        start: &[u8],
        end: &[u8],
        limit: u32,
    ) -> io::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let resp = self.call(&Request::Scan {
            start: start.to_vec(),
            end: end.to_vec(),
            limit,
        })?;
        if resp.status != ST_OK {
            return Err(io::Error::other(
                String::from_utf8_lossy(&resp.payload).into_owned(),
            ));
        }
        parse_scan_payload(&resp.payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.msg))
    }

    /// Fetch the Prometheus text exposition.
    pub fn stats(&mut self) -> io::Result<String> {
        let resp = self.call(&Request::Stats)?;
        if resp.status != ST_OK {
            return Err(io::Error::other("STATS failed"));
        }
        String::from_utf8(resp.payload)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 stats"))
    }
}
