//! `hart-server` — serve a fresh HART instance over TCP.
//!
//! ```text
//! hart-server [--addr HOST:PORT] [--workers N] [--max-inflight N]
//!             [--group-commit] [--group-max-ops N] [--group-window-us N]
//!             [--size-mb N] [--latency 300/100|300/300|600/300|dram]
//! ```
//!
//! Runs until killed; prints the bound address on stdout (one line) so
//! scripts can connect to an ephemeral port.

use hart::{Hart, HartConfig};
use hart_pm::{GroupConfig, LatencyConfig, PmemPool, PoolConfig, TimeMode};
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: hart-server [--addr HOST:PORT] [--workers N] [--max-inflight N]\n\
         \x20                 [--group-commit] [--group-max-ops N] [--group-window-us N]\n\
         \x20                 [--size-mb N] [--latency 300/100|300/300|600/300|dram]"
    );
    exit(2);
}

fn main() {
    let mut cfg = hart_server::ServerConfig {
        addr: "127.0.0.1:7878".into(),
        ..Default::default()
    };
    let mut size_mb: usize = 64;
    let mut latency = LatencyConfig::dram();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let grab = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => cfg.addr = grab(&mut i),
            "--workers" => cfg.workers = grab(&mut i).parse().unwrap_or_else(|_| usage()),
            "--max-inflight" => cfg.max_inflight = grab(&mut i).parse().unwrap_or_else(|_| usage()),
            "--group-commit" => cfg.group_commit = true,
            "--group-max-ops" => {
                cfg.group.max_ops = grab(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--group-window-us" => {
                cfg.group.window =
                    Duration::from_micros(grab(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--size-mb" => size_mb = grab(&mut i).parse().unwrap_or_else(|_| usage()),
            "--latency" => {
                latency = match grab(&mut i).as_str() {
                    "300/100" => LatencyConfig::c300_100(),
                    "300/300" => LatencyConfig::c300_300(),
                    "600/300" => LatencyConfig::c600_300(),
                    "dram" => LatencyConfig::dram(),
                    _ => usage(),
                }
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }

    let pool = Arc::new(PmemPool::new(PoolConfig {
        size_bytes: size_mb * 1024 * 1024,
        latency,
        time_mode: TimeMode::Inject,
        ..PoolConfig::default()
    }));
    let hcfg = HartConfig {
        group_commit: cfg.group_commit,
        ..Default::default()
    };
    let hart = Arc::new(Hart::create(pool, hcfg).unwrap_or_else(|e| {
        eprintln!("hart-server: cannot create tree: {e}");
        exit(1);
    }));
    let default_group = GroupConfig::default();
    let handle = hart_server::start(hart, cfg.clone()).unwrap_or_else(|e| {
        eprintln!("hart-server: cannot bind {}: {e}", cfg.addr);
        exit(1);
    });
    println!("{}", handle.local_addr());
    eprintln!(
        "hart-server: listening on {} ({} workers, max_inflight {}, group_commit {}{})",
        handle.local_addr(),
        cfg.workers,
        cfg.max_inflight,
        cfg.group_commit,
        if cfg.group_commit {
            format!(
                ", batch {} ops / {:?} window",
                if cfg.group.max_ops == 0 {
                    default_group.max_ops
                } else {
                    cfg.group.max_ops
                },
                cfg.group.window
            )
        } else {
            String::new()
        }
    );
    // Serve forever; the OS reaps everything on SIGINT/SIGTERM.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
