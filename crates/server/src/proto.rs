//! The wire protocol: length-prefixed binary frames.
//!
//! Every frame — request or response — is
//!
//! ```text
//! [u32 body_len (LE)] [body]
//! body(request)  = [u64 req_id (LE)] [u8 opcode] [payload]
//! body(response) = [u64 req_id (LE)] [u8 status] [payload]
//! ```
//!
//! `req_id` is chosen by the client and echoed verbatim, so clients may
//! pipeline many requests on one connection and match responses by id
//! (responses to *different keys* may arrive out of order; requests for the
//! same key are executed in submission order because key-sharding pins them
//! to one worker). A response with `req_id == 0` that the client never sent
//! is a connection-level error (e.g. an oversized frame whose body was
//! never read); the server closes the connection after sending it.
//!
//! Request payloads (all lengths are single bytes unless noted):
//!
//! | opcode        | payload |
//! |---------------|---------|
//! | `HELLO` (0)   | `[u8 n][tenant; n bytes]` — sets this connection's key namespace |
//! | `GET` (1)     | `[u8 n][key]` |
//! | `PUT` (2)     | `[u8 n][key][u8 m][value]` |
//! | `DEL` (3)     | `[u8 n][key]` |
//! | `SCAN` (4)    | `[u8 n][start][u8 m][end][u32 limit (LE)]` |
//! | `STATS` (5)   | empty |
//!
//! Response payloads: `GET` OK carries `[u8 m][value]`; `SCAN` OK carries
//! `[u32 count]` then `count` × `[u8 n][key][u8 m][value]`; `STATS` OK
//! carries the Prometheus text exposition verbatim; `ERR` carries a UTF-8
//! message. `PUT`/`DEL`/`HELLO` OK payloads are empty.

use std::io::{self, Read};

/// Upper bound on a request body. Requests are small (two keys + a value +
/// header < 100 bytes); anything larger is an attack or a desynced stream.
pub const MAX_REQUEST_BODY: u32 = 4096;
/// Upper bound on a response body (a full 1000-row scan is ≈ 42 KiB; the
/// Prometheus page is a few KiB).
pub const MAX_RESPONSE_BODY: u32 = 256 * 1024;
/// Hard cap on rows returned by one SCAN.
pub const MAX_SCAN_LIMIT: u32 = 1000;
/// Longest accepted tenant name (prefixing must leave room in 24-byte keys).
pub const MAX_TENANT_LEN: usize = 8;

pub const OP_HELLO: u8 = 0;
pub const OP_GET: u8 = 1;
pub const OP_PUT: u8 = 2;
pub const OP_DEL: u8 = 3;
pub const OP_SCAN: u8 = 4;
pub const OP_STATS: u8 = 5;

pub const ST_OK: u8 = 0;
pub const ST_NOT_FOUND: u8 = 1;
pub const ST_ERR: u8 = 2;
/// Admission control: the server is at its in-flight limit; retry later.
pub const ST_BUSY: u8 = 3;

/// A parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    Hello {
        tenant: Vec<u8>,
    },
    Get {
        key: Vec<u8>,
    },
    Put {
        key: Vec<u8>,
        value: Vec<u8>,
    },
    Del {
        key: Vec<u8>,
    },
    Scan {
        start: Vec<u8>,
        end: Vec<u8>,
        limit: u32,
    },
    Stats,
}

/// A parsed response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    pub req_id: u64,
    pub status: u8,
    pub payload: Vec<u8>,
}

/// Why a frame was rejected. `req_id` is the best-effort id recovered from
/// the broken frame (0 when even the header was unreadable), echoed in the
/// ERR response so a pipelining client can tell which request died.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    pub req_id: u64,
    pub msg: &'static str,
}

fn take<'a>(
    buf: &mut &'a [u8],
    n: usize,
    req_id: u64,
    what: &'static str,
) -> Result<&'a [u8], ProtoError> {
    if buf.len() < n {
        return Err(ProtoError { req_id, msg: what });
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

fn take_u8_bytes<'a>(
    buf: &mut &'a [u8],
    req_id: u64,
    what: &'static str,
) -> Result<&'a [u8], ProtoError> {
    let n = take(buf, 1, req_id, what)?[0] as usize;
    take(buf, n, req_id, what)
}

/// Parse a request body (everything after the length prefix).
pub fn parse_request(body: &[u8]) -> Result<(u64, Request), ProtoError> {
    let mut buf = body;
    let id_bytes = take(&mut buf, 8, 0, "truncated header")?;
    let req_id = u64::from_le_bytes(id_bytes.try_into().unwrap());
    let opcode = take(&mut buf, 1, req_id, "truncated header")?[0];
    let req = match opcode {
        OP_HELLO => Request::Hello {
            tenant: take_u8_bytes(&mut buf, req_id, "truncated tenant")?.to_vec(),
        },
        OP_GET => Request::Get {
            key: take_u8_bytes(&mut buf, req_id, "truncated key")?.to_vec(),
        },
        OP_PUT => Request::Put {
            key: take_u8_bytes(&mut buf, req_id, "truncated key")?.to_vec(),
            value: take_u8_bytes(&mut buf, req_id, "truncated value")?.to_vec(),
        },
        OP_DEL => Request::Del {
            key: take_u8_bytes(&mut buf, req_id, "truncated key")?.to_vec(),
        },
        OP_SCAN => {
            let start = take_u8_bytes(&mut buf, req_id, "truncated scan start")?.to_vec();
            let end = take_u8_bytes(&mut buf, req_id, "truncated scan end")?.to_vec();
            let lim = take(&mut buf, 4, req_id, "truncated scan limit")?;
            Request::Scan {
                start,
                end,
                limit: u32::from_le_bytes(lim.try_into().unwrap()),
            }
        }
        OP_STATS => Request::Stats,
        _ => {
            return Err(ProtoError {
                req_id,
                msg: "unknown opcode",
            })
        }
    };
    if !buf.is_empty() {
        return Err(ProtoError {
            req_id,
            msg: "trailing bytes in frame",
        });
    }
    Ok((req_id, req))
}

/// Encode a request into a full frame (length prefix included).
pub fn encode_request(req_id: u64, req: &Request) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    body.extend_from_slice(&req_id.to_le_bytes());
    let push_u8_bytes = |body: &mut Vec<u8>, b: &[u8]| {
        debug_assert!(b.len() <= u8::MAX as usize);
        body.push(b.len() as u8);
        body.extend_from_slice(b);
    };
    match req {
        Request::Hello { tenant } => {
            body.push(OP_HELLO);
            push_u8_bytes(&mut body, tenant);
        }
        Request::Get { key } => {
            body.push(OP_GET);
            push_u8_bytes(&mut body, key);
        }
        Request::Put { key, value } => {
            body.push(OP_PUT);
            push_u8_bytes(&mut body, key);
            push_u8_bytes(&mut body, value);
        }
        Request::Del { key } => {
            body.push(OP_DEL);
            push_u8_bytes(&mut body, key);
        }
        Request::Scan { start, end, limit } => {
            body.push(OP_SCAN);
            push_u8_bytes(&mut body, start);
            push_u8_bytes(&mut body, end);
            body.extend_from_slice(&limit.to_le_bytes());
        }
        Request::Stats => body.push(OP_STATS),
    }
    frame(body)
}

/// Encode a response into a full frame (length prefix included).
pub fn encode_response(req_id: u64, status: u8, payload: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(9 + payload.len());
    body.extend_from_slice(&req_id.to_le_bytes());
    body.push(status);
    body.extend_from_slice(payload);
    frame(body)
}

fn frame(body: Vec<u8>) -> Vec<u8> {
    let mut f = Vec::with_capacity(4 + body.len());
    f.extend_from_slice(&(body.len() as u32).to_le_bytes());
    f.extend_from_slice(&body);
    f
}

/// Parse a response body (everything after the length prefix).
pub fn parse_response(body: &[u8]) -> Result<Response, ProtoError> {
    let mut buf = body;
    let id_bytes = take(&mut buf, 8, 0, "truncated response header")?;
    let req_id = u64::from_le_bytes(id_bytes.try_into().unwrap());
    let status = take(&mut buf, 1, req_id, "truncated response header")?[0];
    Ok(Response {
        req_id,
        status,
        payload: buf.to_vec(),
    })
}

/// Read one length-prefixed frame body from `r`.
///
/// Returns `Ok(None)` on clean EOF at a frame boundary (peer closed),
/// `Err(InvalidData)` on an oversized or impossibly short length prefix,
/// and any other I/O error (including `UnexpectedEof` mid-frame) verbatim.
pub fn read_frame(r: &mut impl Read, max_body: u32) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None); // clean close between frames
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame header",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len < 9 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame shorter than its fixed header",
        ));
    }
    if len > max_body {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds the protocol size limit",
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Encode a SCAN OK payload.
pub fn encode_scan_payload(rows: &[(Vec<u8>, Vec<u8>)]) -> Vec<u8> {
    let mut p = Vec::with_capacity(8 + rows.len() * 32);
    p.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for (k, v) in rows {
        p.push(k.len() as u8);
        p.extend_from_slice(k);
        p.push(v.len() as u8);
        p.extend_from_slice(v);
    }
    p
}

/// Owned `(key, value)` rows from a decoded SCAN response.
pub type ScanRows = Vec<(Vec<u8>, Vec<u8>)>;

/// Decode a SCAN OK payload.
pub fn parse_scan_payload(payload: &[u8]) -> Result<ScanRows, ProtoError> {
    let mut buf = payload;
    let n_bytes = take(&mut buf, 4, 0, "truncated scan count")?;
    let n = u32::from_le_bytes(n_bytes.try_into().unwrap());
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let k = take_u8_bytes(&mut buf, 0, "truncated scan row key")?.to_vec();
        let v = take_u8_bytes(&mut buf, 0, "truncated scan row value")?.to_vec();
        out.push((k, v));
    }
    if !buf.is_empty() {
        return Err(ProtoError {
            req_id: 0,
            msg: "trailing bytes in scan payload",
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        for req in [
            Request::Hello {
                tenant: b"acme".to_vec(),
            },
            Request::Get {
                key: b"k1".to_vec(),
            },
            Request::Put {
                key: b"k1".to_vec(),
                value: b"v".to_vec(),
            },
            Request::Del {
                key: b"k1".to_vec(),
            },
            Request::Scan {
                start: b"a".to_vec(),
                end: b"z".to_vec(),
                limit: 17,
            },
            Request::Stats,
        ] {
            let f = encode_request(42, &req);
            let body = read_frame(&mut &f[..], MAX_REQUEST_BODY).unwrap().unwrap();
            let (id, back) = parse_request(&body).unwrap();
            assert_eq!(id, 42);
            assert_eq!(back, req);
        }
    }

    #[test]
    fn response_round_trips() {
        let f = encode_response(7, ST_OK, b"payload");
        let body = read_frame(&mut &f[..], MAX_RESPONSE_BODY).unwrap().unwrap();
        let r = parse_response(&body).unwrap();
        assert_eq!(
            (r.req_id, r.status, r.payload.as_slice()),
            (7, ST_OK, &b"payload"[..])
        );
    }

    #[test]
    fn scan_payload_round_trips() {
        let rows = vec![
            (b"a".to_vec(), b"1".to_vec()),
            (b"bb".to_vec(), b"22".to_vec()),
        ];
        assert_eq!(
            parse_scan_payload(&encode_scan_payload(&rows)).unwrap(),
            rows
        );
        assert!(parse_scan_payload(&encode_scan_payload(&[])[..3]).is_err());
    }

    #[test]
    fn read_frame_rejects_oversized_and_short() {
        let mut f = Vec::new();
        f.extend_from_slice(&(MAX_REQUEST_BODY + 1).to_le_bytes());
        f.extend_from_slice(&[0; 16]);
        assert_eq!(
            read_frame(&mut &f[..], MAX_REQUEST_BODY)
                .unwrap_err()
                .kind(),
            io::ErrorKind::InvalidData
        );
        let f = 3u32.to_le_bytes().to_vec();
        assert_eq!(
            read_frame(&mut &f[..], MAX_REQUEST_BODY)
                .unwrap_err()
                .kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn read_frame_distinguishes_clean_close_from_torn_frame() {
        assert!(read_frame(&mut &[][..], MAX_REQUEST_BODY)
            .unwrap()
            .is_none());
        // Header cut mid-way.
        let torn = [9u8, 0];
        assert_eq!(
            read_frame(&mut &torn[..], MAX_REQUEST_BODY)
                .unwrap_err()
                .kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Body cut mid-way.
        let mut f = 9u32.to_le_bytes().to_vec();
        f.extend_from_slice(&[1, 2, 3]);
        assert_eq!(
            read_frame(&mut &f[..], MAX_REQUEST_BODY)
                .unwrap_err()
                .kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_request(&[1, 2, 3]).is_err());
        let mut body = 99u64.to_le_bytes().to_vec();
        body.push(200); // unknown opcode
        let e = parse_request(&body).unwrap_err();
        assert_eq!(e.req_id, 99);
        // Trailing junk after a valid GET.
        let f = encode_request(1, &Request::Get { key: b"k".to_vec() });
        let mut body = read_frame(&mut &f[..], MAX_REQUEST_BODY).unwrap().unwrap();
        body.push(0xff);
        assert!(parse_request(&body).is_err());
    }
}
