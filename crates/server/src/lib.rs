//! `hart-server`: a network-facing KV front-end over a shared [`Hart`].
//!
//! Architecture (DESIGN.md §Server):
//!
//! * **Acceptor** thread: accepts TCP connections; each gets a dedicated
//!   *reader* thread (frame parsing, admission control, tenancy) and a
//!   *writer* thread (serializing response frames with `write_all`).
//! * **Workers**: `ServerConfig::workers` threads, each owning an mpsc
//!   queue. Readers shard requests onto workers by key hash, so pipelined
//!   requests for the same key execute in submission order while distinct
//!   keys fan out across workers (and across HART's internal shards).
//! * **Committer** (group-commit mode): write ops run under
//!   [`PmemPool::run_deferred`] in the worker — their `persist()` fences
//!   are recorded, not paid — and the recorded batch is enqueued on a
//!   [`GroupCommitter`]. A single committer thread completes tickets and
//!   releases the buffered OK responses only once the batch's single
//!   amortized flush has made the ops durable. Workers never block on the
//!   batch window. With `group_commit: false` (the kill-switch) every
//!   write pays its own fence before the response is sent, and acked-write
//!   durability is identical (proven by `tests/group_commit.rs`).
//! * **Admission control**: a global in-flight counter; requests beyond
//!   `ServerConfig::max_inflight` are refused immediately with `BUSY`
//!   (clean backpressure, no queue growth).
//! * **Tenancy**: `HELLO <tenant>` prefixes every subsequent key (and both
//!   scan bounds) with `tenant/`, giving each connection a private
//!   namespace inside the shared tree; scan responses strip the prefix.
//!
//! Reads may observe writes that are not yet durable (standard group-commit
//! read-uncommitted-durability); acknowledged writes are always durable.

pub mod client;
pub mod proto;

use hart::{Hart, PersistentIndex};
use hart_kv::{Key, Value};
use hart_obs::ObsSnapshot;
use hart_pm::{GroupCommitter, GroupConfig, PersistBatch, Ticket};
use parking_lot::{rank, Mutex};
use proto::*;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (tests/harness).
    pub addr: String,
    /// Worker threads executing tree operations.
    pub workers: usize,
    /// Admission-control bound on concurrently in-flight ops.
    pub max_inflight: usize,
    /// Group-commit batching for write ops (see crate docs). `false` is
    /// the per-op-persist kill-switch.
    pub group_commit: bool,
    /// Batching knobs used when `group_commit` is on.
    pub group: GroupConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            max_inflight: 1024,
            group_commit: false,
            group: GroupConfig::default(),
        }
    }
}

/// Lock-free server-level counters, exported into
/// [`hart_obs::ServerSection`].
#[derive(Default)]
struct Counters {
    connections_total: AtomicU64,
    connections_active: AtomicU64,
    requests_total: AtomicU64,
    busy_rejections: AtomicU64,
    inflight_peak: AtomicU64,
    proto_errors: AtomicU64,
}

/// One request dispatched to a worker.
struct WorkItem {
    req_id: u64,
    cmd: Cmd,
    resp: mpsc::Sender<Vec<u8>>,
}

enum Cmd {
    Get(Key),
    Put(Key, Value),
    Del(Key),
    Scan(Key, Key, usize, usize), // start, end, limit, tenant-prefix length
}

/// A write waiting for its group-commit flush before its response may go
/// out.
struct CommitItem {
    ticket: Ticket,
    frame: Vec<u8>,
    req_id: u64,
    resp: mpsc::Sender<Vec<u8>>,
}

struct Shared {
    hart: Arc<Hart>,
    committer: Option<Arc<GroupCommitter>>,
    cfg: ServerConfig,
    stop: AtomicBool,
    inflight: AtomicUsize,
    counters: Counters,
    /// Clones of accepted sockets, so shutdown can unblock reader threads.
    /// Ranked top of the lock hierarchy (DESIGN.md §8): nothing ranked is
    /// ever acquired while it is held.
    conns: Mutex<Vec<TcpStream>>,
}

impl Shared {
    /// Send the final response for an admitted request and release its
    /// admission slot.
    fn finish(&self, resp: &mpsc::Sender<Vec<u8>>, frame: Vec<u8>) {
        let _ = resp.send(frame); // receiver gone = connection closed; fine
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// The tree's observability snapshot with the server/group sections
    /// overlaid.
    fn obs_snapshot(&self) -> ObsSnapshot {
        let mut s = self.hart.obs_snapshot();
        let c = &self.counters;
        s.server.connections_total = c.connections_total.load(Ordering::Relaxed);
        s.server.connections_active = c.connections_active.load(Ordering::Relaxed);
        s.server.requests_total = c.requests_total.load(Ordering::Relaxed);
        s.server.busy_rejections = c.busy_rejections.load(Ordering::Relaxed);
        s.server.inflight_peak = c.inflight_peak.load(Ordering::Relaxed);
        s.server.proto_errors = c.proto_errors.load(Ordering::Relaxed);
        if let Some(gc) = &self.committer {
            let g = gc.stats();
            s.group.enabled = true;
            s.group.flushes = g.flushes;
            s.group.ops_committed = g.ops_committed;
            s.group.ops_failed = g.ops_failed;
            s.group.occupancy_mean = g.occupancy_mean_milli as f64 / 1000.0;
            s.group.occupancy_max = g.occupancy_max;
        }
        s
    }
}

/// A running server; dropping it shuts it down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The group committer, when group-commit is enabled (test hook).
    pub fn committer(&self) -> Option<&Arc<GroupCommitter>> {
        self.shared.committer.as_ref()
    }

    /// Observability snapshot with server/group sections filled in.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        self.shared.obs_snapshot()
    }

    /// Stop accepting, close every connection, drain workers, flush any
    /// open batch, and join the service threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor; it re-checks `stop` per iteration.
        let _ = TcpStream::connect(self.addr);
        // Joining in spawn order: acceptor first (so no new connections
        // register), then close sockets to unblock readers, then workers
        // and the committer drain out as their channels close.
        let acceptor = self.threads.remove(0);
        let _ = acceptor.join();
        for s in self.shared.conns.lock().drain(..) {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(gc) = &self.shared.committer {
            gc.flush_now();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Start a server over `hart` per `cfg`.
///
/// `cfg.group_commit` should normally mirror
/// `hart.config().group_commit`; the server trusts its own flag so tests
/// can exercise both paths over one tree config.
pub fn start(hart: Arc<Hart>, cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let committer = cfg
        .group_commit
        .then(|| Arc::new(GroupCommitter::new(Arc::clone(hart.pm_pool()), cfg.group)));
    let workers = cfg.workers.max(1);
    let shared = Arc::new(Shared {
        hart,
        committer,
        cfg,
        stop: AtomicBool::new(false),
        inflight: AtomicUsize::new(0),
        counters: Counters::default(),
        conns: Mutex::new_ranked(Vec::new(), rank::SERVER_CONNS, false, "Shared.conns"),
    });

    let (commit_tx, commit_rx) = mpsc::channel::<CommitItem>();
    let mut threads = Vec::new();

    let mut worker_txs = Vec::with_capacity(workers);
    let mut worker_rxs = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = mpsc::channel::<WorkItem>();
        worker_txs.push(tx);
        worker_rxs.push(rx);
    }

    // Acceptor (joined first by shutdown — keep it at index 0).
    {
        let shared = Arc::clone(&shared);
        let worker_txs = worker_txs.clone();
        threads.push(std::thread::spawn(move || {
            accept_loop(listener, shared, worker_txs);
        }));
    }
    drop(worker_txs); // readers hold the only remaining clones

    for rx in worker_rxs {
        let shared = Arc::clone(&shared);
        let commit_tx = commit_tx.clone();
        threads.push(std::thread::spawn(move || {
            worker_loop(shared, rx, commit_tx)
        }));
    }
    drop(commit_tx);

    if shared.committer.is_some() {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            committer_loop(shared, commit_rx)
        }));
    }

    Ok(ServerHandle {
        shared,
        addr,
        threads,
    })
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    worker_txs: Vec<mpsc::Sender<WorkItem>>,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(s) => s,
            Err(_) => break,
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let _ = stream.set_nodelay(true);
        shared
            .counters
            .connections_total
            .fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .connections_active
            .fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().push(clone);
        }
        let shared = Arc::clone(&shared);
        let worker_txs = worker_txs.clone();
        // Reader/writer threads are detached: they exit when the socket
        // closes (shutdown closes every registered socket).
        std::thread::spawn(move || conn_reader(stream, shared, worker_txs));
    }
}

/// Per-connection writer: the single thread that writes this connection's
/// socket, serializing frames from workers/committer/reader.
fn conn_writer(mut stream: TcpStream, rx: mpsc::Receiver<Vec<u8>>) {
    while let Ok(frame) = rx.recv() {
        if stream.write_all(&frame).is_err() {
            break;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn conn_reader(
    mut stream: TcpStream,
    shared: Arc<Shared>,
    worker_txs: Vec<mpsc::Sender<WorkItem>>,
) {
    let (resp_tx, resp_rx) = mpsc::channel::<Vec<u8>>();
    let writer = {
        let ws = stream.try_clone();
        match ws {
            Ok(ws) => std::thread::spawn(move || conn_writer(ws, resp_rx)),
            Err(_) => {
                shared
                    .counters
                    .connections_active
                    .fetch_sub(1, Ordering::Relaxed);
                return;
            }
        }
    };
    let mut tenant_prefix: Vec<u8> = Vec::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let body = match read_frame(&mut stream, MAX_REQUEST_BODY) {
            Ok(Some(b)) => b,
            Ok(None) => break,
            Err(e) => {
                if e.kind() == std::io::ErrorKind::InvalidData {
                    // Oversized/absurd length prefix: the stream is
                    // unrecoverable (we never read the body). Tell the
                    // client with the connection-level id and hang up.
                    shared.counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = resp_tx.send(encode_response(0, ST_ERR, e.to_string().as_bytes()));
                }
                break;
            }
        };
        let (req_id, req) = match parse_request(&body) {
            Ok(r) => r,
            Err(pe) => {
                shared.counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                let _ = resp_tx.send(encode_response(pe.req_id, ST_ERR, pe.msg.as_bytes()));
                break; // a malformed frame means the stream is desynced
            }
        };
        shared
            .counters
            .requests_total
            .fetch_add(1, Ordering::Relaxed);
        match req {
            Request::Hello { tenant } => {
                if tenant.is_empty()
                    || tenant.len() > MAX_TENANT_LEN
                    || tenant.contains(&0)
                    || tenant.contains(&b'/')
                {
                    shared.counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = resp_tx.send(encode_response(req_id, ST_ERR, b"bad tenant name"));
                    continue;
                }
                tenant_prefix = tenant;
                tenant_prefix.push(b'/');
                let _ = resp_tx.send(encode_response(req_id, ST_OK, &[]));
            }
            Request::Stats => {
                let text = shared.obs_snapshot().to_prometheus();
                let _ = resp_tx.send(encode_response(req_id, ST_OK, text.as_bytes()));
            }
            other => {
                dispatch(
                    &shared,
                    &worker_txs,
                    &resp_tx,
                    req_id,
                    other,
                    &tenant_prefix,
                );
            }
        }
    }
    shared
        .counters
        .connections_active
        .fetch_sub(1, Ordering::Relaxed);
    // Drain before hanging up: drop our sender and let the writer flush
    // whatever is still queued (e.g. the final protocol-error frame) —
    // shutting the socket down first would eat it. In-flight ops hold
    // sender clones, so the join also waits for their responses.
    drop(resp_tx);
    let _ = writer.join();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn make_key(prefix: &[u8], raw: &[u8]) -> Result<Key, hart_kv::Error> {
    if prefix.is_empty() {
        Key::new(raw)
    } else {
        let mut buf = Vec::with_capacity(prefix.len() + raw.len());
        buf.extend_from_slice(prefix);
        buf.extend_from_slice(raw);
        Key::new(&buf)
    }
}

fn shard_of(key: &Key, n: usize) -> usize {
    // FNV-1a over the key bytes; cheap and stable.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_slice() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % n as u64) as usize
}

fn dispatch(
    shared: &Arc<Shared>,
    worker_txs: &[mpsc::Sender<WorkItem>],
    resp_tx: &mpsc::Sender<Vec<u8>>,
    req_id: u64,
    req: Request,
    prefix: &[u8],
) {
    // Admission control: refuse (don't queue) beyond the in-flight bound.
    let prev = shared.inflight.fetch_add(1, Ordering::Relaxed);
    if prev >= shared.cfg.max_inflight {
        shared.inflight.fetch_sub(1, Ordering::Relaxed);
        shared
            .counters
            .busy_rejections
            .fetch_add(1, Ordering::Relaxed);
        let _ = resp_tx.send(encode_response(
            req_id,
            ST_BUSY,
            b"server at in-flight limit",
        ));
        return;
    }
    shared
        .counters
        .inflight_peak
        .fetch_max(prev as u64 + 1, Ordering::Relaxed);

    let bad_key = |shared: &Shared, e: hart_kv::Error| {
        shared.inflight.fetch_sub(1, Ordering::Relaxed);
        let _ = resp_tx.send(encode_response(req_id, ST_ERR, e.to_string().as_bytes()));
    };
    let cmd = match req {
        Request::Get { key } => match make_key(prefix, &key) {
            Ok(k) => Cmd::Get(k),
            Err(e) => return bad_key(shared, e),
        },
        Request::Put { key, value } => {
            let k = match make_key(prefix, &key) {
                Ok(k) => k,
                Err(e) => return bad_key(shared, e),
            };
            match Value::new(&value) {
                Ok(v) => Cmd::Put(k, v),
                Err(e) => return bad_key(shared, e),
            }
        }
        Request::Del { key } => match make_key(prefix, &key) {
            Ok(k) => Cmd::Del(k),
            Err(e) => return bad_key(shared, e),
        },
        Request::Scan { start, end, limit } => {
            let s = match make_key(prefix, &start) {
                Ok(k) => k,
                Err(e) => return bad_key(shared, e),
            };
            let t = match make_key(prefix, &end) {
                Ok(k) => k,
                Err(e) => return bad_key(shared, e),
            };
            let lim = limit.min(MAX_SCAN_LIMIT) as usize;
            Cmd::Scan(s, t, lim, prefix.len())
        }
        Request::Hello { .. } | Request::Stats => unreachable!("handled inline"),
    };
    let shard = match &cmd {
        Cmd::Get(k) | Cmd::Put(k, _) | Cmd::Del(k) | Cmd::Scan(k, _, _, _) => {
            shard_of(k, worker_txs.len())
        }
    };
    let item = WorkItem {
        req_id,
        cmd,
        resp: resp_tx.clone(),
    };
    if worker_txs[shard].send(item).is_err() {
        // Server shutting down.
        shared.inflight.fetch_sub(1, Ordering::Relaxed);
        let _ = resp_tx.send(encode_response(req_id, ST_ERR, b"server shutting down"));
    }
}

fn worker_loop(
    shared: Arc<Shared>,
    rx: mpsc::Receiver<WorkItem>,
    commit_tx: mpsc::Sender<CommitItem>,
) {
    let hart = Arc::clone(&shared.hart);
    while let Ok(item) = rx.recv() {
        let WorkItem { req_id, cmd, resp } = item;
        match cmd {
            Cmd::Get(k) => {
                let frame = match hart.search(&k) {
                    Ok(Some(v)) => {
                        let mut p = Vec::with_capacity(1 + v.len());
                        p.push(v.len() as u8);
                        p.extend_from_slice(v.as_slice());
                        encode_response(req_id, ST_OK, &p)
                    }
                    Ok(None) => encode_response(req_id, ST_NOT_FOUND, &[]),
                    Err(e) => encode_response(req_id, ST_ERR, e.to_string().as_bytes()),
                };
                shared.finish(&resp, frame);
            }
            Cmd::Put(k, v) => {
                run_write(&shared, &commit_tx, req_id, resp, || {
                    hart.insert(&k, &v).map(|()| true)
                });
            }
            Cmd::Del(k) => {
                run_write(&shared, &commit_tx, req_id, resp, || hart.remove(&k));
            }
            Cmd::Scan(s, t, lim, strip) => {
                let frame = match hart.scan(&s, &t, lim) {
                    Ok(rows) => {
                        let out: Vec<(Vec<u8>, Vec<u8>)> = rows
                            .iter()
                            .filter(|(k, _)| k.as_slice().len() >= strip)
                            .map(|(k, v)| (k.as_slice()[strip..].to_vec(), v.as_slice().to_vec()))
                            .collect();
                        encode_response(req_id, ST_OK, &encode_scan_payload(&out))
                    }
                    Err(e) => encode_response(req_id, ST_ERR, e.to_string().as_bytes()),
                };
                shared.finish(&resp, frame);
            }
        }
    }
}

/// Execute a write op on the per-op or group-commit path. `f` returns
/// `Ok(true)` for OK, `Ok(false)` for NOT_FOUND (delete of absent key).
fn run_write(
    shared: &Arc<Shared>,
    commit_tx: &mpsc::Sender<CommitItem>,
    req_id: u64,
    resp: mpsc::Sender<Vec<u8>>,
    f: impl FnOnce() -> hart_kv::Result<bool>,
) {
    match &shared.committer {
        None => {
            // Kill-switch path: the op has already paid all its fences by
            // the time `f` returns, so the ack is durable.
            let frame = write_frame(req_id, f());
            // pmlint: ack-ok(per-op path: every persist fence is paid inside
            // the op itself before `f` returns, so the frame is born durable)
            shared.finish(&resp, frame);
        }
        Some(gc) => {
            let pool = Arc::clone(shared.hart.pm_pool());
            let (res, batch): (hart_kv::Result<bool>, PersistBatch) = pool.run_deferred(f);
            // Enqueue even on a failed op: any persists it did record must
            // still reach the durable image in order, exactly as they
            // would have on the per-op path.
            let ticket = gc.enqueue(batch);
            let frame = write_frame(req_id, res);
            let item = CommitItem {
                ticket,
                frame,
                req_id,
                resp,
            };
            if let Err(mpsc::SendError(item)) = commit_tx.send(item) {
                // Committer gone (shutdown): complete inline.
                let frame = match gc.complete(item.ticket) {
                    Ok(()) => item.frame,
                    Err(e) => encode_response(item.req_id, ST_ERR, e.to_string().as_bytes()),
                };
                shared.finish(&item.resp, frame);
            }
        }
    }
}

fn write_frame(req_id: u64, res: hart_kv::Result<bool>) -> Vec<u8> {
    match res {
        Ok(true) => encode_response(req_id, ST_OK, &[]),
        Ok(false) => encode_response(req_id, ST_NOT_FOUND, &[]),
        Err(e) => encode_response(req_id, ST_ERR, e.to_string().as_bytes()),
    }
}

/// Releases write acknowledgments in flush order: `complete` blocks until
/// the op's batch has been flushed (flushing itself once the window
/// expires), so an OK response frame never leaves the server before the
/// write is durable.
fn committer_loop(shared: Arc<Shared>, rx: mpsc::Receiver<CommitItem>) {
    let gc = shared
        .committer
        .as_ref()
        .expect("committer thread without committer");
    while let Ok(item) = rx.recv() {
        let frame = match gc.complete(item.ticket) {
            Ok(()) => item.frame,
            Err(e) => encode_response(item.req_id, ST_ERR, e.to_string().as_bytes()),
        };
        shared.finish(&item.resp, frame);
    }
}
