//! End-to-end smoke tests: real sockets, both persistence paths.

use hart::{Hart, HartConfig};
use hart_pm::{GroupConfig, PmemPool, PoolConfig};
use hart_server::client::{Client, Outcome};
use hart_server::{start, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn boot(group_commit: bool) -> (Arc<Hart>, hart_server::ServerHandle) {
    let pool = Arc::new(PmemPool::new(PoolConfig {
        size_bytes: 16 * 1024 * 1024,
        ..PoolConfig::default()
    }));
    let hcfg = HartConfig {
        group_commit,
        ..Default::default()
    };
    let hart = Arc::new(Hart::create(pool, hcfg).unwrap());
    let cfg = ServerConfig {
        workers: 2,
        group_commit,
        group: GroupConfig {
            max_ops: 8,
            window: Duration::from_micros(200),
        },
        ..ServerConfig::default()
    };
    let handle = start(Arc::clone(&hart), cfg).unwrap();
    (hart, handle)
}

fn crud_roundtrip(group_commit: bool) {
    let (_hart, handle) = boot(group_commit);
    let mut c = Client::connect(handle.local_addr()).unwrap();
    assert_eq!(c.put(b"alpha", b"1").unwrap(), Outcome::Ok(vec![]));
    assert_eq!(c.put(b"beta", b"2").unwrap(), Outcome::Ok(vec![]));
    assert_eq!(c.get(b"alpha").unwrap(), Some(b"1".to_vec()));
    assert_eq!(c.get(b"missing").unwrap(), None);
    assert_eq!(c.del(b"alpha").unwrap(), Outcome::Ok(vec![]));
    assert_eq!(c.del(b"alpha").unwrap(), Outcome::NotFound);
    assert_eq!(c.get(b"alpha").unwrap(), None);
    let rows = c.scan(b"a", b"z", 100).unwrap();
    assert_eq!(rows, vec![(b"beta".to_vec(), b"2".to_vec())]);
    handle.shutdown();
}

#[test]
fn crud_roundtrip_per_op_persist() {
    crud_roundtrip(false);
}

#[test]
fn crud_roundtrip_group_commit() {
    crud_roundtrip(true);
}

#[test]
fn tenants_are_isolated_namespaces() {
    let (_hart, handle) = boot(false);
    let mut a = Client::connect(handle.local_addr()).unwrap();
    let mut b = Client::connect(handle.local_addr()).unwrap();
    assert_eq!(a.hello(b"acme").unwrap(), Outcome::Ok(vec![]));
    assert_eq!(b.hello(b"bravo").unwrap(), Outcome::Ok(vec![]));
    a.put(b"k", b"A").unwrap();
    b.put(b"k", b"B").unwrap();
    assert_eq!(a.get(b"k").unwrap(), Some(b"A".to_vec()));
    assert_eq!(b.get(b"k").unwrap(), Some(b"B".to_vec()));
    // Scans stay inside the namespace and strip the prefix.
    assert_eq!(
        a.scan(b"a", b"z", 10).unwrap(),
        vec![(b"k".to_vec(), b"A".to_vec())]
    );
    // A tenant-less connection sees the raw keyspace.
    let mut raw = Client::connect(handle.local_addr()).unwrap();
    assert_eq!(raw.get(b"acme/k").unwrap(), Some(b"A".to_vec()));
    // Bad tenant names are refused.
    assert!(matches!(raw.hello(b"").unwrap(), Outcome::Err(_)));
    assert!(matches!(raw.hello(b"a/b").unwrap(), Outcome::Err(_)));
    handle.shutdown();
}

#[test]
fn pipelined_requests_all_answered() {
    let (_hart, handle) = boot(true);
    let mut c = Client::connect(handle.local_addr()).unwrap();
    let mut ids = Vec::new();
    for i in 0..100u32 {
        let key = format!("pipe{i:03}");
        ids.push(
            c.send(&hart_server::proto::Request::Put {
                key: key.into_bytes(),
                value: i.to_le_bytes().to_vec(),
            })
            .unwrap(),
        );
    }
    for id in ids {
        let r = c.recv_for(id).unwrap();
        assert_eq!(r.status, hart_server::proto::ST_OK);
    }
    assert_eq!(
        c.get(b"pipe042").unwrap(),
        Some(42u32.to_le_bytes().to_vec())
    );
    handle.shutdown();
}

#[test]
fn stats_serves_prometheus_with_server_sections() {
    let (_hart, handle) = boot(true);
    let mut c = Client::connect(handle.local_addr()).unwrap();
    for i in 0..20u32 {
        c.put(format!("s{i}").as_bytes(), b"v").unwrap();
    }
    let text = c.stats().unwrap();
    for metric in [
        "hart_server_connections_total",
        "hart_server_requests_total",
        "hart_group_enabled 1",
        "hart_group_flushes_total",
        "hart_group_persists_deferred_total",
    ] {
        assert!(text.contains(metric), "missing {metric} in:\n{text}");
    }
    let snap = handle.obs_snapshot();
    assert!(snap.group.enabled);
    assert!(
        snap.group.persists_deferred > 0,
        "writes should defer persists"
    );
    assert!(snap.server.requests_total >= 21);
    handle.shutdown();
}

#[test]
fn busy_backpressure_at_inflight_limit() {
    // max_inflight = 0: every dispatched op is refused with BUSY.
    let pool = Arc::new(PmemPool::new(PoolConfig {
        size_bytes: 16 * 1024 * 1024,
        ..PoolConfig::default()
    }));
    let hart = Arc::new(Hart::create(pool, HartConfig::default()).unwrap());
    let handle = start(
        hart,
        ServerConfig {
            max_inflight: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    assert!(matches!(c.put(b"k", b"v").unwrap(), Outcome::Busy(_)));
    let snap = handle.obs_snapshot();
    assert_eq!(snap.server.busy_rejections, 1);
    handle.shutdown();
}
