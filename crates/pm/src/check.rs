//! Byte-granular shadow durability tracking (the `pm-check` feature).
//!
//! The crash-simulation shadow in `pool.rs` answers "what survives a crash
//! *right now*?". This tracker answers a stricter, discipline-level
//! question: "has every store been covered by a persist by the time the
//! code declares the object durable?" — the invariant Algorithms 1–7 of
//! the paper rely on. [`crate::PmemPool::check_durable`] consults it at
//! commit points (EPallocator chunk-commit, HART leaf-publish, micro-log
//! `PNewV`) and panics with the exact un-persisted byte ranges, turning a
//! silent ordering bug into a deterministic test failure.
//!
//! Granularity: writes are recorded per **byte**, persists clear whole
//! cache lines (CLFLUSH semantics). Byte-granular dirtiness avoids false
//! positives when two objects share a line — 40-byte leaves straddle
//! 64-byte lines, so thread B's store to the tail of a line must not make
//! thread A's already-persisted head look dirty. Line-granular clearing
//! keeps the model faithful to hardware: flushing any byte of a line
//! flushes its neighbours too.
//!
//! Persists clear the tracker even when the persist fuse has blown: the
//! fuse models the machine dying, not the code forgetting a flush, so
//! failure-injection tests must not trip the discipline checker.

use parking_lot::Mutex;
use std::collections::BTreeSet;

/// Tracks bytes that have been written but not yet covered by a persist.
#[derive(Default)]
pub(crate) struct DurTracker {
    dirty: Mutex<BTreeSet<u64>>,
}

impl DurTracker {
    /// Record a store of `len` bytes at `off`.
    pub fn note_write(&self, off: u64, len: u64) {
        let mut d = self.dirty.lock();
        for b in off..off + len {
            d.insert(b);
        }
    }

    /// Record a persist covering bytes `[start, end)` (line-rounded by the
    /// caller, matching what CLFLUSH actually makes durable).
    pub fn note_persist(&self, start: u64, end: u64) {
        let mut d = self.dirty.lock();
        // Collect-then-remove: `BTreeSet` has no drain-range, and `retain`
        // would walk the whole set instead of just the covered keys.
        let covered: Vec<u64> = d.range(start..end).copied().collect();
        for b in covered {
            d.remove(&b);
        }
    }

    /// Forget everything (crash simulation or image reload — the working
    /// arena has been redefined as the durable baseline).
    pub fn clear(&self) {
        self.dirty.lock().clear();
    }

    /// Contiguous un-persisted ranges intersecting `[off, off+len)`, as
    /// `(start, end)` byte pairs; empty when the whole range is durable.
    pub fn unpersisted_in(&self, off: u64, len: u64) -> Vec<(u64, u64)> {
        let d = self.dirty.lock();
        let mut out: Vec<(u64, u64)> = Vec::new();
        for &b in d.range(off..off + len) {
            match out.last_mut() {
                Some(r) if r.1 == b => r.1 = b + 1,
                _ => out.push((b, b + 1)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_persist_is_clean() {
        let t = DurTracker::default();
        t.note_write(100, 40);
        t.note_persist(64, 192);
        assert!(t.unpersisted_in(0, 4096).is_empty());
    }

    #[test]
    fn reports_exact_ranges() {
        let t = DurTracker::default();
        t.note_write(10, 4);
        t.note_write(20, 2);
        assert_eq!(t.unpersisted_in(0, 64), vec![(10, 14), (20, 22)]);
        assert_eq!(t.unpersisted_in(12, 4), vec![(12, 14)]);
    }

    #[test]
    fn neighbour_write_does_not_dirty_persisted_bytes() {
        let t = DurTracker::default();
        t.note_write(0, 40); // leaf A: bytes 0..40
        t.note_persist(0, 64); // A persisted (whole line)
        t.note_write(40, 40); // leaf B shares line 0
        assert!(t.unpersisted_in(0, 40).is_empty(), "A must stay durable");
        assert_eq!(t.unpersisted_in(40, 40), vec![(40, 80)]);
    }

    #[test]
    fn clear_forgets_all() {
        let t = DurTracker::default();
        t.note_write(0, 128);
        t.clear();
        assert!(t.unpersisted_in(0, 1024).is_empty());
    }
}
