//! Event counters for the PM emulation.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters, updated with relaxed atomics on the pool's hot paths.
#[derive(Default)]
pub struct PmStats {
    /// `persist()` invocations (each = MFENCE; CLFLUSH*; MFENCE).
    pub persist_calls: AtomicU64,
    /// Individual cache lines flushed across all persists.
    pub lines_flushed: AtomicU64,
    /// Explicit standalone fences.
    pub fences: AtomicU64,
    /// PM cache lines read through the pool.
    pub read_lines: AtomicU64,
    /// Of those, reads that missed the simulated CPU cache.
    pub read_misses: AtomicU64,
    /// Raw allocations served by the pool allocator.
    pub raw_allocs: AtomicU64,
    /// Raw frees returned to the pool allocator.
    pub raw_frees: AtomicU64,
    /// Bytes currently allocated (allocs minus frees).
    pub bytes_in_use: AtomicU64,
    /// High-water mark of `bytes_in_use`.
    pub bytes_peak: AtomicU64,
    /// Extra nanoseconds charged for PM writes (injected or modeled).
    pub write_extra_ns: AtomicU64,
    /// Extra nanoseconds charged for PM reads (injected or modeled).
    pub read_extra_ns: AtomicU64,
    /// Extra nanoseconds charged for raw allocator calls.
    pub alloc_extra_ns: AtomicU64,
    /// `persist()` calls deferred under group-commit (recorded, not fenced).
    pub persists_deferred: AtomicU64,
    /// Group-commit batch flushes (each = one real fence for many persists).
    pub group_flushes: AtomicU64,
}

impl PmStats {
    /// Take a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> PmStatsSnapshot {
        PmStatsSnapshot {
            persist_calls: self.persist_calls.load(Ordering::Relaxed),
            lines_flushed: self.lines_flushed.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            read_lines: self.read_lines.load(Ordering::Relaxed),
            read_misses: self.read_misses.load(Ordering::Relaxed),
            raw_allocs: self.raw_allocs.load(Ordering::Relaxed),
            raw_frees: self.raw_frees.load(Ordering::Relaxed),
            bytes_in_use: self.bytes_in_use.load(Ordering::Relaxed),
            bytes_peak: self.bytes_peak.load(Ordering::Relaxed),
            write_extra_ns: self.write_extra_ns.load(Ordering::Relaxed),
            read_extra_ns: self.read_extra_ns.load(Ordering::Relaxed),
            alloc_extra_ns: self.alloc_extra_ns.load(Ordering::Relaxed),
            persists_deferred: self.persists_deferred.load(Ordering::Relaxed),
            group_flushes: self.group_flushes.load(Ordering::Relaxed),
        }
    }

    /// Record an allocation of `bytes`, maintaining the peak.
    pub(crate) fn on_alloc(&self, bytes: u64) {
        self.raw_allocs.fetch_add(1, Ordering::Relaxed);
        let now = self.bytes_in_use.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.bytes_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Record a free of `bytes`.
    pub(crate) fn on_free(&self, bytes: u64) {
        self.raw_frees.fetch_add(1, Ordering::Relaxed);
        self.bytes_in_use.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Reset every counter to zero (benchmark warm-up boundaries).
    pub fn reset(&self) {
        for c in [
            &self.persist_calls,
            &self.lines_flushed,
            &self.fences,
            &self.read_lines,
            &self.read_misses,
            &self.raw_allocs,
            &self.raw_frees,
            &self.write_extra_ns,
            &self.read_extra_ns,
            &self.alloc_extra_ns,
            &self.persists_deferred,
            &self.group_flushes,
        ] {
            c.store(0, Ordering::Relaxed);
        }
        // bytes_in_use/bytes_peak deliberately survive: they describe state,
        // not traffic.
    }
}

/// Plain-data snapshot of [`PmStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PmStatsSnapshot {
    pub persist_calls: u64,
    pub lines_flushed: u64,
    pub fences: u64,
    pub read_lines: u64,
    pub read_misses: u64,
    pub raw_allocs: u64,
    pub raw_frees: u64,
    pub bytes_in_use: u64,
    pub bytes_peak: u64,
    pub write_extra_ns: u64,
    pub read_extra_ns: u64,
    pub alloc_extra_ns: u64,
    pub persists_deferred: u64,
    pub group_flushes: u64,
}

impl PmStatsSnapshot {
    /// Total modeled/injected extra nanoseconds.
    pub fn extra_ns(&self) -> u64 {
        self.write_extra_ns + self.read_extra_ns + self.alloc_extra_ns
    }

    /// Miss rate of PM reads against the simulated cache, 0..=1.
    pub fn read_miss_rate(&self) -> f64 {
        if self.read_lines == 0 {
            0.0
        } else {
            self.read_misses as f64 / self.read_lines as f64
        }
    }
}

impl fmt::Display for PmStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "persists={} lines_flushed={} fences={}",
            self.persist_calls, self.lines_flushed, self.fences
        )?;
        writeln!(
            f,
            "pm_reads={} misses={} ({:.1}%)",
            self.read_lines,
            self.read_misses,
            self.read_miss_rate() * 100.0
        )?;
        writeln!(
            f,
            "allocs={} frees={} in_use={} B (peak {} B)",
            self.raw_allocs, self.raw_frees, self.bytes_in_use, self.bytes_peak
        )?;
        write!(
            f,
            "extra latency: write {:.3} ms, read {:.3} ms, alloc {:.3} ms",
            self.write_extra_ns as f64 / 1e6,
            self.read_extra_ns as f64 / 1e6,
            self.alloc_extra_ns as f64 / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_accounting_tracks_peak() {
        let s = PmStats::default();
        s.on_alloc(100);
        s.on_alloc(50);
        s.on_free(100);
        s.on_alloc(10);
        let snap = s.snapshot();
        assert_eq!(snap.bytes_in_use, 60);
        assert_eq!(snap.bytes_peak, 150);
        assert_eq!(snap.raw_allocs, 3);
        assert_eq!(snap.raw_frees, 1);
    }

    #[test]
    fn reset_preserves_state_counters() {
        let s = PmStats::default();
        s.on_alloc(100);
        s.persist_calls.store(5, Ordering::Relaxed);
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.persist_calls, 0);
        assert_eq!(snap.bytes_in_use, 100);
    }

    #[test]
    fn miss_rate() {
        let snap = PmStatsSnapshot {
            read_lines: 10,
            read_misses: 5,
            ..Default::default()
        };
        assert!((snap.read_miss_rate() - 0.5).abs() < 1e-9);
        assert_eq!(PmStatsSnapshot::default().read_miss_rate(), 0.0);
    }
}
