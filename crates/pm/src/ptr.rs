//! Stable persistent pointers.

use std::fmt;

/// A persistent pointer: a 64-bit byte offset into a [`PmemPool`] arena.
///
/// PM data structures must never store virtual addresses — after a crash the
/// pool may be mapped elsewhere — so every durable pointer in this workspace
/// is a `PmPtr`. Offset `0` is reserved as the null pointer (the first pool
/// page is never handed out), which also means an all-zero PM image decodes
/// as "everything null", simplifying recovery.
///
/// [`PmemPool`]: crate::PmemPool
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct PmPtr(pub u64);

impl PmPtr {
    /// The null persistent pointer.
    pub const NULL: PmPtr = PmPtr(0);

    /// True when this is the null pointer.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Byte offset into the pool.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0
    }

    /// Pointer `delta` bytes further into the pool. (Named like pointer
    /// arithmetic on purpose; `PmPtr` is not `Add` because offset+offset
    /// is meaningless.)
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, delta: u64) -> PmPtr {
        debug_assert!(!self.is_null(), "offsetting a null PmPtr");
        PmPtr(self.0 + delta)
    }

    /// Align this pointer *down* to `align` (a power of two). Used to map an
    /// object pointer back to its enclosing allocator chunk.
    #[inline]
    pub fn align_down(self, align: u64) -> PmPtr {
        debug_assert!(align.is_power_of_two());
        PmPtr(self.0 & !(align - 1))
    }
}

impl Default for PmPtr {
    fn default() -> Self {
        PmPtr::NULL
    }
}

impl fmt::Debug for PmPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "PmPtr(NULL)")
        } else {
            write!(f, "PmPtr({:#x})", self.0)
        }
    }
}

// SAFETY: a PmPtr is a bare u64 pool offset — plain data with every bit
// pattern valid, and not a virtual address — so it may itself live in PM.
unsafe impl crate::pod::Pod for PmPtr {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_semantics() {
        assert!(PmPtr::NULL.is_null());
        assert!(!PmPtr(64).is_null());
        assert_eq!(PmPtr::default(), PmPtr::NULL);
    }

    #[test]
    fn arithmetic() {
        let p = PmPtr(4096);
        assert_eq!(p.add(16).offset(), 4112);
        assert_eq!(PmPtr(4097).align_down(4096), PmPtr(4096));
        assert_eq!(PmPtr(8191).align_down(4096), PmPtr(4096));
        assert_eq!(PmPtr(8192).align_down(4096), PmPtr(8192));
    }
}
