//! Pool image files: save an emulated PM device to disk and map it back,
//! so "persistent" memory actually persists across process runs.
//!
//! The file format is a small header followed by the raw arena:
//!
//! ```text
//! offset  0  magic   u64  = IMAGE_MAGIC
//! offset  8  version u64  = 1
//! offset 16  size    u64  (arena bytes)
//! offset 24  bump    u64  (raw-allocator cursor, so reopened pools keep
//!                          allocating after the previous high-water mark)
//! offset 32  arena   [u8; size]
//! ```
//!
//! Semantics: [`PmemPool::save_image`] snapshots the *durable* state — for
//! a crash-sim pool that is the shadow image (what a power failure would
//! leave), otherwise the working arena (a clean shutdown; real PM systems
//! flush caches on orderly shutdown). [`PmemPool::load_image`] builds a
//! pool whose arena starts from the file; the higher layers then run their
//! normal `recover`/`open` paths against it.

use crate::pool::{PmemPool, PoolConfig};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

pub(crate) const IMAGE_MAGIC: u64 = 0x4841_5254_2D49_4D47; // "HART-IMG"
pub(crate) const IMAGE_VERSION: u64 = 1;

impl PmemPool {
    /// Write the durable image of this pool to `path`.
    ///
    /// Crash-sim pools write their shadow (persisted) image; plain pools
    /// write the working arena (clean-shutdown semantics).
    pub fn save_image(&self, path: &Path) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(&IMAGE_MAGIC.to_le_bytes())?;
        w.write_all(&IMAGE_VERSION.to_le_bytes())?;
        w.write_all(&(self.capacity() as u64).to_le_bytes())?;
        w.write_all(&self.alloc_bump().to_le_bytes())?;
        self.with_durable_image(|bytes| w.write_all(bytes))?;
        w.flush()
    }

    /// Build a pool from an image file. `cfg.size_bytes` is overridden by
    /// the stored arena size; latency/cache/crash settings come from `cfg`.
    pub fn load_image(path: &Path, cfg: PoolConfig) -> io::Result<PmemPool> {
        let mut r = BufReader::new(File::open(path)?);
        let mut buf8 = [0u8; 8];
        r.read_exact(&mut buf8)?;
        if u64::from_le_bytes(buf8) != IMAGE_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad pool-image magic",
            ));
        }
        r.read_exact(&mut buf8)?;
        if u64::from_le_bytes(buf8) != IMAGE_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unsupported image version",
            ));
        }
        r.read_exact(&mut buf8)?;
        let size = u64::from_le_bytes(buf8) as usize;
        r.read_exact(&mut buf8)?;
        let bump = u64::from_le_bytes(buf8);

        let pool = PmemPool::new(PoolConfig {
            size_bytes: size,
            ..cfg
        });
        pool.fill_from_reader(&mut r, size)?;
        pool.set_alloc_bump(bump);
        pool.sync_shadow_to_working();
        Ok(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("hart-pm-image-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn save_load_roundtrip() {
        let path = tmp("roundtrip.img");
        let pool = PmemPool::new(PoolConfig::test_small());
        let a = pool.alloc_raw(64, 64).unwrap();
        pool.write(a, &0xCAFEu64);
        pool.persist_val::<u64>(a);
        pool.save_image(&path).unwrap();

        let re = PmemPool::load_image(&path, PoolConfig::test_small()).unwrap();
        assert_eq!(re.capacity(), pool.capacity());
        assert_eq!(re.read::<u64>(a), 0xCAFE);
        // The bump cursor survived: a new allocation must not overlap `a`.
        let b = re.alloc_raw(64, 64).unwrap();
        assert_ne!(a, b);
        assert!(b.offset() > a.offset());
    }

    #[test]
    fn crash_sim_pool_saves_only_durable_state() {
        let path = tmp("durable.img");
        let pool = PmemPool::new(PoolConfig::test_crash());
        let a = pool.alloc_raw(64, 64).unwrap();
        let b = pool.alloc_raw(64, 64).unwrap();
        pool.write(a, &1u64);
        pool.persist_val::<u64>(a);
        pool.write(b, &2u64); // never persisted
        pool.save_image(&path).unwrap();

        let re = PmemPool::load_image(&path, PoolConfig::test_small()).unwrap();
        assert_eq!(re.read::<u64>(a), 1);
        assert_eq!(
            re.read::<u64>(b),
            0,
            "unpersisted write must not be in the image"
        );
    }

    #[test]
    fn loaded_crash_pool_starts_clean() {
        // Loading into a crash-sim pool: the file contents are the durable
        // baseline; an immediate crash must be a no-op.
        let path = tmp("clean.img");
        let pool = PmemPool::new(PoolConfig::test_small());
        let a = pool.alloc_raw(64, 64).unwrap();
        pool.write(a, &7u64);
        pool.persist_val::<u64>(a);
        pool.save_image(&path).unwrap();

        let re = PmemPool::load_image(&path, PoolConfig::test_crash()).unwrap();
        re.simulate_crash();
        assert_eq!(re.read::<u64>(a), 7, "loaded bytes are durable");
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage.img");
        std::fs::write(&path, b"not an image").unwrap();
        assert!(PmemPool::load_image(&path, PoolConfig::test_small()).is_err());
    }

    #[test]
    fn latency_config_comes_from_caller() {
        let path = tmp("latency.img");
        let pool = PmemPool::new(PoolConfig::test_small());
        pool.save_image(&path).unwrap();
        let re = PmemPool::load_image(
            &path,
            PoolConfig {
                latency: LatencyConfig::c600_300(),
                ..PoolConfig::test_small()
            },
        )
        .unwrap();
        assert_eq!(re.latency(), LatencyConfig::c600_300());
    }
}
