//! PM latency configuration and injection.
//!
//! The paper's three configurations (§IV-A) are written `W/R` in ns:
//! 300/100, 300/300 and 600/300, against a measured local-DRAM latency of
//! 100 ns. The emulator charges only the *differences*:
//!
//! * `pm_write_ns - dram_ns` once per `persistent()` call (the paper:
//!   "we added the write latency difference between PM and DRAM to each
//!   invocation of persistent()"),
//! * `pm_read_ns - dram_ns` once per PM cache line read that misses the
//!   simulated CPU cache (the paper's Eq. 1–2 stall-cycle correction,
//!   applied inline instead of offline).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// How extra latency is applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimeMode {
    /// Busy-wait the extra nanoseconds at the point where they occur, so
    /// wall-clock measurements already include the PM penalty. This is the
    /// default and mirrors the paper's first-round methodology.
    Inject,
    /// Do not wait; accumulate the extra nanoseconds in [`PmStats`] so a
    /// harness can add them to measured wall time offline (the paper's
    /// second-round methodology for read latency). Much faster for very
    /// large runs.
    ///
    /// [`PmStats`]: crate::PmStats
    Model,
}

/// Emulated latency parameters, all in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Emulated PM write latency (charged per `persist` call).
    pub pm_write_ns: u64,
    /// Emulated PM read latency (charged per missed PM line).
    pub pm_read_ns: u64,
    /// Baseline DRAM latency; the paper measured ≈100 ns on its testbed.
    pub dram_ns: u64,
}

impl LatencyConfig {
    /// The paper's `300/100` configuration (write 300 ns, read 100 ns).
    /// Read latency equals DRAM, so no read penalty is charged — which is
    /// why the paper could scale this configuration to 100 M records.
    pub const fn c300_100() -> Self {
        LatencyConfig {
            pm_write_ns: 300,
            pm_read_ns: 100,
            dram_ns: 100,
        }
    }

    /// The paper's `300/300` configuration.
    pub const fn c300_300() -> Self {
        LatencyConfig {
            pm_write_ns: 300,
            pm_read_ns: 300,
            dram_ns: 100,
        }
    }

    /// The paper's `600/300` configuration.
    pub const fn c600_300() -> Self {
        LatencyConfig {
            pm_write_ns: 600,
            pm_read_ns: 300,
            dram_ns: 100,
        }
    }

    /// No emulated penalty at all (PM behaves like DRAM). Used by unit tests
    /// and by the paper's "first round pure DRAM" baseline measurements.
    pub const fn dram() -> Self {
        LatencyConfig {
            pm_write_ns: 100,
            pm_read_ns: 100,
            dram_ns: 100,
        }
    }

    /// Extra nanoseconds charged per `persist` call.
    #[inline]
    pub fn write_extra_ns(&self) -> u64 {
        self.pm_write_ns.saturating_sub(self.dram_ns)
    }

    /// Extra nanoseconds charged per missed PM line read.
    #[inline]
    pub fn read_extra_ns(&self) -> u64 {
        self.pm_read_ns.saturating_sub(self.dram_ns)
    }

    /// Short label used in benchmark output, e.g. `300/300`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.pm_write_ns, self.pm_read_ns)
    }

    /// The three configurations evaluated by the paper, in paper order.
    pub fn paper_configs() -> [LatencyConfig; 3] {
        [Self::c300_100(), Self::c300_300(), Self::c600_300()]
    }
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self::c300_300()
    }
}

/// Busy-wait for approximately `ns` nanoseconds.
///
/// Uses an `Instant` deadline loop: coarse (±tens of ns) but monotone and
/// immune to frequency scaling, which is all the emulation needs — the
/// injected latencies are ≥100 ns.
#[inline]
pub(crate) fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

/// Apply `ns` of extra latency according to `mode`, accounting into `acc`.
#[inline]
pub(crate) fn charge(mode: TimeMode, acc: &AtomicU64, ns: u64) {
    if ns == 0 {
        return;
    }
    acc.fetch_add(ns, Ordering::Relaxed);
    if mode == TimeMode::Inject {
        spin_ns(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_have_expected_deltas() {
        assert_eq!(LatencyConfig::c300_100().write_extra_ns(), 200);
        assert_eq!(LatencyConfig::c300_100().read_extra_ns(), 0);
        assert_eq!(LatencyConfig::c300_300().read_extra_ns(), 200);
        assert_eq!(LatencyConfig::c600_300().write_extra_ns(), 500);
        assert_eq!(LatencyConfig::dram().write_extra_ns(), 0);
    }

    #[test]
    fn labels() {
        assert_eq!(LatencyConfig::c300_100().label(), "300/100");
        assert_eq!(LatencyConfig::c600_300().label(), "600/300");
    }

    #[test]
    fn spin_waits_at_least_requested() {
        let start = Instant::now();
        spin_ns(50_000);
        assert!(start.elapsed().as_nanos() >= 50_000);
    }

    #[test]
    fn model_mode_accumulates_without_spinning() {
        let acc = AtomicU64::new(0);
        let start = Instant::now();
        charge(TimeMode::Model, &acc, 10_000_000); // 10 ms would be felt
        assert!(start.elapsed().as_millis() < 5);
        assert_eq!(acc.load(Ordering::Relaxed), 10_000_000);
    }
}
