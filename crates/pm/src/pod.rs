//! Plain-old-data marker for types stored verbatim in emulated PM.

/// Marker for types that can be copied to and from the PM arena as raw bytes.
///
/// # Safety
///
/// Implementors must guarantee:
/// * every bit pattern is a valid value of the type (the arena is
///   zero-initialized and may be reverted by crash simulation, so reads can
///   observe any previously written — or zero — bytes);
/// * the type contains **no padding bytes** (`#[repr(C)]` with explicit
///   padding fields where needed), so writing it as raw bytes never reads
///   uninitialized memory;
/// * the type holds no pointers/references to volatile memory ([`PmPtr`]
///   offsets are fine, virtual addresses are not).
///
/// [`PmPtr`]: crate::PmPtr
pub unsafe trait Pod: Copy + 'static {}

macro_rules! impl_pod {
    ($($t:ty),* $(,)?) => {
        // SAFETY: primitive integers have no padding, no invalid bit
        // patterns, and hold no volatile pointers.
        $(unsafe impl Pod for $t {})*
    };
}

impl_pod!(u8, u16, u32, u64, i8, i16, i32, i64);

// SAFETY: arrays of Pod integers are themselves padding-free plain
// bytes with every bit pattern valid.
unsafe impl<const N: usize> Pod for [u8; N] {}
// SAFETY: as above — [u64; N] is densely packed Pod data.
unsafe impl<const N: usize> Pod for [u64; N] {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_pod<T: Pod>() {}

    #[test]
    fn primitives_are_pod() {
        assert_pod::<u8>();
        assert_pod::<u64>();
        assert_pod::<[u8; 24]>();
        assert_pod::<[u64; 4]>();
    }
}
