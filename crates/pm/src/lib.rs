//! Persistent-memory (PM) emulation substrate for the HART reproduction.
//!
//! The paper evaluated on a 2-socket NUMA machine, treating remote-node DRAM
//! as PM and emulating latencies with the Quartz methodology (§IV-A): the
//! PM/DRAM *write* latency difference is added to every invocation of
//! `persistent()` (the `MFENCE; CLFLUSH; MFENCE` sequence), and the *read*
//! latency difference is charged per stalled load via an offline stall-cycle
//! correction (Eq. 1–2).
//!
//! This crate reproduces that methodology in-process and deterministically:
//!
//! * [`PmemPool`] is a heap arena addressed by stable 64-bit offsets
//!   ([`PmPtr`]), standing in for a PM device mapping. All PM state of every
//!   tree lives inside a pool, so "what survives a crash" is well defined.
//! * [`PmemPool::persist`] models `MFENCE; CLFLUSH; MFENCE`: it flushes the
//!   cache lines covering a range and injects the configured extra write
//!   latency once per call — exactly the paper's accounting.
//! * PM reads through the pool consult a set-associative [`CacheSim`]
//!   (default sized like the paper's Xeon E5-2640 v3 20 MB L3) and inject
//!   the extra read latency on a miss — an inline, deterministic version of
//!   the paper's offline stall-cycle correction.
//! * Crash simulation: with [`PoolConfig::crash_sim`] enabled the pool keeps
//!   a *shadow image* of the persisted state; writes dirty cache lines,
//!   `persist` copies them to the shadow, and [`PmemPool::simulate_crash`]
//!   reverts the working image to the shadow. Recovery code then runs
//!   against exactly the bytes that would have survived a power failure.
//!   (Like real hardware, flushing is line-granular: flushing any byte of a
//!   line persists the whole line. Unlike real hardware, lines are *never*
//!   persisted without an explicit flush — a deterministic, conservative
//!   choice that makes missing-flush bugs reproducible.)
//!
//! # Example
//!
//! ```
//! use hart_pm::{PmemPool, PoolConfig};
//!
//! let pool = PmemPool::new(PoolConfig::test_crash());
//! let a = pool.alloc_raw(64, 64).unwrap();
//! let b = pool.alloc_raw(64, 64).unwrap();
//!
//! pool.write(a, &1u64);
//! pool.persist_val::<u64>(a);          // MFENCE; CLFLUSH; MFENCE
//! pool.write(b, &2u64);                // written but never flushed...
//!
//! pool.simulate_crash();               // ...so the power failure eats it
//! assert_eq!(pool.read::<u64>(a), 1);
//! assert_eq!(pool.read::<u64>(b), 0);
//! ```

mod cache;
#[cfg(feature = "pm-check")]
mod check;
mod group;
mod image;
mod latency;
mod pod;
mod pool;
mod ptr;
mod stats;

pub use cache::{CacheConfig, CacheSim};
pub use group::{GroupCommitError, GroupCommitter, GroupConfig, GroupStatsSnapshot, Ticket};
pub use latency::{LatencyConfig, TimeMode};
pub use pod::Pod;
pub use pool::{PersistBatch, PmemPool, PoolConfig, CACHE_LINE};
pub use ptr::PmPtr;
pub use stats::{PmStats, PmStatsSnapshot};
