//! Group-commit: coalescing many writers' `persist()` fences into one
//! flush per batch window.
//!
//! HART hides PM *read* latency behind DRAM internal nodes, but every write
//! still pays its own `persistent()` fence — the dominant modeled PM cost.
//! The [`GroupCommitter`] amortizes it the way databases amortize fsync:
//! writers run their operation under [`PmemPool::run_deferred`] (persists
//! are recorded, not fenced), enqueue the recorded [`PersistBatch`], and
//! block until a committer flushes the whole group with **one** fence.
//!
//! # Durability contract
//!
//! [`GroupCommitter::complete`] returns `Ok` only after the op's batch has
//! been promoted into the durable image by a flush. An op whose flush hit a
//! blown persist fuse (simulated power failure) gets
//! [`GroupCommitError::NotDurable`] and must not be acknowledged to the
//! client; ranges are promoted in submission order, so the durable prefix
//! after a mid-batch crash is exactly the set of `Ok` completions (plus at
//! most one torn trailing op, which per-op crash recovery already handles).

use crate::pool::{PersistBatch, PmemPool};
use parking_lot::{rank, Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Batching knobs.
#[derive(Clone, Copy, Debug)]
pub struct GroupConfig {
    /// Flush as soon as this many ops are pending.
    pub max_ops: usize,
    /// Flush when the oldest pending op has waited this long.
    pub window: Duration,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            max_ops: 64,
            window: Duration::from_micros(100),
        }
    }
}

/// Completion error: the simulated machine died before this op's batch was
/// flushed, so the write must not be acknowledged as durable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupCommitError {
    /// The persist fuse blew at or before this op's ranges.
    NotDurable,
}

impl std::fmt::Display for GroupCommitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupCommitError::NotDurable => write!(f, "write not durable: flush lost to crash"),
        }
    }
}

impl std::error::Error for GroupCommitError {}

/// Claim check for one enqueued op, redeemed by [`GroupCommitter::complete`].
#[derive(Clone, Copy, Debug)]
pub struct Ticket {
    seq: u64,
}

/// Per-flush occupancy and throughput counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupStatsSnapshot {
    /// Batch flushes performed.
    pub flushes: u64,
    /// Ops committed across all flushes.
    pub ops_committed: u64,
    /// Ops refused durability (fuse blew before their flush).
    pub ops_failed: u64,
    /// Largest single batch (ops) flushed.
    pub occupancy_max: u64,
    /// Mean ops per flush, scaled by 1000 (integer fixed-point).
    pub occupancy_mean_milli: u64,
}

struct State {
    /// Ops recorded but not yet flushed, in submission order.
    pending: Vec<PersistBatch>,
    /// Sequence number of `pending[0]`.
    base_seq: u64,
    /// Next sequence number to hand out.
    next_seq: u64,
    /// Ops with `seq < durable_upto` have been promoted by a flush.
    durable_upto: u64,
    /// Once set, ops with `seq >= failed_from` will never become durable
    /// (the fuse blew; the simulated machine is dead).
    failed_from: Option<u64>,
    /// When the oldest pending op was enqueued (window deadline anchor).
    opened_at: Option<Instant>,
    // Counters for GroupStatsSnapshot.
    flushes: u64,
    ops_committed: u64,
    ops_failed: u64,
    occupancy_max: u64,
    occupancy_sum: u64,
}

/// The group-commit batching layer over one [`PmemPool`].
///
/// Threading model: `enqueue` never blocks (it flushes inline when the
/// batch is full); `complete` blocks on a condvar until its op's epoch is
/// flushed, performing the flush itself when the window deadline passes —
/// so no dedicated timer thread is required, though a server typically
/// runs one committer thread calling `complete` for acknowledgments.
pub struct GroupCommitter {
    pool: Arc<PmemPool>,
    cfg: GroupConfig,
    state: Mutex<State>,
    flushed: Condvar,
}

impl GroupCommitter {
    /// New committer over `pool`.
    pub fn new(pool: Arc<PmemPool>, cfg: GroupConfig) -> GroupCommitter {
        assert!(cfg.max_ops >= 1, "group-commit batch must hold ≥ 1 op");
        GroupCommitter {
            pool,
            cfg,
            state: Mutex::new_ranked(
                State {
                    pending: Vec::new(),
                    base_seq: 0,
                    next_seq: 0,
                    durable_upto: 0,
                    failed_from: None,
                    opened_at: None,
                    flushes: 0,
                    ops_committed: 0,
                    ops_failed: 0,
                    occupancy_max: 0,
                    occupancy_sum: 0,
                },
                rank::GROUP_COMMIT,
                false,
                "GroupCommitter.state",
            ),
            flushed: Condvar::new(),
        }
    }

    /// The pool this committer flushes.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// The batching configuration.
    pub fn config(&self) -> GroupConfig {
        self.cfg
    }

    /// Enqueue one op's recorded persists. Never waits for the window;
    /// flushes inline when the batch reaches `max_ops`.
    pub fn enqueue(&self, batch: PersistBatch) -> Ticket {
        let mut st = self.state.lock();
        if st.pending.is_empty() {
            st.opened_at = Some(Instant::now());
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.pending.push(batch);
        if st.pending.len() >= self.cfg.max_ops {
            self.flush_locked(&mut st);
        }
        Ticket { seq }
    }

    /// Block until the op's batch has been flushed. `Ok` means the write is
    /// durable (safe to acknowledge); `Err` means the simulated machine
    /// died first and the write may be absent or torn after recovery.
    pub fn complete(&self, t: Ticket) -> Result<(), GroupCommitError> {
        let mut st = self.state.lock();
        loop {
            if let Some(f) = st.failed_from {
                if t.seq >= f {
                    return Err(GroupCommitError::NotDurable);
                }
            }
            if t.seq < st.durable_upto {
                return Ok(());
            }
            // Not flushed yet: wait out the remaining window, then flush
            // ourselves if nobody else has.
            let deadline = st
                .opened_at
                .map(|t0| t0 + self.cfg.window)
                .unwrap_or_else(|| Instant::now() + self.cfg.window);
            let now = Instant::now();
            if now >= deadline {
                self.flush_locked(&mut st);
                continue;
            }
            self.flushed.wait_for(&mut st, deadline - now);
        }
    }

    /// [`GroupCommitter::enqueue`] + [`GroupCommitter::complete`].
    pub fn submit(&self, batch: PersistBatch) -> Result<(), GroupCommitError> {
        let t = self.enqueue(batch);
        self.complete(t)
    }

    /// Flush any pending ops immediately (shutdown/drain path).
    pub fn flush_now(&self) {
        let mut st = self.state.lock();
        self.flush_locked(&mut st);
    }

    /// Occupancy/throughput counters.
    pub fn stats(&self) -> GroupStatsSnapshot {
        let st = self.state.lock();
        GroupStatsSnapshot {
            flushes: st.flushes,
            ops_committed: st.ops_committed,
            ops_failed: st.ops_failed,
            occupancy_max: st.occupancy_max,
            occupancy_mean_milli: (st.occupancy_sum * 1000)
                .checked_div(st.flushes)
                .unwrap_or(0),
        }
    }

    /// Promote the pending batch under the state lock. The flush itself is
    /// sub-microsecond in `Model` mode and one `write_extra_ns` busy-wait
    /// in `Inject` mode — short enough to hold the (highest-ranked) lock.
    fn flush_locked(&self, st: &mut State) {
        if st.pending.is_empty() {
            return;
        }
        let batches = std::mem::take(&mut st.pending);
        let first = st.base_seq;
        st.base_seq += batches.len() as u64;
        st.opened_at = None;
        let ok = self.pool.flush_batches(&batches);
        st.durable_upto = st.durable_upto.max(first + ok as u64);
        if ok < batches.len() {
            let f = first + ok as u64;
            st.failed_from = Some(st.failed_from.map_or(f, |old| old.min(f)));
            st.ops_failed += (batches.len() - ok) as u64;
        }
        st.flushes += 1;
        st.ops_committed += ok as u64;
        st.occupancy_sum += batches.len() as u64;
        st.occupancy_max = st.occupancy_max.max(batches.len() as u64);
        self.flushed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use crate::ptr::PmPtr;

    fn crash_pool() -> Arc<PmemPool> {
        Arc::new(PmemPool::new(PoolConfig::test_crash()))
    }

    fn put_deferred(pool: &PmemPool, p: PmPtr, v: u64) -> PersistBatch {
        let ((), batch) = pool.run_deferred(|| {
            pool.write(p, &v);
            pool.persist_val::<u64>(p);
        });
        batch
    }

    #[test]
    fn deferred_persist_is_not_durable_until_flush() {
        let pool = crash_pool();
        let p = pool.alloc_raw(64, 64).unwrap();
        let batch = put_deferred(&pool, p, 7);
        assert_eq!(batch.len(), 1);
        assert_eq!(pool.stats().snapshot().persists_deferred, 1);

        // Crash before the flush: the write never happened.
        pool.simulate_crash();
        assert_eq!(pool.read::<u64>(p), 0);

        // Redo, flush, crash: the write survives.
        let batch = put_deferred(&pool, p, 7);
        assert_eq!(pool.flush_batches(&[batch]), 1);
        pool.simulate_crash();
        assert_eq!(pool.read::<u64>(p), 7);
    }

    #[test]
    fn flush_replays_snapshot_not_flush_time_contents() {
        // The redo-log guarantee: a store issued *after* a deferred persist
        // (here: a later op touching the same cache line) must not ride
        // that persist's flush into the durable image. A crash that cuts
        // the flush off right after op A must recover A's bytes only.
        let pool = crash_pool();
        let p = pool.alloc_raw(64, 64).unwrap();
        let a = put_deferred(&pool, p, 0xA);
        // Op B stores to the same line (offset 8) before A is flushed and
        // records its own persist.
        let b = put_deferred(&pool, p.add(8), 0xB);
        // The fuse lets exactly A's one range through.
        pool.arm_persist_fuse(1);
        assert_eq!(pool.flush_batches(&[a, b]), 1);
        pool.simulate_crash();
        assert_eq!(pool.read::<u64>(p), 0xA, "acked op A must be durable");
        assert_eq!(
            pool.read::<u64>(p.add(8)),
            0,
            "op B's store must not leak into A's line flush"
        );
    }

    #[test]
    fn flush_replay_cannot_roll_back_a_newer_persist() {
        // Newest-wins per line: a batch flushed late (recorded before a
        // per-op persist of the same line) must not revert the shadow.
        let pool = crash_pool();
        let p = pool.alloc_raw(64, 64).unwrap();
        let old = put_deferred(&pool, p, 1);
        pool.write(p, &2u64);
        pool.persist_val::<u64>(p); // per-op, durable immediately
        assert_eq!(pool.flush_batches(&[old]), 1);
        pool.simulate_crash();
        assert_eq!(pool.read::<u64>(p), 2, "stale redo record must lose");
    }

    #[test]
    fn flush_charges_one_fence_for_many_ops() {
        let pool = crash_pool();
        let ptrs: Vec<PmPtr> = (0..16).map(|_| pool.alloc_raw(64, 64).unwrap()).collect();
        pool.stats().reset();
        let batches: Vec<PersistBatch> = ptrs
            .iter()
            .enumerate()
            .map(|(i, &p)| put_deferred(&pool, p, i as u64))
            .collect();
        assert_eq!(pool.flush_batches(&batches), 16);
        let s = pool.stats().snapshot();
        assert_eq!(s.persists_deferred, 16);
        assert_eq!(s.persist_calls, 1, "one real fence for the whole group");
        assert_eq!(s.group_flushes, 1);
    }

    #[test]
    fn fuse_mid_batch_yields_durable_prefix() {
        let pool = crash_pool();
        let ptrs: Vec<PmPtr> = (0..8).map(|_| pool.alloc_raw(64, 64).unwrap()).collect();
        let batches: Vec<PersistBatch> =
            ptrs.iter().map(|&p| put_deferred(&pool, p, 0x55)).collect();
        // Each op recorded exactly one persist; let 5 through.
        pool.arm_persist_fuse(5);
        let ok = pool.flush_batches(&batches);
        assert_eq!(ok, 5);
        pool.simulate_crash();
        for (i, &p) in ptrs.iter().enumerate() {
            let want = if i < 5 { 0x55 } else { 0 };
            assert_eq!(pool.read::<u64>(p), want, "op {i}");
        }
    }

    #[test]
    fn committer_full_batch_flushes_without_window_wait() {
        let pool = crash_pool();
        let gc = GroupCommitter::new(
            pool.clone(),
            GroupConfig {
                max_ops: 4,
                window: Duration::from_secs(3600), // would hang if waited on
            },
        );
        let ptrs: Vec<PmPtr> = (0..4).map(|_| pool.alloc_raw(64, 64).unwrap()).collect();
        let tickets: Vec<Ticket> = ptrs
            .iter()
            .map(|&p| gc.enqueue(put_deferred(&pool, p, 9)))
            .collect();
        for t in tickets {
            gc.complete(t).unwrap();
        }
        pool.simulate_crash();
        for &p in &ptrs {
            assert_eq!(pool.read::<u64>(p), 9);
        }
        let s = gc.stats();
        assert_eq!(s.flushes, 1);
        assert_eq!(s.ops_committed, 4);
        assert_eq!(s.occupancy_max, 4);
    }

    #[test]
    fn committer_window_flushes_partial_batch() {
        let pool = crash_pool();
        let gc = GroupCommitter::new(
            pool.clone(),
            GroupConfig {
                max_ops: 1024,
                window: Duration::from_millis(5),
            },
        );
        let p = pool.alloc_raw(64, 64).unwrap();
        gc.submit(put_deferred(&pool, p, 3)).unwrap();
        pool.simulate_crash();
        assert_eq!(pool.read::<u64>(p), 3);
    }

    #[test]
    fn committer_refuses_ack_after_fuse() {
        let pool = crash_pool();
        let gc = GroupCommitter::new(
            pool.clone(),
            GroupConfig {
                max_ops: 2,
                window: Duration::from_millis(5),
            },
        );
        let a = pool.alloc_raw(64, 64).unwrap();
        let b = pool.alloc_raw(64, 64).unwrap();
        let ta = gc.enqueue(put_deferred(&pool, a, 1));
        pool.arm_persist_fuse(1); // a's single persist passes, b's blows
        let tb = gc.enqueue(put_deferred(&pool, b, 2));
        assert_eq!(gc.complete(ta), Ok(()));
        assert_eq!(gc.complete(tb), Err(GroupCommitError::NotDurable));
        pool.simulate_crash();
        assert_eq!(pool.read::<u64>(a), 1);
        assert_eq!(pool.read::<u64>(b), 0);
        assert_eq!(gc.stats().ops_failed, 1);
    }

    #[test]
    fn concurrent_submitters_share_fences() {
        let pool = Arc::new(PmemPool::new(PoolConfig::test_small()));
        let gc = Arc::new(GroupCommitter::new(pool.clone(), GroupConfig::default()));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let pool = pool.clone();
            let gc = gc.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let p = pool.alloc_raw(64, 64).unwrap();
                    let batch = put_deferred(&pool, p, t * 1000 + i);
                    gc.submit(batch).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats().snapshot();
        assert_eq!(s.persists_deferred, 8 * 200);
        let g = gc.stats();
        assert_eq!(g.ops_committed, 1600);
        assert!(
            g.flushes < 1600,
            "batching must coalesce: {} flushes for 1600 ops",
            g.flushes
        );
    }
}
