//! The emulated persistent-memory pool.

use crate::cache::{CacheConfig, CacheSim};
use crate::latency::{charge, LatencyConfig, TimeMode};
use crate::pod::Pod;
use crate::ptr::PmPtr;
use crate::stats::PmStats;
use parking_lot::Mutex;
use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::mem::{size_of, MaybeUninit};
use std::ptr::NonNull;

/// Cache-line size used for flush accounting and crash-simulation
/// granularity (matches x86).
pub const CACHE_LINE: u64 = 64;

/// First usable offset: offset 0 is the null page, and the root area
/// occupies the rest of the first 4 KiB page.
const ROOT_OFF: u64 = 64;
const HEAP_START: u64 = 4096;

/// Pool construction parameters.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Arena size in bytes. Fixed for the pool's lifetime (a real PM device
    /// does not grow either). Default 256 MiB.
    pub size_bytes: usize,
    /// Emulated latencies.
    pub latency: LatencyConfig,
    /// Inject (busy-wait) or model (account only) the extra latency.
    pub time_mode: TimeMode,
    /// Enable the shadow-image crash simulation. Adds per-write tracking
    /// overhead, so it is off by default and enabled by tests/examples.
    pub crash_sim: bool,
    /// Geometry of the CPU-cache model used for PM read charging.
    pub cache: CacheConfig,
    /// Extra nanoseconds charged per raw pool allocation or free, modeling
    /// the cost of a general-purpose persistent allocator (metadata
    /// persistence, remote-NUMA page allocation on the paper's testbed).
    /// §III-A.4 motivates EPallocator with exactly this cost: "existing
    /// persistent memory allocators exhibit poor performance when
    /// allocating numerous small objects"; EPallocator amortizes it over
    /// 56-object chunks while the baselines pay it per node/value.
    ///
    /// Default 1500 ns, calibrated to the paper's testbed where every PM
    /// allocation was a `numa_alloc_onnode` call (an `mbind`-backed
    /// syscall costing microseconds). Set 0 to disable.
    pub alloc_overhead_ns: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            size_bytes: 256 * 1024 * 1024,
            latency: LatencyConfig::default(),
            time_mode: TimeMode::Inject,
            crash_sim: false,
            cache: CacheConfig::default(),
            alloc_overhead_ns: 1500,
        }
    }
}

impl PoolConfig {
    /// Convenience: a small pool with no latency emulation, for unit tests.
    pub fn test_small() -> Self {
        PoolConfig {
            size_bytes: 8 * 1024 * 1024,
            latency: LatencyConfig::dram(),
            ..Default::default()
        }
    }

    /// Convenience: a small crash-simulation pool, for failure-injection
    /// tests.
    pub fn test_crash() -> Self {
        PoolConfig {
            crash_sim: true,
            ..Self::test_small()
        }
    }
}

/// Free lists keyed by (size, align) plus a bump cursor.
struct RawAlloc {
    bump: u64,
    free: HashMap<(u64, u64), Vec<u64>>,
}

/// Shadow image of the persisted state plus the set of dirty lines.
struct CrashState {
    shadow: Vec<u8>,
    dirty: HashSet<u64>,
    /// Per-line sequence of the newest promotion applied to the shadow,
    /// so a deferred batch replayed after a newer persist of the same
    /// line cannot roll the durable image backwards (see
    /// [`PmemPool::flush_batches`]).
    applied: HashMap<u64, u64>,
}

/// The persist ranges one operation recorded while running under
/// [`PmemPool::run_deferred`]. Opaque except for occupancy inspection;
/// redeem it through a group-commit flush ([`PmemPool::flush_batches`],
/// usually via [`crate::GroupCommitter`]).
#[derive(Debug)]
pub struct PersistBatch {
    /// Identity of the pool the ranges belong to (its arena base address),
    /// so a batch can never be flushed against the wrong pool.
    pool_id: usize,
    /// Every deferred `persist`, in call order.
    ranges: Vec<DeferredRange>,
}

/// One deferred `persist` call: the range it covered plus — under crash
/// simulation — a redo-log record of the covered lines' bytes *at call
/// time*. Flushing replays the snapshot, not whatever the line holds at
/// flush time, so group commit crashes exactly like the per-op path: a
/// store issued after this persist (by a later op in the batch window)
/// cannot ride an earlier op's flush into the durable image.
#[derive(Debug)]
struct DeferredRange {
    off: u64,
    len: u32,
    /// Global persist sequence at record time; newest-wins per line.
    seq: u64,
    /// Line-aligned bytes of the covered span, captured at record time.
    /// `None` when the pool has no crash simulation (nothing to replay).
    snap: Option<Box<[u8]>>,
}

impl PersistBatch {
    /// Number of deferred `persist` calls recorded in this batch.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when the operation never called `persist`.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// Thread-local deferred-persist state: while `Some`, `persist` calls on
/// the matching pool record ranges here instead of flushing.
struct DeferState {
    pool_id: usize,
    ranges: Vec<DeferredRange>,
}

thread_local! {
    static DEFER: RefCell<Option<DeferState>> = const { RefCell::new(None) };
}

/// An emulated persistent-memory device.
///
/// All persistent state of an index lives in one pool; [`PmPtr`] offsets are
/// stable across [`PmemPool::simulate_crash`]. Reads and writes go through
/// accessor methods so the pool can charge emulated latency and maintain the
/// crash shadow.
///
/// # Synchronization contract
///
/// The pool itself is thread-safe (`Sync`), but **object-level** writes are
/// not internally ordered: two threads writing the same object concurrently
/// is a logic error, exactly as it would be on real PM. Callers (the trees)
/// provide object-level exclusion — HART with one RwLock per ART, the
/// baselines with a tree lock. Distinct objects may be accessed freely in
/// parallel.
pub struct PmemPool {
    base: NonNull<u8>,
    len: usize,
    layout: Layout,
    latency: LatencyConfig,
    mode: TimeMode,
    stats: PmStats,
    cache: CacheSim,
    /// Read charging enabled (precomputed: `latency.read_extra_ns() > 0`).
    charge_reads: bool,
    alloc: Mutex<RawAlloc>,
    crash: Option<Mutex<CrashState>>,
    alloc_overhead_ns: u64,
    /// Persist-fuse for systematic failure injection: when ≥ 0, each
    /// `persist` decrements it and, once it reaches zero, durability stops —
    /// later persists no longer promote lines into the shadow image, as if
    /// the machine had already died. −1 = disarmed.
    persist_fuse: std::sync::atomic::AtomicI64,
    /// Monotonic persist clock: stamps per-op promotions and deferred
    /// redo records so flush replay is newest-wins per line.
    persist_seq: std::sync::atomic::AtomicU64,
    /// Byte-granular written-but-not-persisted tracking for
    /// [`PmemPool::check_durable`] (see `check.rs` for the model).
    #[cfg(feature = "pm-check")]
    durability: crate::check::DurTracker,
}

// SAFETY: the arena is a fixed heap allocation owned for the pool's
// lifetime; all mutation goes through raw-pointer copies guarded by the
// crash-state/stats mutexes or is data the caller must externally
// synchronise, matching real PM semantics.
unsafe impl Send for PmemPool {}
// SAFETY: see the Send rationale — shared access only hands out values
// copied out of the arena, never references into it.
unsafe impl Sync for PmemPool {}

impl PmemPool {
    /// Create a zero-initialized pool.
    ///
    /// # Panics
    /// Panics if `size_bytes` is smaller than two pages.
    pub fn new(cfg: PoolConfig) -> PmemPool {
        assert!(cfg.size_bytes >= 2 * 4096, "pool must be at least 8 KiB");
        let layout = Layout::from_size_align(cfg.size_bytes, 4096).expect("pool layout");
        // SAFETY: `layout` has non-zero size (asserted above) and valid
        // 4096-byte alignment.
        let raw = unsafe { alloc_zeroed(layout) };
        let base = NonNull::new(raw).expect("pool allocation failed");
        let crash = cfg.crash_sim.then(|| {
            Mutex::new(CrashState {
                shadow: vec![0u8; cfg.size_bytes],
                dirty: HashSet::new(),
                applied: HashMap::new(),
            })
        });
        PmemPool {
            base,
            len: cfg.size_bytes,
            layout,
            latency: cfg.latency,
            mode: cfg.time_mode,
            stats: PmStats::default(),
            cache: CacheSim::new(cfg.cache),
            charge_reads: cfg.latency.read_extra_ns() > 0,
            alloc: Mutex::new(RawAlloc {
                bump: HEAP_START,
                free: HashMap::new(),
            }),
            crash,
            alloc_overhead_ns: cfg.alloc_overhead_ns,
            persist_fuse: std::sync::atomic::AtomicI64::new(-1),
            persist_seq: std::sync::atomic::AtomicU64::new(1),
            #[cfg(feature = "pm-check")]
            durability: crate::check::DurTracker::default(),
        }
    }

    /// The latency configuration this pool emulates.
    pub fn latency(&self) -> LatencyConfig {
        self.latency
    }

    /// Event counters.
    pub fn stats(&self) -> &PmStats {
        &self.stats
    }

    /// Arena capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// True when this pool was created with crash simulation.
    pub fn crash_sim_enabled(&self) -> bool {
        self.crash.is_some()
    }

    /// Pointer to the fixed 4 KiB-page root area (offset 64). Clients store
    /// their durable superblock here so `recover` can find it without any
    /// volatile state.
    ///
    /// # Panics
    /// Panics if `size > 4032` (the root area is one page minus the null
    /// slot).
    pub fn root_area(&self, size: usize) -> PmPtr {
        assert!(
            size as u64 <= HEAP_START - ROOT_OFF,
            "root area overflow: {size}"
        );
        PmPtr(ROOT_OFF)
    }

    #[inline]
    fn check(&self, p: PmPtr, len: usize) {
        assert!(!p.is_null(), "null PmPtr dereference");
        assert!(
            (p.0 as usize)
                .checked_add(len)
                .is_some_and(|end| end <= self.len),
            "PM access out of bounds: off={} len={} cap={}",
            p.0,
            len,
            self.len
        );
    }

    // ----------------------------------------------------------------- raw

    /// Allocate `size` bytes with the given power-of-two alignment.
    ///
    /// Returns [`None`] when the pool is exhausted. Freed blocks of the same
    /// (size, align) class are reused first. If configured, charges one
    /// persist worth of latency for allocator-metadata durability.
    pub fn alloc_raw(&self, size: usize, align: u64) -> Option<PmPtr> {
        assert!(align.is_power_of_two() && size > 0);
        let ptr = {
            let mut a = self.alloc.lock();
            if let Some(list) = a.free.get_mut(&(size as u64, align)) {
                if let Some(off) = list.pop() {
                    self.stats.on_alloc(size as u64);
                    Some(PmPtr(off))
                } else {
                    None
                }
            } else {
                None
            }
            .or_else(|| {
                let start = (a.bump + align - 1) & !(align - 1);
                let end = start.checked_add(size as u64)?;
                if end as usize > self.len {
                    return None;
                }
                a.bump = end;
                self.stats.on_alloc(size as u64);
                Some(PmPtr(start))
            })
        };
        if ptr.is_some() {
            self.charge_alloc_overhead();
        }
        ptr
    }

    /// Return a block to the pool. The block is zeroed (and the zeroes
    /// persisted) so a later reuse never leaks stale persistent bytes.
    pub fn free_raw(&self, p: PmPtr, size: usize, align: u64) {
        self.check(p, size);
        self.write_zeros(p, size);
        self.persist(p, size);
        {
            let mut a = self.alloc.lock();
            a.free.entry((size as u64, align)).or_default().push(p.0);
            self.stats.on_free(size as u64);
        }
        self.charge_alloc_overhead();
    }

    #[inline]
    fn charge_alloc_overhead(&self) {
        charge(
            self.mode,
            &self.stats.alloc_extra_ns,
            self.alloc_overhead_ns,
        );
    }

    // ------------------------------------------------------------ accessors

    /// Read a [`Pod`] value from PM, charging read latency per missed line.
    #[inline]
    pub fn read<T: Pod>(&self, p: PmPtr) -> T {
        self.check(p, size_of::<T>());
        self.charge_read_range(p.0, size_of::<T>());
        let mut out = MaybeUninit::<T>::uninit();
        // SAFETY: `check` bounds the range inside the arena; `T: Pod`
        // makes any copied bit pattern a valid, fully-initialised value.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.base.as_ptr().add(p.0 as usize),
                out.as_mut_ptr() as *mut u8,
                size_of::<T>(),
            );
            out.assume_init()
        }
    }

    /// Read raw bytes from PM into `dst`.
    #[inline]
    pub fn read_bytes(&self, p: PmPtr, dst: &mut [u8]) {
        self.check(p, dst.len());
        self.charge_read_range(p.0, dst.len());
        // SAFETY: `check` bounds the source range inside the arena and
        // `dst` is a live exclusive borrow of `dst.len()` bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.base.as_ptr().add(p.0 as usize),
                dst.as_mut_ptr(),
                dst.len(),
            );
        }
    }

    /// Write a [`Pod`] value to PM. The store lands in the (simulated) CPU
    /// cache; it is *not* durable until [`PmemPool::persist`] covers it.
    #[inline]
    pub fn write<T: Pod>(&self, p: PmPtr, v: &T) {
        self.check(p, size_of::<T>());
        // SAFETY: `check` bounds the destination inside the arena; the
        // source is a live `T` read for exactly `size_of::<T>()` bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(
                v as *const T as *const u8,
                self.base.as_ptr().add(p.0 as usize),
                size_of::<T>(),
            );
        }
        self.after_write(p.0, size_of::<T>());
    }

    /// Write raw bytes to PM (not durable until persisted).
    #[inline]
    pub fn write_bytes(&self, p: PmPtr, src: &[u8]) {
        self.check(p, src.len());
        // SAFETY: `check` bounds the destination inside the arena; `src`
        // is a live borrow of exactly `src.len()` bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(
                src.as_ptr(),
                self.base.as_ptr().add(p.0 as usize),
                src.len(),
            );
        }
        self.after_write(p.0, src.len());
    }

    /// Zero a range (not durable until persisted).
    pub fn write_zeros(&self, p: PmPtr, len: usize) {
        self.check(p, len);
        // SAFETY: `check` bounds the `len`-byte destination inside the
        // arena.
        unsafe {
            std::ptr::write_bytes(self.base.as_ptr().add(p.0 as usize), 0, len);
        }
        self.after_write(p.0, len);
    }

    /// 8-byte store that is atomic with respect to crashes, the hardware
    /// primitive every persistent tree in the paper builds on ("current
    /// processors only support a 8-byte atomic memory write", §II-B).
    ///
    /// In this emulation all stores ≤ a cache line are already
    /// crash-atomic (lines revert wholesale), so this is `write::<u64>` with
    /// an alignment assertion documenting intent at call sites.
    #[inline]
    pub fn write_u64_atomic(&self, p: PmPtr, v: u64) {
        assert_eq!(p.0 % 8, 0, "atomic u64 store must be 8-byte aligned");
        self.write(p, &v); // pmlint: deferred-persist(8-byte-atomic primitive; ordering is the call site's contract)
    }

    #[inline]
    fn after_write(&self, off: u64, len: usize) {
        #[cfg(feature = "pm-check")]
        self.durability.note_write(off, len as u64);
        // Write-allocate into the cache model.
        if self.charge_reads {
            let mut line = off & !(CACHE_LINE - 1);
            let end = off + len as u64;
            while line < end {
                self.cache.access(line);
                line += CACHE_LINE;
            }
        }
        if let Some(crash) = &self.crash {
            let mut st = crash.lock();
            let mut line = off & !(CACHE_LINE - 1);
            let end = off + len as u64;
            while line < end {
                st.dirty.insert(line / CACHE_LINE);
                line += CACHE_LINE;
            }
        }
    }

    #[inline]
    fn charge_read_range(&self, off: u64, len: usize) {
        if !self.charge_reads {
            return;
        }
        let mut line = off & !(CACHE_LINE - 1);
        let end = off + len.max(1) as u64;
        let mut misses = 0u64;
        let mut lines = 0u64;
        while line < end {
            lines += 1;
            if !self.cache.access(line) {
                misses += 1;
            }
            line += CACHE_LINE;
        }
        self.stats
            .read_lines
            .fetch_add(lines, std::sync::atomic::Ordering::Relaxed);
        if misses > 0 {
            self.stats
                .read_misses
                .fetch_add(misses, std::sync::atomic::Ordering::Relaxed);
            charge(
                self.mode,
                &self.stats.read_extra_ns,
                misses * self.latency.read_extra_ns(),
            );
        }
    }

    // ---------------------------------------------------------- persistence

    /// The paper's `persistent()`: `MFENCE; CLFLUSH...; MFENCE` over the
    /// lines covering `[p, p+len)`.
    ///
    /// Costs: one write-latency charge per call (the paper's accounting),
    /// line flush counts in [`PmStats`], invalidation of the flushed lines
    /// in the cache model (CLFLUSH evicts), and — under crash simulation —
    /// promotion of those lines into the durable shadow image.
    pub fn persist(&self, p: PmPtr, len: usize) {
        self.check(p, len.max(1));
        let first = p.0 & !(CACHE_LINE - 1);
        let end = p.0 + len.max(1) as u64;
        let nlines = (end - first).div_ceil(CACHE_LINE);

        // Group-commit deferral: inside `run_deferred` the fence/flush is
        // *recorded*, not performed — no latency charge, no fuse decrement,
        // no shadow promotion. Durability arrives only when the batch is
        // redeemed by `flush_batches`. Discipline tracking (`pm-check`) and
        // cache eviction still happen here: the store *does* have a
        // covering persist in program order, and its lines will be flushed.
        let deferred = DEFER.with(|d| {
            let mut d = d.borrow_mut();
            match d.as_mut() {
                Some(st) if st.pool_id == self.base.as_ptr() as usize => {
                    // Redo-log record: under crash simulation, capture the
                    // covered lines *now* so the flush replays exactly what
                    // this persist would have made durable. The raw read of
                    // the working image is as synchronized as per-op
                    // promotion is (object writes are externally ordered;
                    // neighbors on a shared line re-log their own bytes
                    // with a later sequence, which wins at flush).
                    let seq = self
                        .persist_seq
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let snap = self.crash.as_ref().map(|_| {
                        let a = (first as usize).min(self.len);
                        let b = ((end.div_ceil(CACHE_LINE) * CACHE_LINE) as usize).min(self.len);
                        // SAFETY: `a..b` is clamped to the arena length and
                        // the arena outlives this call.
                        unsafe {
                            std::slice::from_raw_parts(self.base.as_ptr().add(a), b - a)
                                .to_vec()
                                .into_boxed_slice()
                        }
                    });
                    st.ranges.push(DeferredRange {
                        off: p.0,
                        len: len.max(1) as u32,
                        seq,
                        snap,
                    });
                    true
                }
                _ => false,
            }
        });
        if deferred {
            self.stats
                .persists_deferred
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            #[cfg(feature = "pm-check")]
            self.durability
                .note_persist(first, end.div_ceil(CACHE_LINE) * CACHE_LINE);
            if self.charge_reads {
                let mut line = first;
                while line < end {
                    self.cache.invalidate(line);
                    line += CACHE_LINE;
                }
            }
            return;
        }

        self.stats
            .persist_calls
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.stats
            .lines_flushed
            .fetch_add(nlines, std::sync::atomic::Ordering::Relaxed);

        // Discipline tracking clears even when the fuse is blown below: the
        // fuse models the machine dying, not the code skipping a flush.
        #[cfg(feature = "pm-check")]
        self.durability
            .note_persist(first, end.div_ceil(CACHE_LINE) * CACHE_LINE);

        if self.charge_reads {
            let mut line = first;
            while line < end {
                self.cache.invalidate(line);
                line += CACHE_LINE;
            }
        }

        // Failure injection: a blown fuse means this persist "never
        // happened" — the store stays in the (volatile) working image only.
        let fuse_ok = self.fuse_tick();

        if let Some(crash) = &self.crash {
            if !fuse_ok {
                // Leave the lines dirty so simulate_crash reverts them.
                charge(
                    self.mode,
                    &self.stats.write_extra_ns,
                    self.latency.write_extra_ns(),
                );
                return;
            }
            let seq = self
                .persist_seq
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let mut st = crash.lock();
            let mut line = first;
            while line < end {
                let idx = line / CACHE_LINE;
                if st.dirty.remove(&idx) {
                    let a = (line as usize).min(self.len);
                    let b = ((line + CACHE_LINE) as usize).min(self.len);
                    // SAFETY: `a..b` is clamped to the arena/shadow length
                    // and the two buffers never overlap (separate
                    // allocations).
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            self.base.as_ptr().add(a),
                            st.shadow.as_mut_ptr().add(a),
                            b - a,
                        );
                    }
                    // Stale deferred redo records of this line must not
                    // later roll the shadow back behind this promotion.
                    st.applied.insert(idx, seq);
                }
                line += CACHE_LINE;
            }
        }

        charge(
            self.mode,
            &self.stats.write_extra_ns,
            self.latency.write_extra_ns(),
        );
    }

    /// Persist exactly one `T` at `p`.
    #[inline]
    pub fn persist_val<T: Pod>(&self, p: PmPtr) {
        self.persist(p, size_of::<T>());
    }

    /// Assert that every byte of `[p, p+len)` is durable: no store to the
    /// range has been left uncovered by a later `persist`. Bytes that were
    /// never written count as durable (they hold their last-persisted —
    /// possibly initial-zero — contents).
    ///
    /// A no-op unless the crate is built with the `pm-check` feature, so
    /// commit points call it unconditionally. Under `pm-check` it panics
    /// with the exact un-persisted byte ranges — the lexical `pmlint` pass
    /// catches missing flushes it can see, this catches the ones it can't.
    #[inline]
    pub fn check_durable(&self, p: PmPtr, len: usize) {
        #[cfg(feature = "pm-check")]
        {
            self.check(p, len.max(1));
            let ranges = self.durability.unpersisted_in(p.0, len as u64);
            assert!(
                ranges.is_empty(),
                "pm-check: commit point reached with un-persisted bytes in \
                 [{}, {}): {:?} (offsets; each pair is [start, end)) — a \
                 store is missing a covering persist",
                p.0,
                p.0 + len as u64,
                ranges
            );
        }
        #[cfg(not(feature = "pm-check"))]
        {
            let _ = (p, len);
        }
    }

    // -------------------------------------------------------- group-commit

    /// Run `f` with this thread's `persist` calls *deferred*: each call is
    /// recorded as an `(offset, len)` range instead of charging latency,
    /// decrementing the persist fuse, or promoting lines into the crash
    /// shadow. Returns `f`'s result plus the recorded [`PersistBatch`].
    ///
    /// The operation is **not durable** until the batch is redeemed by
    /// [`PmemPool::flush_batches`] — callers that acknowledge writes (the
    /// server's group-commit path) must wait for that flush. Deferral is
    /// per-thread and applies only to persists against this pool; nesting
    /// is a logic error.
    ///
    /// Under crash simulation each deferred persist carries a redo-log
    /// snapshot of its lines taken at call time, and the flush replays the
    /// snapshots (newest-wins per line). Group commit therefore crashes
    /// *exactly* like the per-op path would at the same persist boundary:
    /// bytes stored after a persist — e.g. a later op's allocator-bitmap
    /// bit on the same cache line — cannot ride that persist's flush into
    /// the durable image. (A delayed CLFLUSH on real hardware *would* leak
    /// them; real group-commit systems interpose a write-ahead log for
    /// precisely this reason, and the snapshot is that log record.)
    pub fn run_deferred<R>(&self, f: impl FnOnce() -> R) -> (R, PersistBatch) {
        let pool_id = self.base.as_ptr() as usize;
        DEFER.with(|d| {
            let mut d = d.borrow_mut();
            assert!(d.is_none(), "PmemPool::run_deferred does not nest");
            *d = Some(DeferState {
                pool_id,
                ranges: Vec::new(),
            });
        });
        // Clear the thread-local if `f` panics so the thread is reusable.
        struct Reset;
        impl Drop for Reset {
            fn drop(&mut self) {
                DEFER.with(|d| d.borrow_mut().take());
            }
        }
        let reset = Reset;
        let out = f();
        std::mem::forget(reset);
        let st = DEFER
            .with(|d| d.borrow_mut().take())
            .expect("deferred-persist state vanished");
        (
            out,
            PersistBatch {
                pool_id,
                ranges: st.ranges,
            },
        )
    }

    /// Redeem deferred batches: promote every recorded range in submission
    /// order, then charge **one** write-latency fence for the whole group —
    /// the group-commit amortization (`MFENCE; CLFLUSH…; MFENCE` once per
    /// batch window instead of once per op).
    ///
    /// The persist fuse is decremented once per recorded range, in order,
    /// so failure injection sees the same persist sequence the per-op path
    /// would have issued. Returns the number of *leading* batches whose
    /// ranges all promoted before the fuse blew — ops beyond that count
    /// must not be acknowledged as durable (a trailing op may be torn,
    /// exactly like a crash mid-op on the per-op path).
    pub fn flush_batches(&self, batches: &[PersistBatch]) -> usize {
        use std::sync::atomic::Ordering;
        if batches.is_empty() {
            return 0;
        }
        let mut crash_guard = self.crash.as_ref().map(|c| c.lock());
        let mut ok_batches = 0usize;
        let mut total_lines = 0u64;
        'outer: for b in batches {
            assert_eq!(
                b.pool_id,
                self.base.as_ptr() as usize,
                "PersistBatch redeemed against a different pool"
            );
            for r in &b.ranges {
                let first = r.off & !(CACHE_LINE - 1);
                let end = r.off + r.len.max(1) as u64;
                total_lines += (end - first).div_ceil(CACHE_LINE);
                if !self.fuse_tick() {
                    break 'outer;
                }
                let (Some(st), Some(snap)) = (crash_guard.as_deref_mut(), r.snap.as_deref()) else {
                    continue;
                };
                // Replay the redo-log snapshot, newest sequence wins per
                // line: a per-op promotion (or a racing batch) that already
                // persisted newer content must not be rolled back by this
                // older record. The line stays dirty — the working image
                // may hold later, still-unpersisted stores.
                let mut line = first;
                while line < end {
                    let idx = line / CACHE_LINE;
                    if st.applied.get(&idx).is_none_or(|&s| s < r.seq) {
                        let a = (line as usize).min(self.len);
                        let b = ((line + CACHE_LINE) as usize).min(self.len);
                        let so = (line - first) as usize;
                        st.shadow[a..b].copy_from_slice(&snap[so..so + (b - a)]);
                        st.applied.insert(idx, r.seq);
                        st.dirty.insert(idx);
                    }
                    line += CACHE_LINE;
                }
            }
            ok_batches += 1;
        }
        drop(crash_guard);
        self.stats.persist_calls.fetch_add(1, Ordering::Relaxed);
        self.stats
            .lines_flushed
            .fetch_add(total_lines, Ordering::Relaxed);
        self.stats.group_flushes.fetch_add(1, Ordering::Relaxed);
        charge(
            self.mode,
            &self.stats.write_extra_ns,
            self.latency.write_extra_ns(),
        );
        ok_batches
    }

    /// Decrement the persist fuse by one logical persist; false once blown.
    #[inline]
    fn fuse_tick(&self) -> bool {
        use std::sync::atomic::Ordering;
        let f = self.persist_fuse.load(Ordering::Relaxed);
        if f < 0 {
            true // disarmed
        } else {
            self.persist_fuse
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    (v > 0).then_some(v - 1)
                })
                .is_ok_and(|prev| prev > 0)
        }
    }

    /// A standalone memory fence (counted; no latency charge of its own —
    /// the paper folds fence cost into the per-persist charge).
    pub fn fence(&self) {
        self.stats
            .fences
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
    }

    // ------------------------------------------------------------- crashes

    /// Simulate a power failure: every line written since its last persist
    /// reverts to its last-persisted contents. The CPU-cache model is
    /// cleared (a rebooted machine starts cold). Volatile structures built
    /// on top (DRAM nodes, allocator reservations) must be discarded by the
    /// caller — that is the point of the exercise.
    ///
    /// # Panics
    /// Panics if the pool was created without `crash_sim`.
    pub fn simulate_crash(&self) {
        let crash = self.crash.as_ref().expect("pool created without crash_sim");
        #[cfg(feature = "pm-check")]
        self.durability.clear();
        let mut st = crash.lock();
        // Any deferred redo records left in flight died with the machine;
        // the promotion history restarts with the reboot.
        st.applied.clear();
        let dirty: Vec<u64> = st.dirty.drain().collect();
        for idx in dirty {
            let a = ((idx * CACHE_LINE) as usize).min(self.len);
            let b = (((idx + 1) * CACHE_LINE) as usize).min(self.len);
            // SAFETY: `a..b` is clamped to the arena/shadow length and the
            // two buffers never overlap (separate allocations).
            unsafe {
                std::ptr::copy_nonoverlapping(
                    st.shadow.as_ptr().add(a),
                    self.base.as_ptr().add(a),
                    b - a,
                );
            }
        }
        self.cache.clear();
    }

    /// Arm the persist fuse: after `n` more `persist` calls, durability
    /// silently stops (crash-simulation pools only). Combine with
    /// [`PmemPool::simulate_crash`] to emulate a power failure at an
    /// arbitrary internal persist point of an operation.
    ///
    /// # Panics
    /// Panics if the pool was created without `crash_sim`.
    pub fn arm_persist_fuse(&self, n: u64) {
        assert!(self.crash.is_some(), "persist fuse requires crash_sim");
        self.persist_fuse
            .store(n as i64, std::sync::atomic::Ordering::Relaxed);
    }

    /// Disarm the persist fuse (durability resumes).
    pub fn disarm_persist_fuse(&self) {
        self.persist_fuse
            .store(-1, std::sync::atomic::Ordering::Relaxed);
    }

    /// True when an armed fuse has burned down to zero (the simulated
    /// machine is "already dead").
    pub fn fuse_blown(&self) -> bool {
        self.persist_fuse.load(std::sync::atomic::Ordering::Relaxed) == 0
    }

    /// Number of currently unpersisted (dirty) lines — test helper.
    pub fn dirty_lines(&self) -> usize {
        self.crash.as_ref().map_or(0, |c| c.lock().dirty.len())
    }

    /// Rebuild the raw allocator's volatile view after a simulated crash:
    /// the bump cursor survives conservatively (space below it that is no
    /// longer referenced is leaked *unless* a chunk allocator like
    /// EPallocator reclaims it — which is exactly the persistent-leak story
    /// the paper tells), while volatile free lists are dropped.
    pub fn reset_volatile_alloc(&self) {
        let mut a = self.alloc.lock();
        a.free.clear();
    }

    /// Ablation hook: charge the latency and accounting of `calls`
    /// `persistent()` invocations without touching any data. Used by the
    /// selective-persistence ablation, which pretends HART's DRAM internal
    /// nodes were PM-resident and had to be flushed on every structural
    /// change (§III-A.2's claim quantified).
    pub fn charge_synthetic_persist(&self, calls: u64) {
        self.stats
            .persist_calls
            .fetch_add(calls, std::sync::atomic::Ordering::Relaxed);
        charge(
            self.mode,
            &self.stats.write_extra_ns,
            calls * self.latency.write_extra_ns(),
        );
    }

    // ------------------------------------------------------------ imaging

    /// The raw-allocator bump cursor (for pool-image files).
    pub(crate) fn alloc_bump(&self) -> u64 {
        self.alloc.lock().bump
    }

    /// Restore the bump cursor from a pool-image file.
    pub(crate) fn set_alloc_bump(&self, bump: u64) {
        let mut a = self.alloc.lock();
        a.bump = bump.clamp(HEAP_START, self.len as u64);
        a.free.clear();
    }

    /// Run `f` over the pool's *durable* bytes: the shadow image for a
    /// crash-sim pool, the working arena otherwise.
    pub(crate) fn with_durable_image<T>(
        &self,
        f: impl FnOnce(&[u8]) -> std::io::Result<T>,
    ) -> std::io::Result<T> {
        match &self.crash {
            Some(crash) => {
                let st = crash.lock();
                f(&st.shadow)
            }
            None => {
                // SAFETY: `base` points at `self.len` initialised arena
                // bytes; the shared borrow lives only for `f`'s call.
                let bytes = unsafe { std::slice::from_raw_parts(self.base.as_ptr(), self.len) };
                f(bytes)
            }
        }
    }

    /// Fill the arena from a reader (pool-image loading).
    pub(crate) fn fill_from_reader(
        &self,
        r: &mut impl std::io::Read,
        len: usize,
    ) -> std::io::Result<()> {
        assert!(len <= self.len);
        // SAFETY: `len <= self.len` is asserted above and `&self` methods
        // are not re-entered while this exclusive view is alive.
        let bytes = unsafe { std::slice::from_raw_parts_mut(self.base.as_ptr(), len) };
        r.read_exact(bytes)
    }

    /// After loading an image, make the crash shadow (if any) match the
    /// working arena: the loaded bytes *are* the durable baseline.
    pub(crate) fn sync_shadow_to_working(&self) {
        #[cfg(feature = "pm-check")]
        self.durability.clear();
        if let Some(crash) = &self.crash {
            let mut st = crash.lock();
            st.dirty.clear();
            // SAFETY: `base` points at `self.len` initialised arena bytes;
            // the borrow ends with the `copy_from_slice` call.
            let bytes = unsafe { std::slice::from_raw_parts(self.base.as_ptr(), self.len) };
            st.shadow.copy_from_slice(bytes);
        }
    }
}

impl Drop for PmemPool {
    fn drop(&mut self) {
        // SAFETY: `base` was produced by `alloc_zeroed(self.layout)` and is
        // freed exactly once here.
        unsafe { dealloc(self.base.as_ptr(), self.layout) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> PmemPool {
        PmemPool::new(PoolConfig::test_small())
    }

    #[test]
    fn read_write_roundtrip() {
        let p = pool();
        let ptr = p.alloc_raw(64, 64).unwrap();
        p.write(ptr, &0xdead_beefu64);
        assert_eq!(p.read::<u64>(ptr), 0xdead_beef);
        let mut buf = [0u8; 8];
        p.read_bytes(ptr, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 0xdead_beef);
    }

    #[test]
    fn alloc_respects_alignment_and_reuse() {
        let p = pool();
        let a = p.alloc_raw(100, 256).unwrap();
        assert_eq!(a.0 % 256, 0);
        let b = p.alloc_raw(100, 256).unwrap();
        assert_ne!(a, b);
        p.free_raw(a, 100, 256);
        let c = p.alloc_raw(100, 256).unwrap();
        assert_eq!(a, c, "freed block should be reused");
    }

    #[test]
    fn freed_memory_is_zeroed() {
        let p = pool();
        let a = p.alloc_raw(64, 64).unwrap();
        p.write(a, &u64::MAX);
        p.persist_val::<u64>(a);
        p.free_raw(a, 64, 64);
        let b = p.alloc_raw(64, 64).unwrap();
        assert_eq!(a, b);
        assert_eq!(p.read::<u64>(b), 0);
    }

    #[test]
    fn exhaustion_returns_none() {
        let p = PmemPool::new(PoolConfig {
            size_bytes: 16 * 4096,
            ..PoolConfig::test_small()
        });
        let mut n = 0;
        while p.alloc_raw(4096, 4096).is_some() {
            n += 1;
            assert!(n < 100);
        }
        assert!((10..=15).contains(&n), "got {n} pages from a 16-page pool");
    }

    #[test]
    fn root_area_is_stable() {
        let p = pool();
        assert_eq!(p.root_area(100), p.root_area(4000));
        assert_eq!(p.root_area(8).0, 64);
    }

    #[test]
    #[should_panic]
    fn root_area_overflow_panics() {
        pool().root_area(5000);
    }

    #[test]
    #[should_panic]
    fn oob_access_panics() {
        let p = pool();
        p.read::<u64>(PmPtr(p.capacity() as u64 - 4));
    }

    #[test]
    #[should_panic]
    fn null_deref_panics() {
        pool().read::<u64>(PmPtr::NULL);
    }

    #[test]
    fn persist_counts_lines() {
        let p = pool();
        let ptr = p.alloc_raw(256, 64).unwrap();
        let before = p.stats().snapshot();
        p.persist(ptr, 130); // spans 3 lines
        let after = p.stats().snapshot();
        assert_eq!(after.persist_calls - before.persist_calls, 1);
        assert_eq!(after.lines_flushed - before.lines_flushed, 3);
    }

    #[test]
    fn crash_reverts_unpersisted_writes() {
        let p = PmemPool::new(PoolConfig::test_crash());
        let a = p.alloc_raw(64, 64).unwrap();
        let b = p.alloc_raw(64, 64).unwrap();
        p.write(a, &1u64);
        p.persist_val::<u64>(a);
        p.write(b, &2u64);
        // b never persisted.
        p.simulate_crash();
        assert_eq!(p.read::<u64>(a), 1, "persisted data must survive");
        assert_eq!(p.read::<u64>(b), 0, "unpersisted data must be lost");
    }

    #[test]
    fn crash_respects_line_granularity() {
        // Two u64s in the same line: persisting one persists both —
        // CLFLUSH is line-granular, like real hardware.
        let p = PmemPool::new(PoolConfig::test_crash());
        let base = p.alloc_raw(64, 64).unwrap();
        p.write(base, &11u64);
        p.write(base.add(8), &22u64);
        p.persist(base, 8); // flushes the whole line
        p.simulate_crash();
        assert_eq!(p.read::<u64>(base), 11);
        assert_eq!(p.read::<u64>(base.add(8)), 22);
    }

    #[test]
    fn repeated_crashes_are_stable() {
        let p = PmemPool::new(PoolConfig::test_crash());
        let a = p.alloc_raw(64, 64).unwrap();
        p.write(a, &7u64);
        p.persist_val::<u64>(a);
        p.simulate_crash();
        p.simulate_crash();
        assert_eq!(p.read::<u64>(a), 7);
        p.write(a, &8u64);
        p.simulate_crash();
        assert_eq!(p.read::<u64>(a), 7, "second unpersisted write also lost");
    }

    #[test]
    fn dirty_lines_tracks_writes() {
        let p = PmemPool::new(PoolConfig::test_crash());
        let a = p.alloc_raw(256, 64).unwrap();
        // free_raw's zeroing persisted everything, so start clean.
        let before = p.dirty_lines();
        p.write(a, &1u64);
        assert_eq!(p.dirty_lines(), before + 1);
        p.persist_val::<u64>(a);
        assert_eq!(p.dirty_lines(), before);
    }

    #[test]
    fn read_latency_charged_only_on_miss() {
        let p = PmemPool::new(PoolConfig {
            latency: LatencyConfig::c300_300(),
            time_mode: TimeMode::Model,
            ..PoolConfig::test_small()
        });
        let a = p.alloc_raw(64, 64).unwrap();
        p.persist(a, 64); // evict the write-allocated line
        p.stats().reset();
        let _: u64 = p.read(a); // cold: miss
        let _: u64 = p.read(a); // warm: hit
        let snap = p.stats().snapshot();
        assert_eq!(snap.read_lines, 2);
        assert_eq!(snap.read_misses, 1);
        assert_eq!(snap.read_extra_ns, 200);
    }

    #[test]
    fn no_read_charge_at_300_100() {
        let p = PmemPool::new(PoolConfig {
            latency: LatencyConfig::c300_100(),
            time_mode: TimeMode::Model,
            ..PoolConfig::test_small()
        });
        let a = p.alloc_raw(64, 64).unwrap();
        p.stats().reset();
        let _: u64 = p.read(a);
        let snap = p.stats().snapshot();
        assert_eq!(snap.read_lines, 0, "300/100 charges no reads at all");
        assert_eq!(snap.read_extra_ns, 0);
    }

    #[test]
    fn write_extra_accumulates_in_model_mode() {
        let p = PmemPool::new(PoolConfig {
            latency: LatencyConfig::c600_300(),
            time_mode: TimeMode::Model,
            alloc_overhead_ns: 0,
            ..PoolConfig::test_small()
        });
        let a = p.alloc_raw(64, 64).unwrap();
        p.stats().reset();
        p.persist(a, 8);
        p.persist(a, 8);
        assert_eq!(p.stats().snapshot().write_extra_ns, 1000); // 2 * (600-100)
    }

    #[test]
    fn alloc_overhead_is_configurable() {
        let p = PmemPool::new(PoolConfig {
            alloc_overhead_ns: 700,
            time_mode: TimeMode::Model,
            latency: LatencyConfig::c300_300(),
            ..PoolConfig::test_small()
        });
        p.stats().reset();
        let _ = p.alloc_raw(64, 64).unwrap();
        assert_eq!(p.stats().snapshot().alloc_extra_ns, 700);

        let q = PmemPool::new(PoolConfig {
            alloc_overhead_ns: 0,
            time_mode: TimeMode::Model,
            latency: LatencyConfig::c300_300(),
            ..PoolConfig::test_small()
        });
        q.stats().reset();
        let _ = q.alloc_raw(64, 64).unwrap();
        assert_eq!(q.stats().snapshot().alloc_extra_ns, 0);
    }

    #[test]
    fn atomic_u64_requires_alignment() {
        let p = pool();
        let a = p.alloc_raw(64, 64).unwrap();
        p.write_u64_atomic(a, 42);
        assert_eq!(p.read::<u64>(a), 42);
    }

    #[test]
    #[should_panic]
    fn misaligned_atomic_panics() {
        let p = pool();
        let a = p.alloc_raw(64, 64).unwrap();
        p.write_u64_atomic(a.add(4), 42);
    }

    #[test]
    fn concurrent_allocation_is_disjoint() {
        use std::sync::Arc;
        let p = Arc::new(pool());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                (0..200)
                    .map(|_| p.alloc_raw(128, 128).unwrap().0)
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "allocator handed out overlapping blocks");
    }
}

#[cfg(test)]
mod fuse_tests {
    use super::*;

    #[test]
    fn fuse_counts_down_and_stays_blown() {
        let p = PmemPool::new(PoolConfig::test_crash());
        let a = p.alloc_raw(64, 64).unwrap();
        p.arm_persist_fuse(2);
        p.write(a, &1u64);
        p.persist_val::<u64>(a); // survives (fuse 2 -> 1)
        p.write(a.add(8), &2u64);
        p.persist(a.add(8), 8); // survives (fuse 1 -> 0)... same line though
        assert!(p.fuse_blown());
        p.write(a.add(16), &3u64);
        p.persist(a.add(16), 8); // lost
        p.write(a.add(24), &4u64);
        p.persist(a.add(24), 8); // still lost (fuse must stay blown)
        p.simulate_crash();
        assert_eq!(p.read::<u64>(a), 1);
        assert_eq!(p.read::<u64>(a.add(8)), 2);
        assert_eq!(
            p.read::<u64>(a.add(16)),
            0,
            "post-fuse persist must not stick"
        );
        assert_eq!(p.read::<u64>(a.add(24)), 0);
    }

    #[test]
    fn disarm_restores_durability() {
        let p = PmemPool::new(PoolConfig::test_crash());
        let a = p.alloc_raw(64, 64).unwrap();
        p.arm_persist_fuse(0);
        p.write(a, &1u64);
        p.persist_val::<u64>(a); // lost
        p.disarm_persist_fuse();
        p.write(a.add(8), &2u64);
        p.persist(a.add(8), 8); // durable again — and it flushes the whole
                                // line, which also carries the first write.
        p.simulate_crash();
        assert_eq!(p.read::<u64>(a.add(8)), 2);
    }

    #[test]
    #[should_panic]
    fn fuse_requires_crash_sim() {
        let p = PmemPool::new(PoolConfig::test_small());
        p.arm_persist_fuse(1);
    }

    #[test]
    fn blown_fuse_keeps_exact_prefix_at_line_granularity() {
        // The crash-simulation boundary itself: arm the fuse so that it
        // blows mid-sequence and assert the shadow image holds exactly the
        // pre-fuse prefix — whole lines persisted before the fuse blew
        // survive, everything at or after the blowing persist reverts.
        let p = PmemPool::new(PoolConfig::test_crash());
        let a = p.alloc_raw(4 * CACHE_LINE as usize, CACHE_LINE).unwrap();
        // One write+persist per line, fuse armed to survive exactly two.
        p.arm_persist_fuse(2);
        for i in 0..4u64 {
            let at = a.add(i * CACHE_LINE);
            p.write(at, &(i + 1));
            p.persist(at, CACHE_LINE as usize);
        }
        assert!(p.fuse_blown());
        // Before the crash the working image still sees all four stores.
        for i in 0..4u64 {
            assert_eq!(p.read::<u64>(a.add(i * CACHE_LINE)), i + 1);
        }
        p.simulate_crash();
        // After it, exactly the two-line prefix persisted pre-fuse remains.
        for i in 0..4u64 {
            let want = if i < 2 { i + 1 } else { 0 };
            assert_eq!(
                p.read::<u64>(a.add(i * CACHE_LINE)),
                want,
                "line {i} violates the pre-fuse prefix"
            );
        }
    }

    #[test]
    fn blown_fuse_splits_within_one_persist_call_by_lines() {
        // A single persist call spanning two lines when only one persist
        // credit remains: the paper's persistent() is one MFENCE-bounded
        // sequence, and this emulation burns the fuse per *call*, so the
        // whole call fails — neither line may reach the shadow.
        let p = PmemPool::new(PoolConfig::test_crash());
        let a = p.alloc_raw(2 * CACHE_LINE as usize, CACHE_LINE).unwrap();
        p.write(a, &0xa1u64);
        p.write(a.add(CACHE_LINE), &0xa2u64);
        p.arm_persist_fuse(1);
        p.persist(a, 2 * CACHE_LINE as usize); // fuse 1 -> 0: survives
        assert!(p.fuse_blown());
        p.write(a, &0xb1u64);
        p.persist(a, 8); // post-fuse: lost
        p.simulate_crash();
        assert_eq!(p.read::<u64>(a), 0xa1, "pre-fuse persist must stick");
        assert_eq!(p.read::<u64>(a.add(CACHE_LINE)), 0xa2);
    }
}

#[cfg(all(test, feature = "pm-check"))]
mod pm_check_tests {
    use super::*;

    #[test]
    fn durable_after_persist() {
        let p = PmemPool::new(PoolConfig::test_small());
        let a = p.alloc_raw(64, 64).unwrap();
        p.write(a, &7u64);
        p.persist_val::<u64>(a);
        p.check_durable(a, 8); // must not panic
    }

    #[test]
    fn never_written_counts_as_durable() {
        let p = PmemPool::new(PoolConfig::test_small());
        let a = p.alloc_raw(64, 64).unwrap();
        p.check_durable(a, 64);
    }

    #[test]
    #[should_panic(expected = "pm-check")]
    fn unpersisted_write_panics_at_commit() {
        let p = PmemPool::new(PoolConfig::test_small());
        let a = p.alloc_raw(64, 64).unwrap();
        p.write(a, &7u64);
        p.check_durable(a, 8);
    }

    #[test]
    #[should_panic(expected = "pm-check")]
    fn partial_persist_still_panics() {
        let p = PmemPool::new(PoolConfig::test_small());
        let a = p.alloc_raw(256, 64).unwrap();
        p.write_bytes(a, &[1u8; 130]); // three lines
        p.persist(a, 64); // only the first
        p.check_durable(a.add(64), 66);
    }

    #[test]
    fn line_rounded_persist_covers_shared_line_neighbours() {
        // Two 40-byte "leaves" straddling a line boundary: persisting the
        // first flushes the shared line, so only the second leaf's bytes in
        // the *next* line stay dirty — byte-granular tracking must not
        // report leaf A dirty after B's neighbouring write.
        let p = PmemPool::new(PoolConfig::test_small());
        let base = p.alloc_raw(128, 64).unwrap();
        p.write_bytes(base, &[0xAA; 40]); // leaf A: [0, 40)
        p.persist(base, 40);
        p.write_bytes(base.add(40), &[0xBB; 40]); // leaf B: [40, 80)
        p.check_durable(base, 40); // A stays durable
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.check_durable(base.add(40), 40)
        }));
        assert!(caught.is_err(), "B is not durable yet");
        p.persist(base.add(40), 40);
        p.check_durable(base.add(40), 40);
    }

    #[test]
    fn fuse_blown_persist_still_clears_discipline_state() {
        // The fuse models power loss, not a missing flush: code that *did*
        // call persist has honoured the discipline even if the simulated
        // machine was already dead, so check_durable stays quiet.
        let p = PmemPool::new(PoolConfig::test_crash());
        let a = p.alloc_raw(64, 64).unwrap();
        p.arm_persist_fuse(0);
        p.write(a, &9u64);
        p.persist_val::<u64>(a); // fuse already blown — not durable for real
        p.check_durable(a, 8); // ...but the code's ordering was correct
        p.simulate_crash();
        assert_eq!(p.read::<u64>(a), 0, "the data itself is still lost");
    }

    #[test]
    fn crash_resets_discipline_state() {
        let p = PmemPool::new(PoolConfig::test_crash());
        let a = p.alloc_raw(64, 64).unwrap();
        p.write(a, &9u64); // never persisted
        p.simulate_crash(); // write reverted — nothing left to flag
        p.check_durable(a, 8);
    }
}
