//! A small set-associative CPU-cache model for PM reads.
//!
//! The paper charged PM read latency only for loads that actually stalled
//! the CPU (Eq. 1–2 use the measured stall cycles, which exclude cache
//! hits). This module provides the equivalent inline mechanism: a
//! set-associative tag array sized like the testbed's shared 20 MB L3.
//! A PM line read that hits costs nothing; a miss is charged the read
//! latency difference. `CLFLUSH` (i.e. [`PmemPool::persist`]) invalidates
//! the flushed lines, reproducing the paper's observation that "CLFLUSH
//! significantly increases the number of cache misses".
//!
//! The tag array uses relaxed atomics so concurrent probes are safe; races
//! merely make the model slightly optimistic/pessimistic for one access,
//! which is in the noise of a latency emulator.
//!
//! [`PmemPool::persist`]: crate::PmemPool::persist

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Cache-model geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total modeled capacity in bytes. Default 20 MiB (Xeon E5-2640 v3 L3).
    pub capacity_bytes: usize,
    /// Associativity. Default 16 ways.
    pub ways: usize,
    /// Line size. Default 64 B.
    pub line_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 20 * 1024 * 1024,
            ways: 16,
            line_bytes: 64,
        }
    }
}

/// Set-associative tag-only cache simulator.
pub struct CacheSim {
    /// `sets * ways` tags; a tag stores `line_index + 1` (0 = invalid).
    tags: Box<[AtomicU64]>,
    /// Per-set round-robin replacement cursor.
    cursors: Box<[AtomicUsize]>,
    sets: usize,
    ways: usize,
    line_shift: u32,
}

impl CacheSim {
    /// Build a simulator from `cfg`.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero ways, non-power-of-two
    /// line size, or capacity smaller than one set).
    pub fn new(cfg: CacheConfig) -> CacheSim {
        assert!(cfg.ways > 0, "cache must have at least one way");
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = cfg.capacity_bytes / cfg.line_bytes;
        // Round the set count *down* to a power of two: rounding up would
        // model up to ~2x the configured capacity (e.g. 20 MiB -> 32 MiB),
        // under-charging PM read misses. A model may be smaller than the
        // configured L3, never larger.
        let raw = (lines / cfg.ways).max(1);
        let sets = 1usize << raw.ilog2();
        let tags = (0..sets * cfg.ways).map(|_| AtomicU64::new(0)).collect();
        let cursors = (0..sets).map(|_| AtomicUsize::new(0)).collect();
        CacheSim {
            tags,
            cursors,
            sets,
            ways: cfg.ways,
            line_shift: cfg.line_bytes.trailing_zeros(),
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        // Multiplicative hash spreads sequential lines across sets, like a
        // real L3's physical-address indexing does in aggregate.
        ((line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) as usize) & (self.sets - 1)
    }

    /// Record an access to the line containing byte `addr`.
    /// Returns `true` on hit, `false` on miss (the line is then installed).
    pub fn access(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let tag = line + 1;
        let set = self.set_of(line);
        let base = set * self.ways;
        for w in 0..self.ways {
            if self.tags[base + w].load(Ordering::Relaxed) == tag {
                return true;
            }
        }
        // Miss: install with per-set round-robin replacement.
        let way = self.cursors[set].fetch_add(1, Ordering::Relaxed) % self.ways;
        self.tags[base + way].store(tag, Ordering::Relaxed);
        false
    }

    /// Invalidate the line containing byte `addr` (models `CLFLUSH`).
    pub fn invalidate(&self, addr: u64) {
        let line = addr >> self.line_shift;
        let tag = line + 1;
        let set = self.set_of(line);
        let base = set * self.ways;
        for w in 0..self.ways {
            // CAS so we only clear the slot if it still holds this line.
            let _ =
                self.tags[base + w].compare_exchange(tag, 0, Ordering::Relaxed, Ordering::Relaxed);
        }
    }

    /// Drop all cached lines (used when reopening a pool after a simulated
    /// crash: a rebooted machine starts cold).
    pub fn clear(&self) {
        for t in self.tags.iter() {
            t.store(0, Ordering::Relaxed);
        }
    }

    /// Bytes of line granularity.
    #[inline]
    pub fn line_bytes(&self) -> usize {
        1 << self.line_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // 4 sets * 2 ways * 64 B = 512 B capacity.
        CacheSim::new(CacheConfig {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn hit_after_miss() {
        let c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
    }

    #[test]
    fn invalidate_causes_miss() {
        let c = tiny();
        c.access(128);
        assert!(c.access(128));
        c.invalidate(128);
        assert!(!c.access(128));
    }

    #[test]
    fn clear_flushes_everything() {
        let c = tiny();
        c.access(0);
        c.access(64);
        c.clear();
        assert!(!c.access(0));
        assert!(!c.access(64));
    }

    #[test]
    fn capacity_eviction() {
        // With 2 ways per set, three distinct lines mapping to the same set
        // must evict one. We can't easily pick conflicting addresses through
        // the hash, so instead verify global behaviour: touching far more
        // lines than the capacity then re-touching the first line usually
        // misses. (Round-robin makes this deterministic per set.)
        let c = tiny(); // 8 lines capacity
        assert!(!c.access(0));
        for i in 1..64u64 {
            c.access(i * 64);
        }
        // 64 lines through an 8-line cache: line 0 must be long gone.
        assert!(!c.access(0));
    }

    #[test]
    fn default_geometry_is_sane() {
        let c = CacheSim::new(CacheConfig::default());
        assert_eq!(c.line_bytes(), 64);
        assert!(!c.access(12345));
        assert!(c.access(12345));
    }

    /// The modeled capacity must never exceed the configured one (it used
    /// to: 20480 sets rounded *up* to 32768, modeling a 32 MiB L3 for the
    /// testbed's 20 MiB part), and power-of-two rounding can at worst
    /// halve it.
    #[test]
    fn modeled_capacity_never_exceeds_configured() {
        for (capacity, ways, line) in [
            (20 * 1024 * 1024, 16, 64), // default: Xeon E5-2640 v3 L3
            (512, 2, 64),               // the tiny() geometry (exact)
            (3 * 1024 * 1024, 12, 64),  // non-power-of-two everything
            (8 * 1024 * 1024, 16, 64),  // exact power of two
            (100, 1, 64),               // capacity ~ one line
        ] {
            let cfg = CacheConfig {
                capacity_bytes: capacity,
                ways,
                line_bytes: line,
            };
            let c = CacheSim::new(cfg);
            let modeled = c.sets * c.ways * c.line_bytes();
            assert!(
                modeled <= capacity.max(ways * line),
                "{cfg:?}: modeled {modeled} exceeds configured {capacity}"
            );
            if capacity >= 2 * ways * line {
                assert!(
                    modeled >= capacity / 2,
                    "{cfg:?}: modeled {modeled} below half capacity"
                );
            }
        }
        // The default geometry specifically: 20 MiB / 64 B / 16 ways =
        // 20480 sets, which must round down to 16384 (a 16 MiB model).
        let def = CacheSim::new(CacheConfig::default());
        assert_eq!(def.sets, 16384);
    }
}
