//! The HART index: Algorithms 1 (insertion), 3 (update), 4 (search),
//! 5 (deletion) and 7 (recovery), over the EPallocator substrate.

use crate::config::HartConfig;
use crate::dir::{Directory, RawBucketRead, Shard};
use crate::resolver::PmResolver;
use hart_art::RawRead;
use hart_epalloc::{
    leaf_read_key, leaf_read_pvalue, leaf_read_val_len, leaf_write_key, leaf_write_pvalue,
    persist_leaf_key, persist_leaf_pvalue, AllocStats, EPallocator, ObjClass, LEAF_SIZE,
    OBJS_PER_CHUNK,
};
use hart_kv::{
    Error, InlineKey, Key, MemoryStats, PersistentIndex, Result, Value, MAX_KEY_LEN, MAX_VALUE_LEN,
};
use hart_pm::{PmPtr, PmStatsSnapshot, PmemPool};
use std::ptr;
use std::sync::Arc;

/// A concurrent Hash-Assisted Radix Tree over an emulated PM pool.
///
/// See the crate docs for the architecture. Construction:
/// * [`Hart::create`] formats a fresh pool;
/// * [`Hart::recover`] rebuilds the DRAM hash directory and ART internal
///   nodes from the PM leaf chunks after a crash or restart (Algorithm 7).
pub struct Hart {
    alloc: EPallocator,
    cfg: HartConfig,
    dir: Directory,
    /// Observability recorder shared with the directory and the allocator;
    /// inert when `cfg.observability` is off (see `HartConfig`).
    obs: hart_obs::Recorder,
}

impl Hart {
    /// Create a HART over a freshly formatted pool.
    pub fn create(pool: Arc<PmemPool>, cfg: HartConfig) -> Result<Hart> {
        cfg.validate()?;
        let obs = hart_obs::Recorder::with_enabled(cfg.observability);
        let mut dir = Directory::new(
            cfg.initial_buckets,
            cfg.resize_threshold,
            cfg.optimistic_reads,
            cfg.full_key_probes,
        );
        dir.set_recorder(obs.clone());
        Ok(Hart {
            alloc: EPallocator::create(pool).with_recorder(obs.clone()),
            cfg,
            dir,
            obs,
        })
    }

    /// Algorithm 7: open an existing pool, replay the allocator's
    /// micro-logs, then rebuild the hash directory and every ART by
    /// traversing the leaf memory chunks. "Recovering a HART is much faster
    /// than building a new HART from scratch because the leaf nodes and
    /// values are already on PM."
    pub fn recover(pool: Arc<PmemPool>, cfg: HartConfig) -> Result<Hart> {
        cfg.validate()?;
        let obs = hart_obs::Recorder::with_enabled(cfg.observability);
        let alloc = EPallocator::open(pool)?.with_recorder(obs.clone());
        let mut dir = Directory::new(
            cfg.initial_buckets,
            cfg.resize_threshold,
            cfg.optimistic_reads,
            cfg.full_key_probes,
        );
        dir.set_recorder(obs.clone());
        let hart = Hart {
            alloc,
            cfg,
            dir,
            obs,
        };
        let mut leaves = Vec::new();
        hart.alloc.for_each_live(ObjClass::Leaf, |p| leaves.push(p));
        for leaf in leaves {
            // A live leaf whose value bit is unset is a deletion that
            // crashed between its two retire steps — `recover_one_leaf`
            // completes it instead of reattaching (see `remove`).
            hart.recover_one_leaf(leaf)?;
        }
        Ok(hart)
    }

    /// Parallel variant of [`Hart::recover`] — an extension beyond the
    /// paper (DESIGN.md §6). Leaf reattachment is embarrassingly parallel
    /// under the existing per-ART write locks. The live-leaf list is
    /// striped round-robin by index: leaves allocated together sit in the
    /// same chunk and tend to share hot shards, so contiguous partitioning
    /// would serialize workers on the same shard write locks while striping
    /// spreads each chunk's leaves across all of them. A shared abort flag
    /// stops every worker promptly once any leaf fails to reattach, instead
    /// of letting the survivors finish a full rebuild whose result is
    /// already doomed. Log replay and the stale-leaf scrub still run
    /// single-threaded inside `EPallocator::open` before any worker starts.
    pub fn recover_parallel(pool: Arc<PmemPool>, cfg: HartConfig, threads: usize) -> Result<Hart> {
        cfg.validate()?;
        let threads = threads.max(1);
        let obs = hart_obs::Recorder::with_enabled(cfg.observability);
        let alloc = EPallocator::open(pool)?.with_recorder(obs.clone());
        let mut dir = Directory::new(
            cfg.initial_buckets,
            cfg.resize_threshold,
            cfg.optimistic_reads,
            cfg.full_key_probes,
        );
        dir.set_recorder(obs.clone());
        let hart = Hart {
            alloc,
            cfg,
            dir,
            obs,
        };
        let mut leaves = Vec::new();
        hart.alloc.for_each_live(ObjClass::Leaf, |p| leaves.push(p));
        // Keep the failure at the lowest live-leaf index, not whichever
        // worker wins the mutex race: leaf order is pool order, so the
        // reported corruption is deterministic and fsck-able regardless of
        // thread interleaving (each worker fails at most once, at the
        // earliest bad leaf of its own stripe).
        let first_err = parking_lot::Mutex::new(None::<(usize, Error)>);
        let abort = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for w in 0..threads {
                let hart = &hart;
                let leaves = &leaves;
                let first_err = &first_err;
                let abort = &abort;
                s.spawn(move || {
                    for (idx, &leaf) in leaves.iter().enumerate().skip(w).step_by(threads) {
                        if abort.load(std::sync::atomic::Ordering::Relaxed) {
                            return;
                        }
                        if let Err(e) = hart.recover_one_leaf(leaf) {
                            note_recovery_err(first_err, idx, e);
                            abort.store(true, std::sync::atomic::Ordering::Relaxed);
                            return;
                        }
                    }
                });
            }
        });
        if let Some((_, e)) = first_err.into_inner() {
            return Err(e);
        }
        Ok(hart)
    }

    /// Recovery step for one live leaf: complete a crashed deletion or
    /// reattach it into the DRAM structures.
    fn recover_one_leaf(&self, leaf: PmPtr) -> Result<()> {
        let pool = self.pool();
        let pv = leaf_read_pvalue(pool, leaf);
        let vclass = ObjClass::for_value_len(leaf_read_val_len(pool, leaf));
        if pv.is_null() || !self.alloc.is_live(pv, vclass) {
            self.alloc.retire_leaf(leaf);
            if !pv.is_null() {
                self.alloc.recycle_containing(pv, vclass);
            }
            self.alloc.recycle_containing(leaf, ObjClass::Leaf);
            return Ok(());
        }
        self.reattach_leaf(leaf)
    }

    /// `Insert2HART` (Algorithm 7 line 6): link an existing PM leaf back
    /// into the DRAM structures.
    fn reattach_leaf(&self, leaf: PmPtr) -> Result<()> {
        let full = leaf_read_key(self.pool(), leaf);
        if full.is_empty() {
            return Err(Error::Corrupted("live leaf with empty key"));
        }
        let (hk, ak) = split_inline(&full, self.cfg.hash_key_len);
        let shard = self.dir.get_or_insert(hk);
        let mut g = shard.write_observed(&self.obs);
        let r = self.resolver();
        if g.art.insert(&r, ak, leaf).is_some() {
            return Err(Error::Corrupted("duplicate live key in leaf chunks"));
        }
        Ok(())
    }

    #[inline]
    fn pool(&self) -> &PmemPool {
        self.alloc.pool()
    }

    #[inline]
    fn resolver(&self) -> PmResolver<'_> {
        PmResolver {
            pool: self.pool(),
            kh: self.cfg.hash_key_len,
        }
    }

    /// The pool this index lives in.
    pub fn pm_pool(&self) -> &Arc<PmemPool> {
        self.alloc.pool()
    }

    /// Allocator statistics (chunks / live objects per class).
    pub fn alloc_stats(&self) -> AllocStats {
        self.alloc.stats()
    }

    /// PM event counters.
    pub fn pm_stats(&self) -> PmStatsSnapshot {
        self.pool().stats().snapshot()
    }

    /// Number of ARTs currently linked in the hash directory — the paper's
    /// bound on concurrent writers.
    pub fn art_count(&self) -> usize {
        self.dir.shard_count()
    }

    /// Buckets currently in the hash directory. Starts at
    /// `HartConfig::initial_buckets` and doubles as the load factor crosses
    /// `HartConfig::resize_threshold` (DESIGN.md §Resizing).
    pub fn hash_bucket_count(&self) -> usize {
        self.dir.bucket_count()
    }

    /// Completed directory grow operations since creation/recovery.
    pub fn hash_resize_count(&self) -> u64 {
        self.dir.grow_count()
    }

    /// True while an old bucket array is still draining after a grow.
    pub fn hash_migration_in_progress(&self) -> bool {
        self.dir.migration_in_progress()
    }

    /// Configuration in effect.
    pub fn config(&self) -> HartConfig {
        self.cfg
    }

    /// Point-in-time export of the observability layer (DESIGN.md
    /// §Observability): exact op counts with sampled latency quantiles,
    /// optimistic-read health, shard lock contention, directory resizing,
    /// EBR backlog, allocator occupancy and the folded-in PM device-model
    /// counters. Zero-valued with `enabled: false` when the
    /// `HartConfig::observability` kill-switch is off.
    pub fn obs_snapshot(&self) -> hart_obs::ObsSnapshot {
        let mut s = hart_obs::ObsSnapshot::default();
        if !self.obs.is_enabled() {
            return s;
        }
        self.obs.fill_snapshot(&mut s);
        s.dir.migration_in_progress = self.hash_migration_in_progress();
        s.dir.buckets = self.hash_bucket_count() as u64;
        s.dir.shards = self.art_count() as u64;
        s.ebr.pending_garbage = hart_ebr::pending_garbage() as u64;
        let a = self.alloc.stats();
        let class = |c: ObjClass| {
            let i = c.idx();
            let cap = a.chunks[i] as u64 * OBJS_PER_CHUNK;
            hart_obs::AllocClassStats {
                live: a.live[i],
                chunks: a.chunks[i] as u64,
                slots_per_chunk: OBJS_PER_CHUNK,
                occupancy: if cap == 0 {
                    0.0
                } else {
                    a.live[i] as f64 / cap as f64
                },
            }
        };
        s.alloc.leaf = class(ObjClass::Leaf);
        s.alloc.value8 = class(ObjClass::Value8);
        s.alloc.value16 = class(ObjClass::Value16);
        let p = self.pm_stats();
        s.pm = hart_obs::PmSection {
            persist_calls: p.persist_calls,
            lines_flushed: p.lines_flushed,
            fences: p.fences,
            read_lines: p.read_lines,
            read_misses: p.read_misses,
            raw_allocs: p.raw_allocs,
            raw_frees: p.raw_frees,
            bytes_in_use: p.bytes_in_use,
            bytes_peak: p.bytes_peak,
            write_extra_ns: p.write_extra_ns,
            read_extra_ns: p.read_extra_ns,
            alloc_extra_ns: p.alloc_extra_ns,
        };
        // Pool-level group-commit truth; a hosting server overlays batch
        // occupancy and admission counters before exporting.
        s.group.enabled = self.cfg.group_commit;
        s.group.persists_deferred = p.persists_deferred;
        s.group.flushes = p.group_flushes;
        s
    }

    /// The underlying EPallocator — exposed so failure-injection tests and
    /// examples can stage torn operations at exact persist points.
    pub fn epallocator(&self) -> &EPallocator {
        &self.alloc
    }

    /// The PM leaf currently backing `key`, if any. Diagnostic/failure-
    /// injection helper; takes the shard's read lock.
    pub fn leaf_of(&self, key: &Key) -> Option<PmPtr> {
        let (hk, ak) = key.split(self.cfg.hash_key_len);
        let shard = self.dir.get(hk)?;
        let g = shard.read();
        if g.dead {
            return None;
        }
        g.art.search(&self.resolver(), ak).copied()
    }

    // ------------------------------------------------------------- updates

    /// Algorithm 3: logged out-of-place value update of an existing leaf.
    /// Caller holds the shard's write lock.
    fn update_leaf(&self, leaf: PmPtr, value: &Value) -> Result<()> {
        let pool = self.pool();
        let old_v = leaf_read_pvalue(pool, leaf);
        debug_assert!(!old_v.is_null(), "live leaf must own a value");
        let old_class = ObjClass::for_value_len(leaf_read_val_len(pool, leaf));
        let new_class = ObjClass::for_value_len(value.len());

        let ulog = self.alloc.acquire_ulog(); // line 1
        ulog.record_leaf(leaf); // line 2
        ulog.record_old(old_v); // line 3
        let new_v = match self.alloc.alloc(new_class) {
            // line 4
            Ok(p) => p,
            Err(e) => {
                ulog.finish();
                return Err(e);
            }
        };
        pool.write_bytes(new_v, value.as_slice()); // line 5
        pool.persist(new_v, value.len().max(1));
        ulog.record_new(new_v, value.len(), new_class, old_class); // line 6
        self.alloc.commit(new_v, new_class); // line 7
        leaf_write_pvalue(pool, leaf, new_v, value.len()); // line 8
        persist_leaf_pvalue(pool, leaf);
        self.alloc.retire(old_v, old_class); // line 9
        self.alloc.recycle_containing(old_v, old_class); // line 10
        ulog.finish(); // line 11
        Ok(())
    }

    /// Multi-get — the paper's range-query implementation for the ART-based
    /// trees ("simply implemented by calling a search function for each
    /// key", §IV-D).
    pub fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        keys.iter().map(|k| self.search(k)).collect()
    }

    /// Ordered full-key scan over `[start, end]` — an extension beyond the
    /// paper (see DESIGN.md): shards are visited in hash-key order, each
    /// ART in ART-key order, yielding globally sorted results.
    ///
    /// With `optimistic_reads` on, each shard is first scanned lock-free
    /// under its epoch counter; a shard whose writers keep invalidating the
    /// snapshot falls back to its read lock individually.
    pub fn ordered_range(&self, start: &Key, end: &Key) -> Result<Vec<(Key, Value)>> {
        self.ordered_scan(start, end, usize::MAX)
    }

    /// Ordered scan bounded at `limit` records — the YCSB-E primitive.
    ///
    /// The directory-level merge degenerates to ordered concatenation: the
    /// `k_h` prefix split gives shards non-overlapping key regions (the
    /// shard for hash key "AB" holds exactly the keys that start "AB", and
    /// "A" sorts before every "AB…"), so visiting shards in sorted hash-key
    /// order yields globally sorted output with no heap. The limit then
    /// becomes a shard-granular early stop: each visited shard is collected
    /// whole (shards are small by construction — one `k_h` region), and no
    /// further shard is touched once `limit` rows are in hand.
    ///
    /// Concurrency: same guarantees as [`Hart::ordered_range`] — every
    /// per-shard batch is seqlock-validated before being published, and the
    /// `Arc`s in the cached shard list keep every visited shard mapped
    /// across an online resize, so a racing grow/drain can cost retries
    /// but never torn, duplicated, or dropped keys.
    ///
    /// The shard list comes from the directory's generation-stamped scan
    /// cache ([`Directory::shards_sorted_cached`]): steady state pays no
    /// bucket walk, and a binary search on the sorted hash keys skips
    /// every shard whose region ends below `start`.
    pub fn ordered_scan(&self, start: &Key, end: &Key, limit: usize) -> Result<Vec<(Key, Value)>> {
        let mut out = Vec::new();
        if start > end || limit == 0 {
            return Ok(out);
        }
        let s = start.as_slice();
        let e = end.as_slice();
        let hi_buf = [0xFFu8; MAX_KEY_LEN];
        let kh = self.cfg.hash_key_len;
        let shards = self.dir.shards_sorted_cached();
        // First shard whose region can reach `start`. A full-length hash
        // key owns the prefix region [hk, hk·0xFF…]; a shorter one is a
        // whole key and owns the singleton {hk}. Both maxima are monotone
        // in hash-key order, so the predicate partitions the sorted list.
        let from = shards.partition_point(|(hk, _)| {
            let hk = hk.as_slice();
            if hk.len() < kh {
                hk < s
            } else {
                let m = hk.len().min(s.len());
                hk[..m] < s[..m]
            }
        });
        for (hk, shard) in &shards[from..] {
            if out.len() >= limit {
                break;
            }
            if hk.as_slice() > e {
                // The region minimum is the hash key itself, so this and
                // every later shard lie wholly past `end`.
                break;
            }
            let Some((ak_lo, ak_hi)) = shard_ak_bounds(hk.as_slice(), s, e, &hi_buf) else {
                continue;
            };
            if self.cfg.optimistic_reads {
                // SAFETY: the `Arc` in the cached list keeps `shard` alive
                // for the whole call; the callee re-validates every read
                // against the shard seqlock.
                unsafe {
                    self.range_shard_optimistic(Arc::as_ptr(shard), s, e, ak_lo, ak_hi, &mut out)?
                };
            } else {
                self.range_shard_locked(shard, s, e, ak_lo, ak_hi, &mut out)?;
            }
        }
        out.truncate(limit);
        Ok(out)
    }

    /// Read-locked range collection over one shard.
    fn range_shard_locked(
        &self,
        shard: &Shard,
        s: &[u8],
        e: &[u8],
        ak_lo: &[u8],
        ak_hi: &[u8],
        out: &mut Vec<(Key, Value)>,
    ) -> Result<()> {
        let r = self.resolver();
        let g = shard.read();
        if g.dead {
            return Ok(());
        }
        let mut leaves = Vec::new();
        g.art
            .for_each_in_range(&r, ak_lo, ak_hi, |&leaf| leaves.push(leaf));
        for leaf in leaves {
            let (k, v) = self.load_record(leaf)?;
            let ks = k.as_slice();
            if ks >= s && ks <= e {
                out.push((k, v));
            }
        }
        Ok(())
    }

    /// Optimistic range collection over one shard: snapshot the version,
    /// traverse raw, load every record, then validate once more before
    /// publishing the rows. Falls back to [`Hart::range_shard_locked`] when
    /// the retry budget runs out.
    ///
    /// # Safety
    /// The caller must keep `shard` alive for the whole call (the scan
    /// path holds the `Arc` from the cached shard list).
    unsafe fn range_shard_optimistic(
        &self,
        shard: *const Shard,
        s: &[u8],
        e: &[u8],
        ak_lo: &[u8],
        ak_hi: &[u8],
        out: &mut Vec<(Key, Value)>,
    ) -> Result<()> {
        let shard = &*shard;
        let r = self.resolver();
        // Scratch buffers live outside the retry loop: an optimistic read
        // section must not allocate (pmlint R8), and reusing the capacity
        // across attempts keeps a contended retry from churning the heap.
        let mut leaves = Vec::new();
        let mut rows: Vec<(Key, Value)> = Vec::new();
        'attempt: for attempt in 0..self.cfg.optimistic_retry_limit {
            if attempt > 0 {
                self.obs.add(hart_obs::Event::OptimisticRetry, 1);
            }
            leaves.clear();
            rows.clear();
            let v0 = shard.version();
            if v0 % 2 == 1 {
                continue; // write section open right now
            }
            let validate = || shard.validate(v0);
            let inner = shard.inner_ptr();
            let dead = ptr::read_volatile(ptr::addr_of!((*inner).dead));
            if !validate() {
                continue;
            }
            if dead {
                return Ok(()); // unlinked shards are empty by invariant
            }
            let art = ptr::addr_of!((*inner).art);
            if !hart_art::range_collect_raw(art, &r, ak_lo, ak_hi, &validate, &mut leaves) {
                continue;
            }
            // The leaf set is a committed snapshot; now copy the records
            // out of PM and re-validate so a concurrent update/remove that
            // recycled a value chunk mid-copy discards the whole batch.
            rows.reserve(leaves.len());
            for &leaf in &leaves {
                match self.load_record(leaf) {
                    Ok((k, v)) => {
                        let ks = k.as_slice();
                        if ks >= s && ks <= e {
                            rows.push((k, v));
                        }
                    }
                    Err(err) => {
                        if validate() {
                            return Err(err); // stable snapshot: real corruption
                        }
                        continue 'attempt;
                    }
                }
            }
            if !validate() {
                continue;
            }
            out.append(&mut rows);
            return Ok(());
        }
        self.obs.add(hart_obs::Event::LockFallback, 1);
        self.range_shard_locked(shard, s, e, ak_lo, ak_hi, out)
    }

    fn load_record(&self, leaf: PmPtr) -> Result<(Key, Value)> {
        let pool = self.pool();
        let full = leaf_read_key(pool, leaf);
        let key = Key::new(full.as_slice()).map_err(|_| Error::Corrupted("bad key in leaf"))?;
        let v = self.load_value(leaf)?;
        Ok((key, v))
    }

    /// Algorithm 4 as published: hash probe + ART search under the shard's
    /// read lock.
    fn search_locked(&self, hk: &[u8], ak: &[u8]) -> Result<Option<Value>> {
        let Some(shard) = self.dir.get(hk) else {
            return Ok(None); // lines 3–4
        };
        let g = shard.read();
        if g.dead {
            // Shard was concurrently emptied and unlinked: the key is gone.
            return Ok(None);
        }
        let r = self.resolver();
        let Some(&leaf) = g.art.search(&r, ak) else {
            return Ok(None); // lines 6–7
        };
        // Lines 9–12: validate the leaf bit, then return the value.
        if !self.alloc.is_live(leaf, ObjClass::Leaf) {
            return Ok(None);
        }
        Ok(Some(self.load_value(leaf)?))
    }

    /// Version-validated lock-free search (DESIGN.md §Concurrency).
    ///
    /// Returns `None` when the caller must fall back to
    /// [`Hart::search_locked`]: either no EBR reader slot was free, or
    /// `optimistic_retry_limit` attempts were invalidated by writers.
    /// Every returned `Some(_)` is a *validated* result: the shard version
    /// was even and unchanged across everything the answer depends on, so
    /// the result equals what the locked path would have produced at that
    /// instant.
    /// `retries` is bumped once per re-attempt after a failed validation
    /// (observability; the caller feeds it to the recorder).
    fn search_optimistic(
        &self,
        hk: &[u8],
        ak: &[u8],
        retries: &mut u64,
    ) -> Option<Result<Option<Value>>> {
        let _pin = hart_ebr::pin()?;
        let r = self.resolver();
        for attempt in 0..self.cfg.optimistic_retry_limit {
            if attempt > 0 {
                *retries += 1;
            }
            // Lock-free hash probe (Algorithm 4 line 2).
            // SAFETY: `_pin` (held for the whole function) keeps the probed
            // directory tables and any shard pointer they return alive.
            let shard = match unsafe { self.dir.get_raw(hk) } {
                // SAFETY: same pin — the shard box is not freed while
                // pinned, and `&*p` only outlives this loop iteration.
                RawBucketRead::Found(p) => unsafe { &*p },
                RawBucketRead::Absent => return Some(Ok(None)),
                RawBucketRead::Retry => continue,
            };
            let v0 = shard.version();
            if v0 % 2 == 1 {
                continue; // a write section is open right now
            }
            let validate = || shard.validate(v0);
            let inner = shard.inner_ptr();
            // The dead flag only flips inside a write section, so a
            // validated observation is committed state. A committed `dead`
            // means the shard was empty when unlinked — reporting the key
            // absent is linearizable at that unlink.
            // SAFETY: `inner` points into the pinned shard; the volatile
            // read tolerates concurrent writes, and `validate()` below
            // rejects any torn observation.
            let dead = unsafe { ptr::read_volatile(ptr::addr_of!((*inner).dead)) };
            if !validate() {
                continue;
            }
            if dead {
                return Some(Ok(None));
            }
            // Raw ART descent (Algorithm 4 lines 6–7), copy-then-validate
            // at every step.
            // SAFETY: `inner` stays valid under the pin; `addr_of!` takes
            // the field address without creating a reference.
            let art = unsafe { ptr::addr_of!((*inner).art) };
            // SAFETY: raw descent copies then validates every node against
            // the shard seqlock, so freed-and-reused memory is never
            // trusted; the pin keeps the memory itself mapped.
            let leaf = match unsafe { hart_art::search_raw(art, &r, ak, &validate) } {
                RawRead::Found(leaf) => leaf,
                RawRead::NotFound => return Some(Ok(None)),
                RawRead::Retry => continue,
            };
            // Lines 9–12: leaf bit, then the value bytes. Both can change
            // only under this shard's write section, so one more validation
            // after the copy makes the whole read atomic.
            if !self.alloc.is_live(leaf, ObjClass::Leaf) {
                if validate() {
                    return Some(Ok(None));
                }
                continue;
            }
            match self.load_value(leaf) {
                Ok(v) => {
                    if validate() {
                        return Some(Ok(Some(v)));
                    }
                    // A writer may have retired and recycled the value
                    // chunk mid-copy; the bytes are untrusted. Retry.
                }
                Err(e) => {
                    if validate() {
                        return Some(Err(e)); // stable snapshot: real corruption
                    }
                }
            }
        }
        None // retry budget exhausted — take the read lock
    }

    fn load_value(&self, leaf: PmPtr) -> Result<Value> {
        let pool = self.pool();
        let pv = leaf_read_pvalue(pool, leaf);
        if pv.is_null() {
            return Err(Error::Corrupted("live leaf without value"));
        }
        let len = leaf_read_val_len(pool, leaf).min(MAX_VALUE_LEN);
        let mut buf = [0u8; MAX_VALUE_LEN];
        pool.read_bytes(pv, &mut buf[..len.max(1)]);
        Ok(Value::new(&buf[..len]).expect("len bounded"))
    }

    /// Structural self-check for tests: every leaf reachable from the DRAM
    /// structures has its persistent bit set, every committed leaf is
    /// reachable, and per-ART invariants hold.
    pub fn check_consistency(&self) -> std::result::Result<(), String> {
        let r = self.resolver();
        let mut reachable = self.dir.all_leaves(&r);
        reachable.sort_unstable();
        let n = reachable.len();
        reachable.dedup();
        if reachable.len() != n {
            return Err("duplicate leaf pointer in DRAM structures".into());
        }
        for &leaf in &reachable {
            if !self.alloc.is_live(leaf, ObjClass::Leaf) {
                return Err(format!("reachable leaf {leaf:?} has no persistent bit"));
            }
            let pv = leaf_read_pvalue(self.pool(), leaf);
            if pv.is_null() {
                return Err(format!("reachable leaf {leaf:?} has null p_value"));
            }
            let vclass = ObjClass::for_value_len(leaf_read_val_len(self.pool(), leaf));
            if !self.alloc.is_live(pv, vclass) {
                return Err(format!("value of leaf {leaf:?} has no persistent bit"));
            }
        }
        let mut committed = Vec::new();
        self.alloc
            .for_each_live(ObjClass::Leaf, |p| committed.push(p));
        committed.sort_unstable();
        if committed != reachable {
            return Err(format!(
                "committed leaves ({}) != reachable leaves ({})",
                committed.len(),
                reachable.len()
            ));
        }
        for (_, shard) in self.dir.shards_sorted() {
            let g = shard.read();
            g.art.check_invariants(&r)?;
        }
        Ok(())
    }

    // ------------------------------------------------- operation bodies
    //
    // The `PersistentIndex` methods below are thin timed wrappers (one
    // sampled clock pair per `hart_obs::SAMPLE_EVERY` calls) around these.

    /// Algorithm 1.
    fn insert_impl(&self, key: &Key, value: &Value) -> Result<()> {
        let (hk, ak) = key.split(self.cfg.hash_key_len); // line 1
        loop {
            let shard = self.dir.get_or_insert(hk); // lines 2–5
            let mut g = shard.write_observed(&self.obs);
            if g.dead {
                continue; // raced shard removal; retry against a live shard
            }
            let r = self.resolver();
            let existing = g.art.search(&r, ak).copied(); // line 6
            if let Some(leaf) = existing {
                return self.update_leaf(leaf, value); // lines 7–8
            }
            // Lines 10–11: allocate leaf + value space.
            let pool = self.pool();
            let leaf = self.alloc.alloc(ObjClass::Leaf)?;
            let vclass = ObjClass::for_value_len(value.len());
            let vptr = match self.alloc.alloc(vclass) {
                Ok(p) => p,
                Err(e) => {
                    self.alloc.abort(leaf, ObjClass::Leaf);
                    return Err(e);
                }
            };
            // Line 12: value = V; persistent(value).
            pool.write_bytes(vptr, value.as_slice());
            pool.persist(vptr, value.len().max(1));
            // Line 13: leaf.p_value = &value; persistent(leaf.p_value).
            leaf_write_pvalue(pool, leaf, vptr, value.len());
            persist_leaf_pvalue(pool, leaf);
            // Line 14: set and persist the value bit.
            self.alloc.commit(vptr, vclass);
            // Lines 15–16: key and key length.
            leaf_write_key(pool, leaf, key);
            persist_leaf_key(pool, leaf);
            // Line 17: Insert2Tree — DRAM only, no persistence needed.
            let replaced = g.art.insert(&r, ak, leaf);
            debug_assert!(replaced.is_none(), "searched above");
            if self.cfg.persist_internal_nodes {
                // Ablation: as if the touched inner node (and an eventual
                // expansion) had to be flushed, WOART-style.
                pool.charge_synthetic_persist(2);
            }
            // Line 18: set and persist the leaf bit. Publish point: the
            // leaf image and the value it points at must both be durable
            // first (pm-check asserts this; no-op otherwise).
            pool.check_durable(leaf, LEAF_SIZE);
            pool.check_durable(vptr, value.len().max(1));
            self.alloc.commit(leaf, ObjClass::Leaf);
            return Ok(());
        }
    }

    /// Algorithm 4, with the lock-free fast path of DESIGN.md
    /// §Concurrency in front when `optimistic_reads` is on.
    fn search_impl(&self, key: &Key) -> Result<Option<Value>> {
        let (hk, ak) = key.split(self.cfg.hash_key_len); // line 1
        if self.cfg.optimistic_reads {
            let mut retries = 0u64;
            let res = self.search_optimistic(hk, ak, &mut retries);
            self.obs.add(hart_obs::Event::OptimisticRetry, retries);
            if let Some(res) = res {
                return res;
            }
            self.obs.add(hart_obs::Event::LockFallback, 1);
        }
        self.search_locked(hk, ak)
    }

    /// Algorithm 3 entry point.
    fn update_impl(&self, key: &Key, value: &Value) -> Result<bool> {
        let (hk, ak) = key.split(self.cfg.hash_key_len);
        let Some(shard) = self.dir.get(hk) else {
            return Ok(false);
        };
        let g = shard.write_observed(&self.obs);
        if g.dead {
            return Ok(false);
        }
        let r = self.resolver();
        let Some(&leaf) = g.art.search(&r, ak) else {
            return Ok(false);
        };
        self.update_leaf(leaf, value)?;
        Ok(true)
    }

    /// Algorithm 5.
    fn remove_impl(&self, key: &Key) -> Result<bool> {
        let (hk, ak) = key.split(self.cfg.hash_key_len); // line 1
        let Some(shard) = self.dir.get(hk) else {
            return Ok(false); // lines 3–4
        };
        let mut g = shard.write_observed(&self.obs);
        if g.dead {
            return Ok(false);
        }
        let r = self.resolver();
        // Lines 5–9: locate and unlink from the (DRAM) tree.
        let Some(leaf) = g.art.remove(&r, ak) else {
            return Ok(false);
        };
        let pool = self.pool();
        if self.cfg.persist_internal_nodes {
            // Ablation: inner-node shrink/collapse would need flushing too.
            pool.charge_synthetic_persist(2);
        }
        let pv = leaf_read_pvalue(pool, leaf); // line 10
        let vclass = ObjClass::for_value_len(leaf_read_val_len(pool, leaf));
        // Lines 11–12, reordered (see crate docs): the value bit is reset
        // first, then the leaf is retired with its p_value nulled under
        // the leaf-class lock so the slot can never be reallocated while
        // still pointing at the value. A crash in between leaves a live
        // leaf with an unset value bit, which recovery completes as a
        // deletion.
        self.alloc.retire(pv, vclass);
        self.alloc.retire_leaf(leaf);
        // Lines 13–14: try to reclaim both chunks.
        self.alloc.recycle_containing(pv, vclass);
        self.alloc.recycle_containing(leaf, ObjClass::Leaf);
        // Lines 15–16: free the ART if it became empty.
        let now_empty = g.art.is_empty();
        drop(g);
        if now_empty {
            self.dir.remove_if_empty(hk);
        }
        Ok(true)
    }
}

/// Record a parallel-recovery failure, keeping the one at the lowest
/// live-leaf index across all workers. Pool walk order is stable, so of
/// the failures the racing workers *observe*, the earliest-in-pool one is
/// reported no matter which worker reaches the mutex first.
fn note_recovery_err(slot: &parking_lot::Mutex<Option<(usize, Error)>>, idx: usize, e: Error) {
    let mut s = slot.lock();
    if s.as_ref().is_none_or(|(prev, _)| idx < *prev) {
        *s = Some((idx, e));
    }
}

/// Split an inline key into hash key / ART key slices.
#[inline]
fn split_inline(full: &InlineKey, kh: usize) -> (&[u8], &[u8]) {
    let s = full.as_slice();
    let cut = kh.min(s.len());
    (&s[..cut], &s[cut..])
}

/// Translate full-key range bounds `[s, e]` into ART-key bounds for the
/// shard with hash key `hks`, or `None` if the shard's key region misses
/// the range entirely.
#[inline]
fn shard_ak_bounds<'a>(
    hks: &[u8],
    s: &'a [u8],
    e: &'a [u8],
    hi_buf: &'a [u8; MAX_KEY_LEN],
) -> Option<(&'a [u8], &'a [u8])> {
    // Prune shards whose key region [hks, hks⋅0xff…] misses [s, e].
    if region_before(hks, s) || region_after(hks, e) {
        return None;
    }
    let ak_lo: &[u8] = if s.len() > hks.len() && s.starts_with(hks) {
        &s[hks.len()..]
    } else {
        b""
    };
    let ak_hi: &[u8] = if e.len() > hks.len() && e.starts_with(hks) {
        &e[hks.len()..]
    } else {
        hi_buf
    };
    Some((ak_lo, ak_hi))
}

/// Every key with prefix `region` is < `start`.
#[inline]
fn region_before(region: &[u8], start: &[u8]) -> bool {
    let m = region.len().min(start.len());
    region[..m] < start[..m]
}

/// Every key with prefix `region` is > `end`.
#[inline]
fn region_after(region: &[u8], end: &[u8]) -> bool {
    let m = region.len().min(end.len());
    if region[..m] != end[..m] {
        region[..m] > end[..m]
    } else {
        region.len() > end.len()
    }
}

impl hart_obs::Observable for Hart {
    fn obs_snapshot(&self) -> hart_obs::ObsSnapshot {
        Hart::obs_snapshot(self)
    }
}

impl PersistentIndex for Hart {
    /// Algorithm 1.
    fn insert(&self, key: &Key, value: &Value) -> Result<()> {
        let t0 = self.obs.op_timer();
        let res = self.insert_impl(key, value);
        self.obs.record_op(hart_obs::Op::Insert, t0);
        res
    }

    /// Algorithm 4, with the lock-free fast path of DESIGN.md
    /// §Concurrency in front when `optimistic_reads` is on.
    fn search(&self, key: &Key) -> Result<Option<Value>> {
        let t0 = self.obs.op_timer();
        let res = self.search_impl(key);
        self.obs.record_op(hart_obs::Op::Search, t0);
        res
    }

    fn update(&self, key: &Key, value: &Value) -> Result<bool> {
        let t0 = self.obs.op_timer();
        let res = self.update_impl(key, value);
        self.obs.record_op(hart_obs::Op::Update, t0);
        res
    }

    /// Algorithm 5.
    fn remove(&self, key: &Key) -> Result<bool> {
        let t0 = self.obs.op_timer();
        let res = self.remove_impl(key);
        self.obs.record_op(hart_obs::Op::Remove, t0);
        res
    }

    fn len(&self) -> usize {
        self.alloc.live_count(ObjClass::Leaf) as usize
    }

    fn memory_stats(&self) -> MemoryStats {
        MemoryStats {
            dram_bytes: self.dir.memory_bytes() + std::mem::size_of::<Self>(),
            pm_bytes: self.pool().stats().snapshot().bytes_in_use as usize,
        }
    }

    fn range(&self, start: &Key, end: &Key) -> Result<Vec<(Key, Value)>> {
        self.ordered_range(start, end)
    }

    fn scan(&self, start: &Key, end: &Key, limit: usize) -> Result<Vec<(Key, Value)>> {
        let t0 = self.obs.op_timer();
        let res = self.ordered_scan(start, end, limit);
        match &res {
            Ok(rows) => {
                let truncated = limit > 0 && rows.len() == limit;
                self.obs.record_scan(rows.len() as u64, truncated, t0);
            }
            Err(_) => self.obs.record_scan(0, false, t0),
        }
        res
    }

    fn name(&self) -> &'static str {
        "HART"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hart_pm::PoolConfig;

    fn fresh() -> Hart {
        Hart::create(
            Arc::new(PmemPool::new(PoolConfig::test_small())),
            HartConfig::default(),
        )
        .unwrap()
    }

    fn crashy() -> Hart {
        Hart::create(
            Arc::new(PmemPool::new(PoolConfig::test_crash())),
            HartConfig::default(),
        )
        .unwrap()
    }

    fn k(s: &str) -> Key {
        Key::from_str(s).unwrap()
    }

    fn v(n: u64) -> Value {
        Value::from_u64(n)
    }

    #[test]
    fn insert_search_roundtrip() {
        let h = fresh();
        h.insert(&k("AABF"), &v(42)).unwrap();
        assert_eq!(h.search(&k("AABF")).unwrap().unwrap().as_u64(), 42);
        assert_eq!(h.search(&k("AABX")).unwrap(), None);
        assert_eq!(h.search(&k("ZZ")).unwrap(), None);
        assert_eq!(h.len(), 1);
        h.check_consistency().unwrap();
    }

    #[test]
    fn insert_is_upsert() {
        let h = fresh();
        h.insert(&k("key"), &v(1)).unwrap();
        h.insert(&k("key"), &v(2)).unwrap();
        assert_eq!(h.len(), 1);
        assert_eq!(h.search(&k("key")).unwrap().unwrap().as_u64(), 2);
        h.check_consistency().unwrap();
    }

    #[test]
    fn short_keys_below_hash_prefix() {
        let h = fresh();
        h.insert(&k("A"), &v(1)).unwrap();
        h.insert(&k("AB"), &v(2)).unwrap();
        h.insert(&k("ABC"), &v(3)).unwrap();
        assert_eq!(h.search(&k("A")).unwrap().unwrap().as_u64(), 1);
        assert_eq!(h.search(&k("AB")).unwrap().unwrap().as_u64(), 2);
        assert_eq!(h.search(&k("ABC")).unwrap().unwrap().as_u64(), 3);
        assert_eq!(h.len(), 3);
        h.check_consistency().unwrap();
    }

    #[test]
    fn update_existing_and_missing() {
        let h = fresh();
        h.insert(&k("alpha"), &v(1)).unwrap();
        assert!(h.update(&k("alpha"), &v(9)).unwrap());
        assert_eq!(h.search(&k("alpha")).unwrap().unwrap().as_u64(), 9);
        assert!(!h.update(&k("beta"), &v(5)).unwrap());
        assert_eq!(h.search(&k("beta")).unwrap(), None);
        h.check_consistency().unwrap();
    }

    #[test]
    fn update_switches_value_class() {
        let h = fresh();
        h.insert(&k("key"), &Value::new(b"short").unwrap()).unwrap();
        assert!(h
            .update(&k("key"), &Value::new(b"a-sixteen-byte-v").unwrap())
            .unwrap());
        assert_eq!(
            h.search(&k("key")).unwrap().unwrap().as_slice(),
            b"a-sixteen-byte-v"
        );
        assert!(h.update(&k("key"), &Value::new(b"tiny").unwrap()).unwrap());
        assert_eq!(h.search(&k("key")).unwrap().unwrap().as_slice(), b"tiny");
        h.check_consistency().unwrap();
        let s = h.alloc_stats();
        assert_eq!(
            s.live,
            [1, 1, 0],
            "one leaf, one 8-byte value, no 16-byte leftovers"
        );
    }

    #[test]
    fn remove_roundtrip() {
        let h = fresh();
        h.insert(&k("AAx"), &v(1)).unwrap();
        h.insert(&k("AAy"), &v(2)).unwrap();
        assert!(h.remove(&k("AAx")).unwrap());
        assert!(!h.remove(&k("AAx")).unwrap());
        assert_eq!(h.search(&k("AAx")).unwrap(), None);
        assert_eq!(h.search(&k("AAy")).unwrap().unwrap().as_u64(), 2);
        assert_eq!(h.len(), 1);
        h.check_consistency().unwrap();
    }

    #[test]
    fn empty_art_is_freed() {
        let h = fresh();
        h.insert(&k("QQonly"), &v(7)).unwrap();
        assert_eq!(h.art_count(), 1);
        assert!(h.remove(&k("QQonly")).unwrap());
        assert_eq!(h.art_count(), 0, "Algorithm 5 lines 15-16: empty ART freed");
        // Reinsertion after removal works.
        h.insert(&k("QQonly"), &v(8)).unwrap();
        assert_eq!(h.search(&k("QQonly")).unwrap().unwrap().as_u64(), 8);
    }

    #[test]
    fn removing_everything_reclaims_pm() {
        let h = fresh();
        for i in 0..500 {
            h.insert(&k(&format!("K{i:04}")), &v(i)).unwrap();
        }
        let mid = h.alloc_stats();
        assert!(mid.chunks[0] > 0);
        for i in 0..500 {
            assert!(h.remove(&k(&format!("K{i:04}"))).unwrap());
        }
        let end = h.alloc_stats();
        assert_eq!(end.live, [0, 0, 0]);
        assert_eq!(end.chunks, [0, 0, 0], "empty chunks must all be recycled");
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn thousands_of_records() {
        let h = fresh();
        for i in 0..5000u64 {
            h.insert(&Key::from_u64_base62(i * 37 % 5000, 8), &v(i))
                .unwrap();
        }
        assert_eq!(h.len(), 5000);
        h.check_consistency().unwrap();
        for i in 0..5000u64 {
            let key = Key::from_u64_base62(i, 8);
            assert!(h.search(&key).unwrap().is_some(), "missing {key}");
        }
    }

    #[test]
    fn multi_get_matches_search() {
        let h = fresh();
        h.insert(&k("AAa"), &v(1)).unwrap();
        h.insert(&k("AAb"), &v(2)).unwrap();
        let keys = [k("AAa"), k("zzz"), k("AAb")];
        let got = h.multi_get(&keys).unwrap();
        assert_eq!(got[0].unwrap().as_u64(), 1);
        assert_eq!(got[1], None);
        assert_eq!(got[2].unwrap().as_u64(), 2);
    }

    #[test]
    fn ordered_range_spans_shards() {
        let h = fresh();
        // Keys across multiple hash prefixes.
        for key in ["AAa", "AAb", "ABa", "ACz", "BAa", "Az"] {
            h.insert(&k(key), &v(key.len() as u64)).unwrap();
        }
        let got: Vec<String> = h
            .range(&k("AAb"), &k("B"))
            .unwrap()
            .into_iter()
            .map(|(key, _)| key.to_string())
            .collect();
        assert_eq!(got, vec!["AAb", "ABa", "ACz", "Az"]);
        // Full range, ordered.
        let all: Vec<String> = h
            .range(&k("A"), &k("zzzz"))
            .unwrap()
            .into_iter()
            .map(|(key, _)| key.to_string())
            .collect();
        assert_eq!(all, vec!["AAa", "AAb", "ABa", "ACz", "Az", "BAa"]);
    }

    #[test]
    fn recover_rebuilds_everything() {
        let pool = Arc::new(PmemPool::new(PoolConfig::test_small()));
        let h = Hart::create(Arc::clone(&pool), HartConfig::default()).unwrap();
        for i in 0..1000u64 {
            h.insert(&Key::from_u64_base62(i, 6), &v(i)).unwrap();
        }
        h.remove(&Key::from_u64_base62(500, 6)).unwrap();
        let arts_before = h.art_count();
        drop(h);

        let r = Hart::recover(pool, HartConfig::default()).unwrap();
        assert_eq!(r.len(), 999);
        assert_eq!(r.art_count(), arts_before);
        r.check_consistency().unwrap();
        for i in 0..1000u64 {
            let got = r.search(&Key::from_u64_base62(i, 6)).unwrap();
            if i == 500 {
                assert_eq!(got, None);
            } else {
                assert_eq!(got.unwrap().as_u64(), i);
            }
        }
    }

    #[test]
    fn crash_before_leaf_bit_loses_only_that_insert() {
        let h = crashy();
        let pool = Arc::clone(h.pm_pool());
        h.insert(&k("AAkeep"), &v(1)).unwrap();
        // Start an insert and crash it between value commit and leaf commit
        // by replicating Algorithm 1 up to line 16 manually.
        let leaf = h.alloc.alloc(ObjClass::Leaf).unwrap();
        let vptr = h.alloc.alloc(ObjClass::Value8).unwrap();
        pool.write(vptr, &99u64);
        pool.persist_val::<u64>(vptr);
        leaf_write_pvalue(&pool, leaf, vptr, 8);
        persist_leaf_pvalue(&pool, leaf);
        h.alloc.commit(vptr, ObjClass::Value8);
        leaf_write_key(&pool, leaf, &k("AAlost"));
        persist_leaf_key(&pool, leaf);
        // crash before line 18 (leaf bit)
        drop(h);
        pool.simulate_crash();

        let r = Hart::recover(Arc::clone(&pool), HartConfig::default()).unwrap();
        assert_eq!(r.len(), 1, "only the committed record survives");
        assert_eq!(r.search(&k("AAkeep")).unwrap().unwrap().as_u64(), 1);
        assert_eq!(r.search(&k("AAlost")).unwrap(), None);
        // No persistent leak: the orphaned value was scrubbed.
        let s = r.alloc_stats();
        assert_eq!(s.live, [1, 1, 0]);
        r.check_consistency().unwrap();
    }

    #[test]
    fn crash_during_update_recovers_consistently() {
        // Crash right after the update log records all three pointers and
        // the new value bit is set, but before the leaf pointer swings:
        // recovery must resume from line 7 and complete the update.
        let h = crashy();
        let pool = Arc::clone(h.pm_pool());
        h.insert(&k("AAkey"), &v(1)).unwrap();
        let key = k("AAkey");
        let (hk, ak) = key.split(2);
        let shard = h.dir.get(hk).unwrap();
        let leaf = *shard.read().art.search(&h.resolver(), ak).unwrap();
        let old_v = leaf_read_pvalue(&pool, leaf);

        let ulog = h.alloc.acquire_ulog();
        ulog.record_leaf(leaf);
        ulog.record_old(old_v);
        let new_v = h.alloc.alloc(ObjClass::Value8).unwrap();
        pool.write(new_v, &2u64);
        pool.persist_val::<u64>(new_v);
        ulog.record_new(new_v, 8, ObjClass::Value8, ObjClass::Value8);
        h.alloc.commit(new_v, ObjClass::Value8);
        std::mem::forget(ulog); // leave the log record in PM
        drop(h);
        pool.simulate_crash();

        let r = Hart::recover(Arc::clone(&pool), HartConfig::default()).unwrap();
        assert_eq!(
            r.search(&k("AAkey")).unwrap().unwrap().as_u64(),
            2,
            "recovery must roll the update forward"
        );
        let s = r.alloc_stats();
        assert_eq!(s.live, [1, 1, 0], "old value must be reclaimed");
        r.check_consistency().unwrap();
    }

    #[test]
    fn crash_early_update_rolls_back() {
        // Crash after recording PLeaf/POldV but before PNewV: the old value
        // stays current (paper: "the failure recovery process simply resets
        // the update log").
        let h = crashy();
        let pool = Arc::clone(h.pm_pool());
        h.insert(&k("AAkey"), &v(7)).unwrap();
        let key = k("AAkey");
        let (hk, ak) = key.split(2);
        let shard = h.dir.get(hk).unwrap();
        let leaf = *shard.read().art.search(&h.resolver(), ak).unwrap();
        let old_v = leaf_read_pvalue(&pool, leaf);
        let ulog = h.alloc.acquire_ulog();
        ulog.record_leaf(leaf);
        ulog.record_old(old_v);
        std::mem::forget(ulog);
        drop(h);
        pool.simulate_crash();

        let r = Hart::recover(pool, HartConfig::default()).unwrap();
        assert_eq!(r.search(&k("AAkey")).unwrap().unwrap().as_u64(), 7);
        r.check_consistency().unwrap();
    }

    #[test]
    fn concurrent_writers_on_distinct_arts() {
        let h = Arc::new(fresh());
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                // Distinct 2-byte prefixes → distinct ARTs → fully parallel.
                let prefix = format!("{}{}", (b'A' + t) as char, (b'a' + t) as char);
                for i in 0..500u64 {
                    let key = Key::from_str(&format!("{prefix}{i:04}")).unwrap();
                    h.insert(&key, &Value::from_u64(i)).unwrap();
                }
            }));
        }
        for hd in handles {
            hd.join().unwrap();
        }
        assert_eq!(h.len(), 4000);
        assert_eq!(h.art_count(), 8);
        h.check_consistency().unwrap();
    }

    #[test]
    fn concurrent_mixed_ops_same_art() {
        let h = Arc::new(fresh());
        for i in 0..200u64 {
            h.insert(&Key::from_str(&format!("XX{i:04}")).unwrap(), &v(i))
                .unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let key = Key::from_str(&format!("XX{i:04}")).unwrap();
                    match (i + t) % 3 {
                        0 => {
                            let _ = h.search(&key).unwrap();
                        }
                        1 => {
                            let _ = h.update(&key, &Value::from_u64(i * t)).unwrap();
                        }
                        _ => {
                            h.insert(&key, &Value::from_u64(i)).unwrap();
                        }
                    }
                }
            }));
        }
        for hd in handles {
            hd.join().unwrap();
        }
        assert_eq!(h.len(), 200);
        h.check_consistency().unwrap();
    }

    #[test]
    fn memory_stats_split_dram_pm() {
        let h = fresh();
        for i in 0..1000u64 {
            h.insert(&Key::from_u64_base62(i, 8), &v(i)).unwrap();
        }
        let m = h.memory_stats();
        assert!(m.dram_bytes > 0, "hash table + ART nodes live in DRAM");
        assert!(m.pm_bytes > 1000 * 40, "leaves + values live in PM");
    }

    #[test]
    fn zero_hash_key_len_degenerates_to_single_art() {
        let h = Hart::create(
            Arc::new(PmemPool::new(PoolConfig::test_small())),
            HartConfig::with_hash_key_len(0),
        )
        .unwrap();
        for key in ["alpha", "beta", "gamma"] {
            h.insert(&k(key), &v(key.len() as u64)).unwrap();
        }
        assert_eq!(h.art_count(), 1);
        assert_eq!(h.search(&k("beta")).unwrap().unwrap().as_u64(), 4);
        h.check_consistency().unwrap();
    }

    #[test]
    fn values_of_both_classes() {
        let h = fresh();
        h.insert(&k("short"), &Value::new(b"12345678").unwrap())
            .unwrap();
        h.insert(&k("long"), &Value::new(b"0123456789abcdef").unwrap())
            .unwrap();
        h.insert(&k("empty"), &Value::new(b"").unwrap()).unwrap();
        assert_eq!(
            h.search(&k("short")).unwrap().unwrap().as_slice(),
            b"12345678"
        );
        assert_eq!(
            h.search(&k("long")).unwrap().unwrap().as_slice(),
            b"0123456789abcdef"
        );
        assert_eq!(h.search(&k("empty")).unwrap().unwrap().as_slice(), b"");
        let s = h.alloc_stats();
        assert_eq!(s.live, [3, 2, 1]);
    }
}

#[cfg(test)]
mod parallel_recovery_tests {
    use super::*;
    use hart_pm::PoolConfig;

    #[test]
    fn parallel_recovery_equals_sequential() {
        let pool = Arc::new(PmemPool::new(PoolConfig {
            size_bytes: 64 << 20,
            ..PoolConfig::test_small()
        }));
        {
            let h = Hart::create(Arc::clone(&pool), HartConfig::default()).unwrap();
            for i in 0..20_000u64 {
                h.insert(&Key::from_u64_base62(i * 7, 8), &Value::from_u64(i))
                    .unwrap();
            }
            for i in 0..20_000u64 {
                if i % 9 == 0 {
                    h.remove(&Key::from_u64_base62(i * 7, 8)).unwrap();
                }
            }
        }
        let par = Hart::recover_parallel(Arc::clone(&pool), HartConfig::default(), 4).unwrap();
        par.check_consistency().unwrap();
        assert_eq!(par.len(), 20_000 - 20_000usize.div_ceil(9));
        for i in (0..20_000u64).step_by(37) {
            let got = par.search(&Key::from_u64_base62(i * 7, 8)).unwrap();
            if i % 9 == 0 {
                assert_eq!(got, None, "key {i}");
            } else {
                assert_eq!(got.unwrap().as_u64(), i, "key {i}");
            }
        }
    }

    /// The error-selection policy itself, order-independent: whatever
    /// order racing workers report failures in, the lowest leaf index
    /// wins. This is the deterministic-diagnostics fix — previously
    /// `get_or_insert` kept whichever error locked the mutex first.
    #[test]
    fn recovery_err_selection_keeps_lowest_index() {
        let reports = [
            (
                4_000usize,
                Error::Corrupted("duplicate live key in leaf chunks"),
            ),
            (2, Error::Corrupted("live leaf with empty key")),
            (9, Error::Corrupted("duplicate live key in leaf chunks")),
            (2_000, Error::Corrupted("bad key in leaf")),
        ];
        // Feed every permutation-ish rotation; the winner never changes.
        for rot in 0..reports.len() {
            let slot = parking_lot::Mutex::new(None);
            for i in 0..reports.len() {
                let (idx, e) = reports[(i + rot) % reports.len()].clone();
                super::note_recovery_err(&slot, idx, e);
            }
            let (idx, err) = slot.into_inner().unwrap();
            assert_eq!(idx, 2);
            assert!(
                matches!(err, Error::Corrupted("live leaf with empty key")),
                "rotation {rot} kept {err:?}"
            );
        }
    }

    /// A corrupted leaf must fail recovery in every mode — and the
    /// parallel workers must stop promptly on the shared abort flag
    /// instead of completing a full rebuild whose result is discarded.
    #[test]
    fn parallel_recovery_aborts_on_corruption() {
        let records = 8_000u64;
        // PM reads are only metered when PM read latency exceeds DRAM, and
        // the read counter is how we observe how far the rebuild got.
        let build = |corrupt: bool| {
            let pool = Arc::new(PmemPool::new(PoolConfig {
                size_bytes: 64 << 20,
                latency: hart_pm::LatencyConfig::c300_300(),
                time_mode: hart_pm::TimeMode::Inject,
                ..PoolConfig::test_small()
            }));
            {
                let h = Hart::create(Arc::clone(&pool), HartConfig::default()).unwrap();
                // A committed leaf owning a committed value but with no key
                // bytes ever written.
                let plant_bad_leaf = || {
                    let a = h.epallocator();
                    let val = a.alloc(ObjClass::Value8).unwrap();
                    a.commit(val, ObjClass::Value8);
                    let leaf = a.alloc(ObjClass::Leaf).unwrap();
                    leaf_write_pvalue(pool.as_ref(), leaf, val, 8);
                    persist_leaf_pvalue(pool.as_ref(), leaf);
                    a.commit(leaf, ObjClass::Leaf);
                };
                // A committed leaf carrying a key some earlier leaf already
                // owns: reattachment reports "duplicate live key".
                let plant_dup_leaf = |key: &Key| {
                    let a = h.epallocator();
                    let val = a.alloc(ObjClass::Value8).unwrap();
                    a.commit(val, ObjClass::Value8);
                    let leaf = a.alloc(ObjClass::Leaf).unwrap();
                    leaf_write_key(pool.as_ref(), leaf, key);
                    persist_leaf_key(pool.as_ref(), leaf);
                    leaf_write_pvalue(pool.as_ref(), leaf, val, 8);
                    persist_leaf_pvalue(pool.as_ref(), leaf);
                    a.commit(leaf, ObjClass::Leaf);
                };
                if corrupt {
                    // Four consecutive bad leaves — one per 4-thread stripe
                    // residue — at BOTH ends of the allocation sequence:
                    // whichever end of the chunk list `for_each_live` walks
                    // first, every worker trips over a bad leaf within its
                    // first few stripe elements, independent of how a
                    // single-core scheduler orders the worker threads.
                    for _ in 0..4 {
                        plant_bad_leaf();
                    }
                }
                for i in 0..records / 2 {
                    h.insert(&Key::from_u64_base62(i, 8), &Value::from_u64(i))
                        .unwrap();
                }
                if corrupt {
                    // A second corruption *type* mid-pool: duplicates of a
                    // preloaded key. Whichever way the pool is walked these
                    // sit at higher leaf indices than one of the empty-key
                    // clusters, so lowest-index error selection must always
                    // report the empty-key corruption, never this one.
                    for _ in 0..4 {
                        plant_dup_leaf(&Key::from_u64_base62(0, 8));
                    }
                }
                for i in records / 2..records {
                    h.insert(&Key::from_u64_base62(i, 8), &Value::from_u64(i))
                        .unwrap();
                }
                if corrupt {
                    for _ in 0..4 {
                        plant_bad_leaf();
                    }
                }
            }
            pool
        };

        let clean = build(false);
        let before = clean.stats().snapshot().read_lines;
        Hart::recover_parallel(Arc::clone(&clean), HartConfig::default(), 4).unwrap();
        let full_reads = clean.stats().snapshot().read_lines - before;

        let bad = build(true);
        // `EPallocator::open` scrubs every leaf before any worker starts;
        // meter it alone so the assertion sees only reattachment reads.
        let before = bad.stats().snapshot().read_lines;
        drop(EPallocator::open(Arc::clone(&bad)).unwrap());
        let open_reads = bad.stats().snapshot().read_lines - before;

        let before = bad.stats().snapshot().read_lines;
        let err = match Hart::recover_parallel(Arc::clone(&bad), HartConfig::default(), 4) {
            Ok(_) => panic!("corrupted pool recovered"),
            Err(e) => e,
        };
        // Lowest-index error selection: the empty-key cluster at the walk
        // front must always be the reported corruption — never the
        // duplicate-key cluster mid-pool, regardless of which worker wins
        // the race to the error mutex.
        assert!(
            matches!(err, Error::Corrupted("live leaf with empty key")),
            "expected the lowest-index corruption, got {err:?}"
        );
        let aborted_reattach = (bad.stats().snapshot().read_lines - before) - open_reads;
        let full_reattach = full_reads.saturating_sub(open_reads);
        assert!(
            aborted_reattach < full_reattach / 4,
            "workers kept rebuilding after the first corrupted leaf: \
             {aborted_reattach} reattachment PM line reads vs {full_reattach} for a full rebuild"
        );

        // The sequential path reports the same corruption.
        let err = match Hart::recover(bad, HartConfig::default()) {
            Ok(_) => panic!("corrupted pool recovered"),
            Err(e) => e,
        };
        assert!(
            matches!(err, Error::Corrupted("live leaf with empty key")),
            "{err:?}"
        );
    }

    #[test]
    fn parallel_recovery_after_crash() {
        let pool = Arc::new(PmemPool::new(PoolConfig {
            size_bytes: 32 << 20,
            crash_sim: true,
            ..PoolConfig::test_small()
        }));
        {
            let h = Hart::create(Arc::clone(&pool), HartConfig::default()).unwrap();
            for i in 0..2000u64 {
                h.insert(&Key::from_u64_base62(i, 8), &Value::from_u64(i))
                    .unwrap();
            }
            pool.arm_persist_fuse(3); // die mid-insert
            h.insert(&Key::from_u64_base62(9999, 8), &Value::from_u64(1))
                .unwrap();
        }
        pool.simulate_crash();
        let par = Hart::recover_parallel(Arc::clone(&pool), HartConfig::default(), 3).unwrap();
        par.check_consistency().unwrap();
        assert!(par.len() == 2000 || par.len() == 2001);
        let s = par.alloc_stats();
        assert_eq!(s.live[1] + s.live[2], s.live[0], "no leaks");
    }
}
