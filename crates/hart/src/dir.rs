//! The DRAM hash directory mapping hash keys to ARTs (Fig. 1).
//!
//! A bucket array with chaining, grown online. Entries are created lazily
//! on first insert of a hash key (Algorithm 1 lines 3–5) and removed when
//! their ART becomes empty (Algorithm 5 lines 15–16). The directory itself
//! is read-mostly: after warm-up, pessimistic lookups take one bucket
//! read-lock, and the optimistic read path (DESIGN.md §Concurrency) takes
//! none at all.
//!
//! # Seqlock versioning
//!
//! Both levels of the structure carry a version counter for lock-free
//! readers:
//!
//! * each [`Bucket`] — bumped to odd before its entry table is swapped and
//!   back to even after, so a reader can detect a torn copy of the table's
//!   fat pointer;
//! * each [`Shard`] — bumped around *every* write-locked section (the
//!   write guard does it automatically), so a reader can detect any
//!   concurrent mutation of the shard's ART or of the PM records it owns.
//!
//! Bucket entry tables are immutable once published (`Box<[Entry]>`
//! replaced wholesale, never edited in place) and retired through
//! [`hart_ebr`], as are unlinked shards — the two facts that let readers
//! chase raw pointers into them while pinned.
//!
//! # Online resizing (DESIGN.md §Resizing)
//!
//! The bucket array is no longer fixed: the directory tracks its live
//! entry count and, when the load factor exceeds `resize_threshold`
//! entries per bucket (or one chain grows pathological), doubles the
//! bucket array. Growth is *incremental and cooperative*, Dash-style:
//!
//! * a grow installs a fresh, empty [`Table`] as `current` and demotes the
//!   full one to `old`; no entries move at grow time;
//! * every subsequent directory *write* drains a stride of `old` buckets
//!   into `current` (plus, always, the one bucket its own hash key maps
//!   to), each under that bucket's write lock — entries are published in
//!   the new table *before* they disappear from the old one;
//! * lookups probe `old` first, then `current` (loading `current` before
//!   `old`); the publish order above makes a miss in both tables a
//!   committed absence *provided `current` did not change during the
//!   probe* — a grow landing mid-probe can demote the probed current
//!   table and drain the key's bucket into a table the probe never
//!   visits, so every miss revalidates the `current` pointer and retries
//!   the whole two-table probe if it moved (the EBR pin / graveyard keeps
//!   table addresses stable, making pointer equality an exact test);
//! * when the last old bucket drains, `old` is retired: through
//!   [`hart_ebr`] when optimistic readers may hold raw pointers into it,
//!   or onto a graveyard freed at directory drop in the locked ablation
//!   (pessimistic readers hold no epoch pin; the geometric doubling bounds
//!   graveyard memory by one current-table's worth of bucket headers).
//!
//! Hash keys are mixed with a per-directory random seed so an adversarial
//! key set cannot be precomputed to chain into a single bucket.

use crate::resolver::PmResolver;
use hart_art::Art;
use hart_kv::InlineKey;
use hart_pm::PmPtr;
use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::mem::{size_of, MaybeUninit};
use std::ops::{Deref, DerefMut};
use std::ptr;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One ART plus its liveness flag, guarded by the per-ART reader-writer
/// lock of §III-A.3.
pub(crate) struct ShardInner {
    pub art: Art<PmPtr>,
    /// Set under the write lock when the shard is unlinked from the
    /// directory; writers that raced `get_or_insert` against removal check
    /// it and retry, so no insert can land in an orphaned shard.
    pub dead: bool,
}

/// A directory shard: the per-ART lock of §III-A.3 plus the seqlock epoch
/// counter of the optimistic read path.
pub(crate) struct Shard {
    /// Seqlock version: odd while a write section is open, even when
    /// quiescent. Every acquisition of the write lock is a write section.
    version: AtomicU64,
    inner: RwLock<ShardInner>,
}

impl Shard {
    fn new(art: Art<PmPtr>) -> Shard {
        Shard {
            version: AtomicU64::new(0),
            inner: RwLock::new_ranked(
                ShardInner { art, dead: false },
                parking_lot::rank::SHARD,
                false,
                "Shard.inner",
            ),
        }
    }

    /// Shared (pessimistic) access; does not touch the version.
    pub fn read(&self) -> RwLockReadGuard<'_, ShardInner> {
        self.inner.read()
    }

    /// Exclusive access as a *write section*: the shard version is bumped
    /// odd on acquire and even on release, so optimistic readers retry
    /// around it. Used for every mutation — including value updates that
    /// never touch the ART, since those still change what a concurrent
    /// reader would return for a key.
    pub fn write(&self) -> ShardWriteGuard<'_> {
        let guard = self.inner.write();
        self.open_write_section(guard)
    }

    /// [`Shard::write`] with contention observability: an uncontended
    /// `try_write` costs nothing extra, and only actual blocking is timed
    /// (one clock pair per contended acquisition) and counted through
    /// `rec` — so the disabled-recorder path adds a single branch.
    pub fn write_observed(&self, rec: &hart_obs::Recorder) -> ShardWriteGuard<'_> {
        if let Some(guard) = self.inner.try_write() {
            return self.open_write_section(guard);
        }
        let t0 = rec.now();
        let guard = self.write();
        rec.record_shard_wait(t0);
        guard
    }

    fn open_write_section<'a>(
        &'a self,
        guard: RwLockWriteGuard<'a, ShardInner>,
    ) -> ShardWriteGuard<'a> {
        let v = self.version.fetch_add(1, Ordering::AcqRel);
        debug_assert!(
            v.is_multiple_of(2),
            "write section already open under the write lock"
        );
        ShardWriteGuard { shard: self, guard }
    }

    /// Current version, `Acquire`-loaded. Even means quiescent.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// True when the version still equals `v0` (an even observation),
    /// with an `Acquire` fence so the caller's preceding data reads cannot
    /// be reordered past the check.
    pub fn validate(&self, v0: u64) -> bool {
        fence(Ordering::Acquire);
        self.version.load(Ordering::Relaxed) == v0
    }

    /// Raw pointer to the lock-protected interior, for validated
    /// optimistic traversal. Dereference only under an [`hart_ebr`] pin and
    /// the copy-validate discipline of `hart_art::search_raw`.
    pub fn inner_ptr(&self) -> *const ShardInner {
        self.inner.data_ptr()
    }
}

/// Write guard that closes the shard's write section on drop.
pub(crate) struct ShardWriteGuard<'a> {
    shard: &'a Shard,
    guard: RwLockWriteGuard<'a, ShardInner>,
}

impl Deref for ShardWriteGuard<'_> {
    type Target = ShardInner;
    fn deref(&self) -> &ShardInner {
        &self.guard
    }
}

impl DerefMut for ShardWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut ShardInner {
        &mut self.guard
    }
}

impl Drop for ShardWriteGuard<'_> {
    fn drop(&mut self) {
        // Close the section (odd -> even) before the lock is released by
        // the inner guard's drop.
        let v = self.shard.version.fetch_add(1, Ordering::AcqRel);
        debug_assert!(v % 2 == 1, "write section must be open");
    }
}

type Entry = (InlineKey, Arc<Shard>);

/// A hash bucket: a versioned, wholesale-replaced entry table.
struct Bucket {
    /// Seqlock version guarding `entries` swaps (odd = swap in progress).
    version: AtomicU64,
    /// The published table. Never mutated in place; writers install a new
    /// boxed slice and retire the old one through the epoch reclaimer.
    entries: RwLock<Box<[Entry]>>,
    /// Set (under the write lock) once this bucket has been drained into
    /// the next table. A migrated bucket never accepts entries again.
    migrated: AtomicBool,
}

impl Bucket {
    fn new() -> Bucket {
        Bucket {
            version: AtomicU64::new(0),
            entries: RwLock::new_ranked(
                Box::new([]) as Box<[Entry]>,
                parking_lot::rank::BUCKET_ENTRIES,
                true,
                "Bucket.entries",
            ),
            migrated: AtomicBool::new(false),
        }
    }

    /// Replace the entry table under the (already held) write lock,
    /// retiring the old table so pinned readers can finish scanning it.
    fn install(&self, guard: &mut RwLockWriteGuard<'_, Box<[Entry]>>, next: Box<[Entry]>) {
        let v = self.version.fetch_add(1, Ordering::AcqRel);
        debug_assert!(v.is_multiple_of(2), "bucket swap already in progress");
        let old = std::mem::replace(&mut **guard, next);
        self.version.fetch_add(1, Ordering::AcqRel);
        hart_ebr::defer_drop(old);
    }
}

/// One generation of the bucket array. `current` points at the newest
/// table; during a migration `old` points at the previous one.
struct Table {
    buckets: Box<[Bucket]>,
    mask: u64,
    /// Next bucket index the cooperative stride walker will claim. Only
    /// meaningful while this table is the `old` (draining) one.
    migrate_next: AtomicUsize,
    /// Buckets whose `migrated` flag has been set — the O(1) "fully
    /// drained" test for retiring this table. Counts both stride-walker
    /// and targeted drains, so a table drained entirely by targeted
    /// drains (walker never ran) is still retirable.
    migrated_count: AtomicUsize,
}

impl Table {
    fn new(buckets: usize) -> Table {
        debug_assert!(buckets.is_power_of_two());
        Table {
            buckets: (0..buckets).map(|_| Bucket::new()).collect(),
            mask: buckets as u64 - 1,
            migrate_next: AtomicUsize::new(0),
            migrated_count: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn bucket(&self, h: u64) -> &Bucket {
        &self.buckets[(h & self.mask) as usize]
    }
}

/// Result of a lock-free bucket probe.
pub(crate) enum RawBucketRead {
    /// The hash key maps to this shard. Valid while the caller's EBR pin is
    /// held.
    Found(*const Shard),
    /// The hash key had no shard at a committed version.
    Absent,
    /// A concurrent swap interfered; retry or fall back to `get`.
    Retry,
}

/// How many old buckets each directory write drains beyond its own.
const MIGRATE_STRIDE: usize = 16;

/// A single chain longer than this triggers a grow even below the global
/// load-factor threshold (guarded against degenerate repeat-growth by the
/// `buckets < 4 * entries` condition in `maybe_grow`).
const CHAIN_LIMIT: usize = 16;

/// State serialized by the resize lock: grow/finish decisions plus the
/// graveyard of retired tables for the no-EBR (locked reads) ablation.
#[derive(Default)]
struct ResizeState {
    /// Boxed (not inlined) on purpose: pessimistic readers may still hold
    /// references into a retired table, so its address must stay stable.
    #[allow(clippy::vec_box)]
    graveyard: Vec<Box<Table>>,
}

pub(crate) struct Directory {
    /// Newest table — all directory inserts land here.
    current: AtomicPtr<Table>,
    /// Previous table, being drained; null when no migration is running.
    old: AtomicPtr<Table>,
    /// Live `(hash key, shard)` entries across both tables. Exact: bumped
    /// once per insert, once per unlink; migration moves, never counts.
    entries: AtomicUsize,
    /// Completed grow operations (observability / tests).
    grows: AtomicU64,
    /// Grow when `entries > resize_threshold * buckets`; `0` = fixed size
    /// (the pre-resize behavior, and the ablation baseline).
    resize_threshold: usize,
    /// Per-directory hash seed: adversarial hash-key sets cannot chain
    /// into one bucket without knowing it.
    seed: u64,
    /// Serializes grow/finish transitions and owns the table graveyard.
    resize: Mutex<ResizeState>,
    /// Route ART node reclamation in the shards through [`hart_ebr`] —
    /// set when optimistic readers are enabled, off for the pure-locked
    /// ablation so the kill-switch reproduces the original allocator
    /// behavior exactly. Also selects EBR vs graveyard retirement for
    /// drained tables (see the module docs).
    defer_reclaim: bool,
    /// Observability sink for grow/drain/finish events and lock-wait
    /// timing; an inert [`hart_obs::Recorder`] until [`Directory::set_recorder`].
    obs: hart_obs::Recorder,
    /// Generation of the shard *set* (not shard contents): bumped once per
    /// shard publish and once per unlink, never by migration (which moves
    /// existing entries between tables). Stamps [`Directory::scan_cache`].
    scan_gen: AtomicU64,
    /// `(generation, sorted shard list)` for ordered scans — rebuilt
    /// lazily when `scan_gen` moved, so steady-state scans skip the
    /// full-directory walk and sort entirely.
    scan_cache: RwLock<(u64, Arc<ShardList>)>,
}

/// Sorted `(hash key, shard)` snapshot held by the scan cache.
pub(crate) type ShardList = Vec<(InlineKey, Arc<Shard>)>;

/// Keeps the table pointers a directory operation loaded dereferenceable.
///
/// * `Pin`: an EBR pin — retired tables outlive it.
/// * `Lock`: the resize lock — tables are only retired under it, so
///   holding it serializes against retirement. Fallback when all EBR
///   reader slots are taken.
/// * `None`: locked-reads mode — retired tables go to the graveyard and
///   live until the directory drops.
enum DirGuard<'a> {
    Pin(#[allow(dead_code)] hart_ebr::Guard),
    Lock(#[allow(dead_code)] MutexGuard<'a, ResizeState>),
    None,
}

impl DirGuard<'_> {
    /// Whether the holder may take the resize lock (grow, finish); taking
    /// it twice would deadlock.
    fn may_resize(&self) -> bool {
        !matches!(self, DirGuard::Lock(_))
    }
}

#[inline]
fn fnv1a_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Seed entropy without an RNG dependency: wall clock, a stack address and
/// a process-wide counter, finalized with splitmix64.
fn random_seed() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let stack = 0u8;
    let mut x = t
        ^ (&stack as *const u8 as u64).rotate_left(32)
        ^ COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Directory {
    /// `buckets` must be a power of two (validated by `HartConfig`) — the
    /// *initial* size when `resize_threshold > 0`, the permanent size when
    /// it is `0`. `defer_reclaim` enables epoch-based reclamation inside
    /// the shards, required whenever lock-free readers may be active.
    pub fn new(buckets: usize, resize_threshold: usize, defer_reclaim: bool) -> Directory {
        Directory::with_seed(buckets, resize_threshold, defer_reclaim, random_seed())
    }

    /// [`Directory::new`] with a fixed hash seed (tests, reproducibility).
    pub fn with_seed(
        buckets: usize,
        resize_threshold: usize,
        defer_reclaim: bool,
        seed: u64,
    ) -> Directory {
        Directory {
            current: AtomicPtr::new(Box::into_raw(Box::new(Table::new(buckets)))),
            old: AtomicPtr::new(ptr::null_mut()),
            entries: AtomicUsize::new(0),
            grows: AtomicU64::new(0),
            resize_threshold,
            seed,
            resize: Mutex::new_ranked(
                ResizeState::default(),
                parking_lot::rank::DIR_RESIZE,
                false,
                "Directory.resize",
            ),
            defer_reclaim,
            obs: hart_obs::Recorder::disabled(),
            scan_gen: AtomicU64::new(0),
            scan_cache: RwLock::new_ranked(
                (0, Arc::new(Vec::new())),
                parking_lot::rank::DIR_SCAN_CACHE,
                false,
                "Directory.scan_cache",
            ),
        }
    }

    /// Route directory events (grows, bucket drains, migration finishes,
    /// shard lock waits) into `rec`. Called once at tree construction,
    /// before the directory is shared.
    pub fn set_recorder(&mut self, rec: hart_obs::Recorder) {
        self.obs = rec;
    }

    #[inline]
    fn hash(&self, hk: &[u8]) -> u64 {
        fnv1a_seeded(self.seed, hk)
    }

    /// Protect the table pointers for the duration of one operation.
    fn protect(&self) -> DirGuard<'_> {
        if !self.defer_reclaim {
            return DirGuard::None; // graveyard keeps every table alive
        }
        match hart_ebr::pin() {
            Some(g) => DirGuard::Pin(g),
            None => DirGuard::Lock(self.resize.lock()),
        }
    }

    /// Snapshot `(current, old)`. `current` is loaded *before* `old`: a
    /// grow publishes `old` before swapping `current`, so a reader that
    /// observes the new current is guaranteed to also observe the demoted
    /// table, and a reader that observes the pre-grow current at worst
    /// sees it twice.
    ///
    /// The caller must hold a [`DirGuard`] (or an EBR pin) so the returned
    /// references stay valid.
    #[inline]
    fn tables(&self) -> (&Table, Option<&Table>) {
        // SAFETY: `current` is never null and the caller's guard/pin (see
        // doc above) keeps the table from being retired under us.
        let cur = unsafe { &*self.current.load(Ordering::Acquire) };
        let old = self.old.load(Ordering::Acquire);
        let old = if old.is_null() {
            None
        } else {
            // SAFETY: non-null `old` is kept alive by the same guard/pin
            // until `finish_migration` retires it past our epoch.
            Some(unsafe { &*old })
        };
        (cur, old)
    }

    /// Locked probe of one table.
    fn find_in(t: &Table, h: u64, hk: &[u8]) -> Option<Arc<Shard>> {
        let g = t.bucket(h).entries.read();
        g.iter()
            .find(|(k, _)| k.as_slice() == hk)
            .map(|(_, s)| Arc::clone(s))
    }

    /// `HashFind` (Algorithm 1 line 2 / Algorithm 4 line 2).
    ///
    /// Two-table discipline: probe `old` first, then `current`. Migration
    /// publishes an entry in the new table before removing it from the old
    /// one, so "absent in old, then absent in current" is a committed
    /// absence — as long as `current` was stable across the probe. A grow
    /// landing mid-probe demotes `cur` and lets a targeted drain move the
    /// key's bucket into a table this probe never visits, so a miss only
    /// commits after revalidating the `current` pointer (exact under the
    /// guard: tables are never freed, hence never reused, while it is
    /// held).
    pub fn get(&self, hk: &[u8]) -> Option<Arc<Shard>> {
        let guard = self.protect();
        let h = self.hash(hk);
        loop {
            let (cur, old) = self.tables();
            if let Some(o) = old {
                if guard.may_resize() {
                    // Keep read-only workloads from double-probing forever:
                    // retire `old` if writers drained it but never finished.
                    self.try_finish(o);
                }
                if let Some(s) = Self::find_in(o, h, hk) {
                    return Some(s);
                }
            }
            if let Some(s) = Self::find_in(cur, h, hk) {
                return Some(s);
            }
            if ptr::eq(self.current.load(Ordering::Acquire), cur as *const Table) {
                return None;
            }
            // A grow demoted `cur` mid-probe; the key may have been
            // drained into the new current table. Re-snapshot and retry
            // (growth is geometric, so this terminates).
        }
    }

    /// Lock-free probe of one bucket: volatile-copy the entry-table fat
    /// pointer, validate the bucket version, then scan the (immutable)
    /// committed table.
    ///
    /// # Safety
    /// Caller holds an EBR pin; `bucket` belongs to a table loaded under
    /// that pin.
    unsafe fn probe_raw(bucket: &Bucket, hk: &[u8]) -> RawBucketRead {
        let v0 = bucket.version.load(Ordering::Acquire);
        if v0 % 2 == 1 {
            return RawBucketRead::Retry;
        }
        // Copy the table's fat pointer without the lock; a concurrent swap
        // can tear it, which the version re-check below detects before the
        // copy is dereferenced.
        let table_mu: MaybeUninit<Box<[Entry]>> =
            ptr::read_volatile(bucket.entries.data_ptr() as *const MaybeUninit<Box<[Entry]>>);
        fence(Ordering::Acquire);
        if bucket.version.load(Ordering::Relaxed) != v0 {
            return RawBucketRead::Retry;
        }
        // Validated: this is a committed table. Tables are immutable once
        // published, so scanning it needs no further checks.
        let table: &[Entry] = &*table_mu.as_ptr();
        match table.iter().find(|(k, _)| k.as_slice() == hk) {
            Some((_, shard)) => RawBucketRead::Found(Arc::as_ptr(shard)),
            None => RawBucketRead::Absent,
        }
    }

    /// Lock-free `HashFind` for the optimistic read path.
    ///
    /// A miss is only committed while `current` is stable (see
    /// [`Directory::get`]): after a double-table miss the `current`
    /// pointer is revalidated, and the probe restarts if a grow moved it
    /// mid-probe — otherwise a concurrent grow + targeted drain could
    /// relocate the key into a table this probe never visits and a
    /// continuously-present key would read as absent. Bounded retries;
    /// persistent interference degrades to [`RawBucketRead::Retry`] and
    /// the caller's locked fallback.
    ///
    /// # Safety
    /// The caller must hold an [`hart_ebr`] pin for as long as it uses the
    /// returned shard pointer: retired entry tables and bucket arrays (and
    /// the shards they reference) stay alive only until the pin is
    /// released. The pin also pins table addresses, making the pointer
    /// revalidation above exact.
    pub unsafe fn get_raw(&self, hk: &[u8]) -> RawBucketRead {
        let h = self.hash(hk);
        for _ in 0..4 {
            let (cur, old) = self.tables();
            if let Some(o) = old {
                // Read paths retire a fully-drained table too, so a
                // workload that turns read-only after a grow does not
                // double-probe forever (O(1) check, locks only when the
                // drain is actually complete).
                self.try_finish(o);
                match Self::probe_raw(o.bucket(h), hk) {
                    RawBucketRead::Absent => {} // fall through to current
                    found_or_retry => return found_or_retry,
                }
            }
            match Self::probe_raw(cur.bucket(h), hk) {
                RawBucketRead::Absent => {
                    if ptr::eq(self.current.load(Ordering::Acquire), cur as *const Table) {
                        return RawBucketRead::Absent;
                    }
                    // Grow raced the probe; re-snapshot both tables.
                }
                found_or_retry => return found_or_retry,
            }
        }
        RawBucketRead::Retry
    }

    /// Drain one `old` bucket into the current table. Entries are
    /// published in the new table *before* the old bucket empties, so
    /// old-then-current probes never miss. No-op if already drained.
    ///
    /// While we hold an un-migrated old bucket's write lock, the migration
    /// cannot finish (the finisher checks every bucket's flag) and no
    /// second grow can start (it requires `old == null`), so `current` is
    /// stable for the duration.
    fn migrate_bucket(&self, o: &Table, idx: usize) {
        let bucket = &o.buckets[idx];
        if bucket.migrated.load(Ordering::Acquire) {
            return;
        }
        let mut g = bucket.entries.write();
        if bucket.migrated.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: `current` is never null, and a table demoted to `old`
        // (where this bucket lives) is only retired after every bucket —
        // including this locked one — has drained.
        let cur = unsafe { &*self.current.load(Ordering::Acquire) };
        for (k, s) in g.iter() {
            let nb = cur.bucket(self.hash(k.as_slice()));
            let mut ng = nb.entries.write();
            let next: Box<[Entry]> = ng
                .iter()
                .cloned()
                .chain(std::iter::once((*k, Arc::clone(s))))
                .collect();
            nb.install(&mut ng, next);
        }
        if !g.is_empty() {
            bucket.install(&mut g, Box::new([]));
        }
        bucket.migrated.store(true, Ordering::Release);
        // Exactly-once per bucket: the flag double-check above means only
        // one caller reaches here for each bucket.
        o.migrated_count.fetch_add(1, Ordering::AcqRel);
        self.obs.add(hart_obs::Event::DirDrain, 1);
    }

    /// Retire `o` if every one of its buckets has drained — an O(1)
    /// counter check, so cheap enough for read paths. Best-effort: bails
    /// if the resize lock is contended (the holder, or any later
    /// operation, will come back through here).
    fn try_finish(&self, o: &Table) {
        if o.migrated_count.load(Ordering::Acquire) >= o.buckets.len() {
            self.finish_migration(o as *const Table as *mut Table);
        }
    }

    /// Cooperatively drain up to `stride` old buckets; finish the
    /// migration once the walker has passed the end and every bucket's
    /// flag is set. Called by directory writers holding a non-`Lock`
    /// guard.
    fn help_migrate(&self, stride: usize) {
        let old_ptr = self.old.load(Ordering::Acquire);
        if old_ptr.is_null() {
            return;
        }
        // SAFETY: a non-null `old` stays allocated until `finish_migration`
        // under the resize lock, which cannot complete while this bucket
        // walk still holds entry locks inside it.
        let o = unsafe { &*old_ptr };
        let len = o.buckets.len();
        for _ in 0..stride {
            let i = o.migrate_next.fetch_add(1, Ordering::Relaxed);
            if i >= len {
                break;
            }
            self.migrate_bucket(o, i);
        }
        self.try_finish(o);
    }

    /// Retire `old_ptr` once every one of its buckets has drained. Safe to
    /// race: only the caller that still observes it as `old` under the
    /// resize lock retires it. Best-effort on contention — finishing is
    /// idempotent and every later write or lookup retries via
    /// [`Directory::try_finish`].
    fn finish_migration(&self, old_ptr: *mut Table) {
        let Some(mut st) = self.resize.try_lock() else {
            return; // holder (or a later op) will finish
        };
        if self.old.load(Ordering::Acquire) != old_ptr {
            return; // someone else finished
        }
        // SAFETY: we hold the resize lock and just confirmed `old` still
        // equals `old_ptr`, so nobody else can retire it first.
        let o = unsafe { &*old_ptr };
        if o.migrated_count.load(Ordering::Acquire) < o.buckets.len() {
            // A drain is still mid-flight; it (or the next operation)
            // will come back through here.
            return;
        }
        debug_assert!(o.buckets.iter().all(|b| b.migrated.load(Ordering::Acquire)));
        self.old.store(ptr::null_mut(), Ordering::Release);
        self.obs.add(hart_obs::Event::DirFinish, 1);
        self.obs.resize_finished();
        // SAFETY: `old_ptr` came from `Box::into_raw` at grow time and was
        // just unlinked under the resize lock, so this is the unique owner.
        let boxed = unsafe { Box::from_raw(old_ptr) };
        if self.defer_reclaim {
            // Pinned readers may still probe the drained buckets; EBR
            // frees the array once their epochs pass. Pinless fallback
            // readers hold the resize lock, which we are holding now.
            hart_ebr::defer_drop(boxed);
        } else {
            // Locked mode: readers take no pins, so the array must outlive
            // any probe that loaded it — park it until the directory
            // drops. Doubling bounds the graveyard below one current
            // table's worth of bucket headers.
            st.graveyard.push(boxed);
        }
    }

    /// Double the bucket array if `seen` is still the current table and
    /// the trigger (load factor, or one pathological chain) still holds.
    fn maybe_grow(&self, seen: *const Table, chain_len: usize) {
        if self.resize_threshold == 0 {
            return;
        }
        let entries = self.entries.load(Ordering::Relaxed);
        // SAFETY: the caller observed `seen` as the current table under its
        // guard, which keeps the table alive for this read.
        let len = unsafe { &*seen }.buckets.len();
        let overloaded = entries > self.resize_threshold.saturating_mul(len);
        let chained = chain_len > CHAIN_LIMIT && len < entries.saturating_mul(4);
        if !overloaded && !chained {
            return;
        }
        let _st = self.resize.lock();
        if !self.old.load(Ordering::Acquire).is_null() {
            return; // previous migration still draining
        }
        if !ptr::eq(self.current.load(Ordering::Acquire), seen) {
            return; // raced another grow; its trigger re-evaluates
        }
        let next = Box::into_raw(Box::new(Table::new(len * 2)));
        // Publish order matters: `old` first, then `current` (see
        // `Directory::tables`). Entries stay put; writers drain them
        // incrementally from here on.
        self.old.store(seen as *mut Table, Ordering::Release);
        self.current.store(next, Ordering::Release);
        self.grows.fetch_add(1, Ordering::Relaxed);
        self.obs.add(hart_obs::Event::DirGrow, 1);
        self.obs.resize_started();
    }

    /// `HashFind` + `NewART` + `HashInsert` (Algorithm 1 lines 2–5).
    pub fn get_or_insert(&self, hk: &[u8]) -> Arc<Shard> {
        let guard = self.protect();
        let h = self.hash(hk);
        if guard.may_resize() {
            self.help_migrate(MIGRATE_STRIDE);
        }
        loop {
            let (cur, old) = self.tables();
            if let Some(o) = old {
                // Drain the bucket our key lives in, making `cur` the
                // single authority for `hk` before we lock it.
                self.migrate_bucket(o, (h & o.mask) as usize);
                if guard.may_resize() {
                    self.try_finish(o);
                }
            }
            let bucket = cur.bucket(h);
            let mut g = bucket.entries.write();
            // Revalidate under the lock: a concurrent grow may have
            // demoted `cur`, and a concurrent drain may have emptied this
            // bucket into an even newer table.
            if !ptr::eq(self.current.load(Ordering::Acquire), cur)
                || bucket.migrated.load(Ordering::Acquire)
            {
                continue;
            }
            if let Some((_, s)) = g.iter().find(|(k, _)| k.as_slice() == hk) {
                return Arc::clone(s);
            }
            let mut art = Art::new();
            art.set_deferred_reclaim(self.defer_reclaim);
            let shard = Arc::new(Shard::new(art));
            let next: Box<[Entry]> = g
                .iter()
                .cloned()
                .chain(std::iter::once((
                    InlineKey::from_slice(hk),
                    Arc::clone(&shard),
                )))
                .collect();
            let chain_len = next.len();
            bucket.install(&mut g, next);
            self.entries.fetch_add(1, Ordering::Relaxed);
            // Release-ordered after the entry publish, and *before* the
            // caller's first key insert can commit — a scan that starts
            // after that commit therefore loads a generation past this
            // bump and rebuilds its cached shard list (see
            // `shards_sorted_cached`).
            self.scan_gen.fetch_add(1, Ordering::Release);
            drop(g);
            if guard.may_resize() {
                self.maybe_grow(cur as *const Table, chain_len);
            }
            return shard;
        }
    }

    /// "HART will free the ART if it becomes empty" (Algorithm 5 lines
    /// 15–16). Returns `true` if the shard was unlinked.
    pub fn remove_if_empty(&self, hk: &[u8]) -> bool {
        let guard = self.protect();
        let h = self.hash(hk);
        if guard.may_resize() {
            self.help_migrate(MIGRATE_STRIDE);
        }
        loop {
            let (cur, old) = self.tables();
            if let Some(o) = old {
                self.migrate_bucket(o, (h & o.mask) as usize);
                if guard.may_resize() {
                    self.try_finish(o);
                }
            }
            let bucket = cur.bucket(h);
            let mut g = bucket.entries.write();
            if !ptr::eq(self.current.load(Ordering::Acquire), cur)
                || bucket.migrated.load(Ordering::Acquire)
            {
                continue;
            }
            let Some(pos) = g.iter().position(|(k, _)| k.as_slice() == hk) else {
                return false;
            };
            {
                let shard = &g[pos].1;
                let mut sg = shard.write_observed(&self.obs);
                if !sg.art.is_empty() || sg.dead {
                    return false;
                }
                sg.dead = true;
            }
            let next: Box<[Entry]> = g
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != pos)
                .map(|(_, e)| e.clone())
                .collect();
            bucket.install(&mut g, next);
            self.entries.fetch_sub(1, Ordering::Relaxed);
            // Stale cached lists keep an `Arc` to the shard, but it is
            // `dead` and empty by the check above, so scans skip it; the
            // bump retires the list at the next cache probe.
            self.scan_gen.fetch_add(1, Ordering::Release);
            return true;
        }
    }

    /// Snapshot of all `(hash key, shard)` pairs, sorted by hash key — the
    /// backbone of the ordered-scan extension and of statistics. Holds the
    /// resize lock so the table set is stable for the walk; migration-
    /// window duplicates are dropped after the sort.
    pub fn shards_sorted(&self) -> Vec<(InlineKey, Arc<Shard>)> {
        let _st = self.resize.lock();
        let (cur, old) = self.tables();
        let mut out = Vec::new();
        for t in old.into_iter().chain(std::iter::once(cur)) {
            for b in t.buckets.iter() {
                let g = b.entries.read();
                out.extend(g.iter().map(|(k, s)| (*k, Arc::clone(s))));
            }
        }
        out.sort_unstable_by_key(|a| a.0);
        out.dedup_by_key(|a| a.0);
        out
    }

    /// Cached [`Directory::shards_sorted`]: the sorted list is rebuilt
    /// only when the shard *set* changed (`scan_gen` — new hash prefix or
    /// shard unlink; migrations do not count), so a steady-state ordered
    /// scan costs one generation load plus an `Arc` clone instead of a
    /// full bucket walk and sort.
    ///
    /// Staleness is bounded by commit order: a shard is published and the
    /// generation bumped *before* its first key's insert returns, so a
    /// scan that loads the generation after that insert committed sees
    /// the bump and rebuilds; a scan overlapping the insert may use the
    /// older list, indistinguishable from the scan running first.
    /// Unlinked shards linger in stale lists but are `dead` (and empty by
    /// the unlink invariant), so the per-shard collectors skip them.
    pub fn shards_sorted_cached(&self) -> Arc<ShardList> {
        let gen = self.scan_gen.load(Ordering::Acquire);
        {
            let g = self.scan_cache.read();
            if g.0 == gen {
                return Arc::clone(&g.1);
            }
        }
        // Rebuild before taking the write lock: `shards_sorted` acquires
        // the resize and bucket locks, and DIR_SCAN_CACHE ranks below
        // both, so it must never be held across them. The snapshot is at
        // least as new as `gen`; stamping it `gen` is conservative (a set
        // change that landed mid-build just forces one more rebuild).
        let list = Arc::new(self.shards_sorted());
        let mut g = self.scan_cache.write();
        if g.0 < gen {
            *g = (gen, Arc::clone(&list));
        }
        list
    }

    /// Number of live shards (= ARTs = max concurrent writers).
    pub fn shard_count(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// Buckets in the current table (observability / tests / stats).
    pub fn bucket_count(&self) -> usize {
        let _st = self.resize.lock();
        // SAFETY: `current` is never null, and holding the resize lock
        // blocks any concurrent grow from swapping and retiring it.
        unsafe { &*self.current.load(Ordering::Acquire) }
            .buckets
            .len()
    }

    /// Completed grow operations since creation.
    pub fn grow_count(&self) -> u64 {
        self.grows.load(Ordering::Relaxed)
    }

    /// True while a demoted table is still draining into the current one
    /// (observability / tests).
    pub fn migration_in_progress(&self) -> bool {
        !self.old.load(Ordering::Acquire).is_null()
    }

    /// DRAM bytes of the directory and every ART's internal nodes, for the
    /// Fig. 10b experiment. Counts both live tables and the graveyard.
    pub fn memory_bytes(&self) -> usize {
        let mut total = size_of::<Self>();
        {
            let st = self.resize.lock();
            let (cur, old) = self.tables();
            total += cur.buckets.len() * size_of::<Bucket>();
            if let Some(o) = old {
                total += o.buckets.len() * size_of::<Bucket>();
            }
            total += st
                .graveyard
                .iter()
                .map(|t| t.buckets.len() * size_of::<Bucket>())
                .sum::<usize>();
        }
        for (_, shard) in self.shards_sorted() {
            total += size_of::<Entry>() + size_of::<Shard>() + shard.read().art.memory_bytes();
        }
        total
    }

    /// Debug/test helper: every leaf pointer reachable from the directory.
    pub fn all_leaves(&self, resolver: &PmResolver<'_>) -> Vec<PmPtr> {
        let _ = resolver; // traversal does not need key resolution
        let mut out = Vec::new();
        for (_, shard) in self.shards_sorted() {
            shard.read().art.for_each(|&leaf| out.push(leaf));
        }
        out
    }
}

impl Drop for Directory {
    fn drop(&mut self) {
        // Exclusive access: free both live tables; the graveyard drops
        // with the mutex.
        let cur = *self.current.get_mut();
        // SAFETY: `&mut self` in drop means no reader or writer remains;
        // `current` uniquely owns its table here.
        unsafe { drop(Box::from_raw(cur)) };
        let old = *self.old.get_mut();
        if !old.is_null() {
            // SAFETY: same exclusivity; a non-null `old` is the only other
            // owning pointer and is dropped exactly once.
            unsafe { drop(Box::from_raw(old)) };
        }
    }
}

// SAFETY: the raw pointers are owning handles to heap tables; all access
// is synchronized by the atomics + locks above.
unsafe impl Send for Directory {}
// SAFETY: see the Send rationale — shared access goes through the seqlock
// validate/retry protocol or the resize lock.
unsafe impl Sync for Directory {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fixed-size directory with a deterministic seed, like the pre-resize
    /// default.
    fn fixed(buckets: usize) -> Directory {
        Directory::with_seed(buckets, 0, true, 0)
    }

    /// Aggressively resizing directory (load factor 1, deterministic seed).
    fn resizing(buckets: usize) -> Directory {
        Directory::with_seed(buckets, 1, true, 0)
    }

    #[test]
    fn get_or_insert_is_idempotent() {
        let d = fixed(16);
        let a = d.get_or_insert(b"AA");
        let b = d.get_or_insert(b"AA");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(d.shard_count(), 1);
        assert!(d.get(b"BB").is_none());
    }

    /// Resolver stub: the first insert into an empty ART never resolves a
    /// key, so lookups are irrelevant here.
    struct StubResolver;
    impl hart_art::KeyResolver<PmPtr> for StubResolver {
        fn load_key(&self, _: &PmPtr) -> InlineKey {
            InlineKey::from_slice(b"x")
        }
    }

    #[test]
    fn remove_if_empty_only_removes_empty() {
        let d = fixed(16);
        let s = d.get_or_insert(b"AA");
        s.write().art.insert(&StubResolver, b"x", PmPtr(64));
        assert!(!d.remove_if_empty(b"AA"), "non-empty shard must stay");
        assert_eq!(d.shard_count(), 1);
    }

    #[test]
    fn remove_marks_dead() {
        let d = fixed(16);
        let s = d.get_or_insert(b"AA");
        assert!(d.remove_if_empty(b"AA"));
        assert!(s.read().dead);
        assert_eq!(d.shard_count(), 0);
        // A new shard under the same hash key is a fresh object.
        let s2 = d.get_or_insert(b"AA");
        assert!(!Arc::ptr_eq(&s, &s2));
    }

    #[test]
    fn shards_sorted_orders_by_key() {
        let d = fixed(4); // force collisions
        for hk in [b"zz".as_slice(), b"aa", b"mm", b"ab"] {
            d.get_or_insert(hk);
        }
        let keys: Vec<Vec<u8>> = d
            .shards_sorted()
            .iter()
            .map(|(k, _)| k.as_slice().to_vec())
            .collect();
        assert_eq!(
            keys,
            vec![
                b"aa".to_vec(),
                b"ab".to_vec(),
                b"mm".to_vec(),
                b"zz".to_vec()
            ]
        );
    }

    #[test]
    fn memory_accounting_is_monotone() {
        let d = fixed(16);
        let m0 = d.memory_bytes();
        d.get_or_insert(b"AA");
        let m1 = d.memory_bytes();
        assert!(m1 > m0);
    }

    #[test]
    fn write_guard_bumps_version_by_two() {
        let d = fixed(16);
        let s = d.get_or_insert(b"AA");
        let v0 = s.version();
        assert_eq!(v0 % 2, 0);
        {
            let _g = s.write();
            assert_eq!(
                s.version.load(Ordering::SeqCst),
                v0 + 1,
                "odd inside the section"
            );
        }
        assert_eq!(s.version(), v0 + 2);
        assert!(s.validate(v0 + 2));
        assert!(!s.validate(v0));
    }

    #[test]
    fn raw_probe_finds_and_misses() {
        let d = fixed(16);
        let s = d.get_or_insert(b"AA");
        let _pin = hart_ebr::pin().expect("slot");
        // SAFETY: `_pin` keeps the probed tables and shard alive.
        unsafe {
            match d.get_raw(b"AA") {
                RawBucketRead::Found(p) => assert_eq!(p, Arc::as_ptr(&s)),
                _ => panic!("expected Found"),
            }
            assert!(matches!(d.get_raw(b"BB"), RawBucketRead::Absent));
        }
    }

    #[test]
    fn cached_snapshot_tracks_shard_set() {
        let d = fixed(4);
        for hk in [b"zz".as_slice(), b"aa", b"mm"] {
            d.get_or_insert(hk);
        }
        let keys = |l: &ShardList| -> Vec<InlineKey> { l.iter().map(|(k, _)| *k).collect() };
        let cached = d.shards_sorted_cached();
        let locked: Vec<InlineKey> = d.shards_sorted().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys(&cached), locked);
        // Steady state: same generation, same list object — no rebuild.
        assert!(Arc::ptr_eq(&cached, &d.shards_sorted_cached()));
        // A new shard bumps the generation and invalidates the cache.
        d.get_or_insert(b"bb");
        let grown = d.shards_sorted_cached();
        assert!(!Arc::ptr_eq(&cached, &grown));
        assert_eq!(
            keys(&grown),
            [b"aa".as_slice(), b"bb", b"mm", b"zz"]
                .map(InlineKey::from_slice)
                .to_vec()
        );
        // So does an unlink.
        assert!(d.remove_if_empty(b"mm"));
        let shrunk = d.shards_sorted_cached();
        assert_eq!(
            keys(&shrunk),
            [b"aa".as_slice(), b"bb", b"zz"]
                .map(InlineKey::from_slice)
                .to_vec()
        );
    }

    /// Satellite: the seeded hash must spread random hash keys evenly — no
    /// bucket more than 4x the mean over 10k keys (FNV-1a quality gate).
    #[test]
    fn bucket_distribution_is_balanced() {
        use rand::{Rng, SeedableRng};
        let n_buckets = 64usize;
        let d = fixed(n_buckets);
        let mask = n_buckets as u64 - 1;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xD15_7A6);
        let mut counts = vec![0usize; n_buckets];
        let n_keys = 10_000usize;
        for _ in 0..n_keys {
            // Random 2-byte hash keys over a printable alphabet, like the
            // paper's workloads.
            let hk = [rng.gen_range(0x21u8..0x7f), rng.gen_range(0x21u8..0x7f)];
            let idx = (d.hash(&hk) & mask) as usize;
            counts[idx] += 1;
        }
        let mean = n_keys as f64 / n_buckets as f64;
        let worst = *counts.iter().max().unwrap() as f64;
        assert!(
            worst <= 4.0 * mean,
            "worst bucket {worst} exceeds 4x mean {mean:.1}: {counts:?}"
        );
    }

    /// Distinct seeds must permute bucket assignment: a key set that
    /// chains into one bucket under seed A spreads out under seed B.
    #[test]
    fn seed_changes_bucket_assignment() {
        let a = Directory::with_seed(64, 0, true, 1);
        let b = Directory::with_seed(64, 0, true, 2);
        let mask = 63u64;
        let mut diff = 0;
        for x in 0u16..512 {
            let hk = x.to_le_bytes();
            if a.hash(&hk) & mask != b.hash(&hk) & mask {
                diff += 1;
            }
        }
        assert!(diff > 400, "seeds barely change placement ({diff}/512)");
    }

    #[test]
    fn fixed_directory_never_grows() {
        let d = fixed(4);
        for i in 0..256u16 {
            d.get_or_insert(&i.to_le_bytes());
        }
        assert_eq!(d.bucket_count(), 4);
        assert_eq!(d.grow_count(), 0);
        assert_eq!(d.shard_count(), 256);
    }

    #[test]
    fn directory_grows_and_stays_consistent() {
        let d = resizing(4);
        let shards: Vec<_> = (0..512u16)
            .map(|i| d.get_or_insert(&i.to_le_bytes()))
            .collect();
        assert!(
            d.grow_count() >= 5,
            "expected several doublings, got {}",
            d.grow_count()
        );
        assert!(d.bucket_count() >= 256, "bucket count {}", d.bucket_count());
        assert_eq!(d.shard_count(), 512);
        // Every shard is still found, and is the same object.
        for (i, s) in shards.iter().enumerate() {
            let hk = (i as u16).to_le_bytes();
            let got = d.get(&hk).expect("present after growth");
            assert!(
                Arc::ptr_eq(&got, s),
                "key {i} remapped to a different shard"
            );
        }
        // Raw probes agree while a migration may still be draining.
        let _pin = hart_ebr::pin().expect("slot");
        for i in 0..512u16 {
            let hk = i.to_le_bytes();
            // SAFETY: `_pin` above keeps the probed tables alive.
            match unsafe { d.get_raw(&hk) } {
                RawBucketRead::Found(p) => assert_eq!(p, Arc::as_ptr(&shards[i as usize])),
                RawBucketRead::Absent => panic!("key {i} lost"),
                RawBucketRead::Retry => {
                    assert!(d.get(&hk).is_some(), "locked fallback lost key {i}")
                }
            }
        }
        let listed = d.shards_sorted();
        assert_eq!(listed.len(), 512, "snapshot must dedup migration copies");
    }

    #[test]
    fn growth_with_removals_keeps_exact_count() {
        let d = resizing(4);
        for i in 0..300u16 {
            d.get_or_insert(&i.to_le_bytes());
        }
        for i in (0..300u16).step_by(2) {
            assert!(d.remove_if_empty(&i.to_le_bytes()), "key {i}");
        }
        assert_eq!(d.shard_count(), 150);
        for i in 0..300u16 {
            let present = d.get(&i.to_le_bytes()).is_some();
            assert_eq!(present, i % 2 == 1, "key {i}");
        }
        assert_eq!(d.shards_sorted().len(), 150);
    }

    #[test]
    fn chain_limit_triggers_growth_without_load() {
        // 512 buckets, threshold 1: global load stays far below 1, but one
        // chain exceeding CHAIN_LIMIT must still trigger a grow... except
        // the seeded hash makes engineered collisions impractical, so this
        // exercises the code path statistically: inserting CHAIN_LIMIT*4
        // keys into 2 buckets guarantees a long chain.
        let d = Directory::with_seed(2, 1_000_000, true, 7);
        for i in 0..((CHAIN_LIMIT as u16) * 4) {
            d.get_or_insert(&i.to_le_bytes());
        }
        assert!(d.grow_count() >= 1, "chain trigger never fired");
    }

    /// Regression (REVIEW.md): a table drained entirely by *targeted*
    /// drains (stride walker never ran, cursor still at 0) must still be
    /// retired — and a read-only workload must be able to do it, or every
    /// lookup double-probes two tables forever.
    #[test]
    fn fully_drained_table_is_retired_by_lookups() {
        let d = resizing(4);
        let mut i = 0u16;
        while d.old.load(Ordering::Acquire).is_null() {
            d.get_or_insert(&i.to_le_bytes());
            i += 1;
            assert!(i < 10_000, "no grow triggered");
        }
        // SAFETY: single-threaded test — nothing can retire `old` between
        // the loop's null check and this dereference.
        let o = unsafe { &*d.old.load(Ordering::Acquire) };
        assert!(
            o.migrate_next.load(Ordering::Acquire) < o.buckets.len(),
            "walker must not have passed the end for this test to bite"
        );
        for idx in 0..o.buckets.len() {
            d.migrate_bucket(o, idx); // targeted drains only
        }
        assert!(d.migration_in_progress(), "nothing has finished it yet");
        assert!(d.get(&0u16.to_le_bytes()).is_some());
        assert!(
            !d.migration_in_progress(),
            "a lookup observing a fully-drained old table must retire it"
        );
        hart_ebr::flush_for_tests();
    }

    /// Regression (REVIEW.md): a key that is continuously present must
    /// never read as absent, even when grows + targeted drains relocate
    /// its bucket mid-probe. Hammers both the locked and the raw lookup
    /// while writers force repeated doublings.
    #[test]
    fn lookup_never_misses_present_key_during_growth() {
        let d = Arc::new(resizing(4));
        let stable: Vec<[u8; 2]> = (0..64u16).map(|i| i.to_le_bytes()).collect();
        for hk in &stable {
            d.get_or_insert(hk);
        }
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let d = Arc::clone(&d);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut i = 1000u16.wrapping_add(t.wrapping_mul(8192));
                    while !stop.load(Ordering::Relaxed) {
                        d.get_or_insert(&i.to_le_bytes());
                        i = i.wrapping_add(1);
                    }
                });
            }
            for _ in 0..2 {
                let d = Arc::clone(&d);
                let stop = Arc::clone(&stop);
                let stable = stable.clone();
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        for hk in &stable {
                            assert!(d.get(hk).is_some(), "false absent (locked probe)");
                            if let Some(_pin) = hart_ebr::pin() {
                                // SAFETY: `_pin` keeps the tables alive.
                                match unsafe { d.get_raw(hk) } {
                                    RawBucketRead::Found(_) | RawBucketRead::Retry => {}
                                    RawBucketRead::Absent => panic!("false absent (raw probe)"),
                                }
                            }
                        }
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(250));
            stop.store(true, Ordering::Relaxed);
        });
        hart_ebr::flush_for_tests();
    }

    /// Regression (REVIEW.md): the scan-facing directory snapshot must
    /// never drop a continuously-live shard, even when grows complete and
    /// drain entries between tables mid-walk — now exercised through the
    /// generation-stamped cache, whose rebuilds race the growing writers.
    #[test]
    fn cached_scan_never_misses_live_shards_during_growth() {
        let d = Arc::new(resizing(4));
        let stable: Vec<[u8; 2]> = (0..64u16).map(|i| i.to_le_bytes()).collect();
        for hk in &stable {
            d.get_or_insert(hk);
        }
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let d = Arc::clone(&d);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut i = 1000u16.wrapping_add(t.wrapping_mul(8192));
                    while !stop.load(Ordering::Relaxed) {
                        d.get_or_insert(&i.to_le_bytes());
                        i = i.wrapping_add(1);
                    }
                });
            }
            {
                let d = Arc::clone(&d);
                let stop = Arc::clone(&stop);
                let stable = stable.clone();
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let list = d.shards_sorted_cached();
                        let snap: std::collections::HashSet<Vec<u8>> =
                            list.iter().map(|(k, _)| k.as_slice().to_vec()).collect();
                        for hk in &stable {
                            assert!(
                                snap.contains(hk.as_slice()),
                                "cached scan dropped live shard {hk:?}"
                            );
                        }
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(250));
            stop.store(true, Ordering::Relaxed);
        });
        hart_ebr::flush_for_tests();
    }

    #[test]
    fn concurrent_growth_is_linearizable() {
        let d = Arc::new(resizing(4));
        let n_threads = 8u16;
        let per = 128u16;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let d = Arc::clone(&d);
                s.spawn(move || {
                    for i in 0..per {
                        let hk = (t * per + i).to_le_bytes();
                        let a = d.get_or_insert(&hk);
                        // Immediate re-probe must find the same shard.
                        let b = d.get(&hk).expect("own insert visible");
                        assert!(Arc::ptr_eq(&a, &b));
                    }
                });
            }
        });
        assert_eq!(d.shard_count(), (n_threads * per) as usize);
        assert!(d.grow_count() >= 4);
        for x in 0..(n_threads * per) {
            assert!(
                d.get(&x.to_le_bytes()).is_some(),
                "key {x} lost after growth"
            );
        }
        hart_ebr::flush_for_tests();
    }
}
