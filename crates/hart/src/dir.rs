//! The DRAM hash directory mapping hash keys to ARTs (Fig. 1).
//!
//! A bucket array with chaining, grown online. Entries are created lazily
//! on first insert of a hash key (Algorithm 1 lines 3–5) and removed when
//! their ART becomes empty (Algorithm 5 lines 15–16). The directory itself
//! is read-mostly: after warm-up, pessimistic lookups take one bucket
//! read-lock, and the optimistic read path (DESIGN.md §Concurrency) takes
//! none at all.
//!
//! # Seqlock versioning
//!
//! Both levels of the structure carry a version counter for lock-free
//! readers:
//!
//! * each [`Bucket`] — bumped to odd before its entry table is swapped and
//!   back to even after, so a reader can detect a torn copy of the table's
//!   fat pointer;
//! * each [`Shard`] — bumped around *every* write-locked section (the
//!   write guard does it automatically), so a reader can detect any
//!   concurrent mutation of the shard's ART or of the PM records it owns.
//!
//! Bucket entry tables are immutable once published ([`BucketTable`]
//! replaced wholesale, never edited in place) and retired through
//! [`hart_ebr`], as are unlinked shards — the two facts that let readers
//! chase raw pointers into them while pinned.
//!
//! # Fingerprint probes and the stash region (DESIGN.md §Resizing)
//!
//! Dash-style probe acceleration: every published [`BucketTable`] carries
//! a packed array of 1-byte fingerprints (`fps[i]` is the top hash byte of
//! `entries[i]`'s key), so a probe scans fingerprints first — 16 bytes per
//! SIMD compare via `hart_art::simd::match_byte64`, with a bit-identical
//! scalar fallback — and compares full hash keys only at fingerprint
//! matches (false-positive rate ≈ chain/256). Chains of at most
//! [`FP_SCAN_MIN`] entries skip the filter — a few short key compares
//! beat the filter's extra cache line — so in practice the filter serves
//! long stash chains. The `HartConfig::full_key_probes` kill-switch
//! reverts to comparing every key; the stored format is identical either
//! way.
//!
//! Home buckets are bounded at [`BUCKET_CAP`] entries (IcebergHT's
//! low-associativity argument: bounded buckets keep install copies and
//! migration units small). A key chaining past the cap is displaced into
//! the table's *stash region* — a small shared array of overflow buckets,
//! indexed by the home bucket's low bits — and the home bucket's sticky
//! `overflow` bit is set *after* the stash entry publishes, so a probe
//! that misses the home bucket consults the stash only when the bit is
//! visible. Invariants:
//!
//! * all stash mutations for keys homed to bucket `B` happen while `B`'s
//!   write lock is held — displacement, unlink and migration of a chain
//!   serialize on the home bucket, and `overflow == false` under that lock
//!   means no displaced entries exist;
//! * the stash drains with its home bucket: `migrate_bucket` moves the
//!   displaced part of the chain (same publish-in-new-before-remove-from-
//!   old order), so a fully-migrated table has an empty stash and the
//!   two-table miss rule is unchanged.
//!
//! # Online resizing (DESIGN.md §Resizing)
//!
//! The bucket array is no longer fixed: the directory tracks its live
//! entry count and, when the load factor exceeds `resize_threshold`
//! entries per bucket (or one chain grows pathological), doubles the
//! bucket array. Growth is *incremental and cooperative*, Dash-style:
//!
//! * a grow installs a fresh, empty [`Table`] as `current` and demotes the
//!   full one to `old`; no entries move at grow time;
//! * every subsequent directory *write* drains a stride of `old` buckets
//!   into `current` (plus, always, the one bucket its own hash key maps
//!   to), each under that bucket's write lock — entries are published in
//!   the new table *before* they disappear from the old one;
//! * lookups probe `old` first, then `current` (loading `current` before
//!   `old`); the publish order above makes a miss in both tables a
//!   committed absence *provided `current` did not change during the
//!   probe* — a grow landing mid-probe can demote the probed current
//!   table and drain the key's bucket into a table the probe never
//!   visits, so every miss revalidates the `current` pointer and retries
//!   the whole two-table probe if it moved (the EBR pin / graveyard keeps
//!   table addresses stable, making pointer equality an exact test);
//! * when the last old bucket drains, `old` is retired: through
//!   [`hart_ebr`] when optimistic readers may hold raw pointers into it,
//!   or onto a graveyard freed at directory drop in the locked ablation
//!   (pessimistic readers hold no epoch pin; the geometric doubling bounds
//!   graveyard memory by one current-table's worth of bucket headers).
//!
//! Hash keys are mixed with a per-directory random seed so an adversarial
//! key set cannot be precomputed to chain into a single bucket.

use crate::resolver::PmResolver;
use hart_art::{simd, Art};
use hart_kv::InlineKey;
use hart_pm::PmPtr;
use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::mem::{size_of, MaybeUninit};
use std::ops::{Deref, DerefMut};
use std::ptr;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One ART plus its liveness flag, guarded by the per-ART reader-writer
/// lock of §III-A.3.
pub(crate) struct ShardInner {
    pub art: Art<PmPtr>,
    /// Set under the write lock when the shard is unlinked from the
    /// directory; writers that raced `get_or_insert` against removal check
    /// it and retry, so no insert can land in an orphaned shard.
    pub dead: bool,
}

/// A directory shard: the per-ART lock of §III-A.3 plus the seqlock epoch
/// counter of the optimistic read path.
pub(crate) struct Shard {
    /// Seqlock version: odd while a write section is open, even when
    /// quiescent. Every acquisition of the write lock is a write section.
    version: AtomicU64,
    inner: RwLock<ShardInner>,
}

impl Shard {
    fn new(art: Art<PmPtr>) -> Shard {
        Shard {
            version: AtomicU64::new(0),
            inner: RwLock::new_ranked(
                ShardInner { art, dead: false },
                parking_lot::rank::SHARD,
                false,
                "Shard.inner",
            ),
        }
    }

    /// Shared (pessimistic) access; does not touch the version.
    pub fn read(&self) -> RwLockReadGuard<'_, ShardInner> {
        self.inner.read()
    }

    /// Exclusive access as a *write section*: the shard version is bumped
    /// odd on acquire and even on release, so optimistic readers retry
    /// around it. Used for every mutation — including value updates that
    /// never touch the ART, since those still change what a concurrent
    /// reader would return for a key.
    pub fn write(&self) -> ShardWriteGuard<'_> {
        let guard = self.inner.write();
        self.open_write_section(guard)
    }

    /// [`Shard::write`] with contention observability: an uncontended
    /// `try_write` costs nothing extra, and only actual blocking is timed
    /// (one clock pair per contended acquisition) and counted through
    /// `rec` — so the disabled-recorder path adds a single branch.
    pub fn write_observed(&self, rec: &hart_obs::Recorder) -> ShardWriteGuard<'_> {
        if let Some(guard) = self.inner.try_write() {
            return self.open_write_section(guard);
        }
        let t0 = rec.now();
        let guard = self.write();
        rec.record_shard_wait(t0);
        guard
    }

    fn open_write_section<'a>(
        &'a self,
        guard: RwLockWriteGuard<'a, ShardInner>,
    ) -> ShardWriteGuard<'a> {
        let v = self.version.fetch_add(1, Ordering::AcqRel);
        debug_assert!(
            v.is_multiple_of(2),
            "write section already open under the write lock"
        );
        ShardWriteGuard { shard: self, guard }
    }

    /// Current version, `Acquire`-loaded. Even means quiescent.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// True when the version still equals `v0` (an even observation),
    /// with an `Acquire` fence so the caller's preceding data reads cannot
    /// be reordered past the check.
    pub fn validate(&self, v0: u64) -> bool {
        fence(Ordering::Acquire);
        self.version.load(Ordering::Relaxed) == v0
    }

    /// Raw pointer to the lock-protected interior, for validated
    /// optimistic traversal. Dereference only under an [`hart_ebr`] pin and
    /// the copy-validate discipline of `hart_art::search_raw`.
    pub fn inner_ptr(&self) -> *const ShardInner {
        // pmlint: guarded-ok(the audited raw door for optimistic reads: callers pin and copy-validate against the seqlock version, never dereference unguarded)
        self.inner.data_ptr()
    }
}

/// Write guard that closes the shard's write section on drop.
pub(crate) struct ShardWriteGuard<'a> {
    shard: &'a Shard,
    guard: RwLockWriteGuard<'a, ShardInner>,
}

impl Deref for ShardWriteGuard<'_> {
    type Target = ShardInner;
    fn deref(&self) -> &ShardInner {
        &self.guard
    }
}

impl DerefMut for ShardWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut ShardInner {
        &mut self.guard
    }
}

impl Drop for ShardWriteGuard<'_> {
    fn drop(&mut self) {
        // Close the section (odd -> even) before the lock is released by
        // the inner guard's drop.
        let v = self.shard.version.fetch_add(1, Ordering::AcqRel);
        debug_assert!(v % 2 == 1, "write section must be open");
    }
}

type Entry = (InlineKey, Arc<Shard>);

/// The published per-bucket table: the entry slice plus the packed
/// fingerprint array scanned ahead of it (`fps[i]` belongs to
/// `entries[i]`). Immutable once published — writers install a whole new
/// table and retire the old one through the epoch reclaimer.
struct BucketTable {
    /// One fingerprint byte per entry, contiguous so a probe can compare
    /// 16 of them per SIMD instruction before touching any key bytes.
    fps: Box<[u8]>,
    entries: Box<[Entry]>,
}

impl BucketTable {
    fn empty() -> BucketTable {
        BucketTable {
            fps: Box::new([]),
            entries: Box::new([]),
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// A hash bucket: a versioned, wholesale-replaced [`BucketTable`].
struct Bucket {
    /// Seqlock version guarding `table` swaps (odd = swap in progress).
    version: AtomicU64,
    /// The published table. Never mutated in place; writers install a new
    /// one and retire the old through the epoch reclaimer.
    table: RwLock<BucketTable>,
    /// Set (under the write lock) once this bucket has been drained into
    /// the next table. A migrated bucket never accepts entries again.
    migrated: AtomicBool,
    /// Sticky: set once a key homed to this bucket has been displaced into
    /// the table's stash region (home chain at [`BUCKET_CAP`]). Probes
    /// consult the stash only when set; it never clears, so at worst a
    /// fully-unlinked chain costs one empty stash probe.
    overflow: AtomicBool,
}

impl Bucket {
    fn new() -> Bucket {
        Bucket {
            version: AtomicU64::new(0),
            table: RwLock::new_ranked(
                BucketTable::empty(),
                parking_lot::rank::BUCKET_ENTRIES,
                true,
                "Bucket.table",
            ),
            migrated: AtomicBool::new(false),
            overflow: AtomicBool::new(false),
        }
    }

    /// Replace the bucket table under the (already held) write lock,
    /// retiring the old table so pinned readers can finish scanning it.
    fn install(&self, guard: &mut RwLockWriteGuard<'_, BucketTable>, next: BucketTable) {
        let v = self.version.fetch_add(1, Ordering::AcqRel);
        debug_assert!(v.is_multiple_of(2), "bucket swap already in progress");
        let old = std::mem::replace(&mut **guard, next);
        self.version.fetch_add(1, Ordering::AcqRel);
        hart_ebr::defer_drop(old);
    }
}

/// One generation of the bucket array. `current` points at the newest
/// table; during a migration `old` points at the previous one.
struct Table {
    buckets: Box<[Bucket]>,
    /// The stash region: overflow buckets for keys displaced past
    /// [`BUCKET_CAP`], shared across home buckets. Indexed by the *home
    /// bucket index* masked down (`h & stash_mask`, and `stash_mask <=
    /// mask`), so one home chain always stashes into one deterministic
    /// stash bucket and a bucket drain touches exactly one of them.
    stash: Box<[Bucket]>,
    mask: u64,
    stash_mask: u64,
    /// Next bucket index the cooperative stride walker will claim. Only
    /// meaningful while this table is the `old` (draining) one.
    migrate_next: AtomicUsize,
    /// Buckets whose `migrated` flag has been set — the O(1) "fully
    /// drained" test for retiring this table. Counts both stride-walker
    /// and targeted drains, so a table drained entirely by targeted
    /// drains (walker never ran) is still retirable. Stash buckets have no
    /// flag of their own: they empty when their home buckets drain.
    migrated_count: AtomicUsize,
}

/// Stash buckets per table: 1/64th of the home buckets, floor 8 — small
/// enough to be a rounding error in memory, deterministic so tests can
/// reason about placement.
fn stash_len(buckets: usize) -> usize {
    (buckets / 64).max(8).min(buckets)
}

impl Table {
    fn new(buckets: usize) -> Table {
        debug_assert!(buckets.is_power_of_two());
        let stash = stash_len(buckets);
        Table {
            buckets: (0..buckets).map(|_| Bucket::new()).collect(),
            stash: (0..stash).map(|_| Bucket::new()).collect(),
            mask: buckets as u64 - 1,
            stash_mask: stash as u64 - 1,
            migrate_next: AtomicUsize::new(0),
            migrated_count: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn bucket(&self, h: u64) -> &Bucket {
        &self.buckets[(h & self.mask) as usize]
    }

    /// The stash bucket serving `h`'s home bucket. Pure function of the
    /// home index, so every key of one chain shares it.
    #[inline]
    fn stash_bucket(&self, h: u64) -> &Bucket {
        &self.stash[(h & self.stash_mask) as usize]
    }
}

/// Result of a lock-free bucket probe.
pub(crate) enum RawBucketRead {
    /// The hash key maps to this shard. Valid while the caller's EBR pin is
    /// held.
    Found(*const Shard),
    /// The hash key had no shard at a committed version.
    Absent,
    /// A concurrent swap interfered; retry or fall back to `get`.
    Retry,
}

/// How many old buckets each directory write drains beyond its own.
const MIGRATE_STRIDE: usize = 16;

/// Home-bucket capacity: a key chaining past this many entries is
/// displaced into the table's stash region instead of growing the home
/// chain, keeping home scans and install copies bounded (IcebergHT-style
/// low associativity).
const BUCKET_CAP: usize = 16;

/// An *effective* chain (home bucket plus its displaced keys) longer than
/// this triggers a grow even below the global load-factor threshold —
/// provided doubling would actually split the chain (`doubling_splits`);
/// an unsplittable chain stays in the stash instead of forcing doublings
/// that cannot shorten it.
const CHAIN_LIMIT: usize = 16;

/// Failed miss-revalidations `Directory::get` tolerates before falling
/// back to one final probe under the resize lock, which serializes out
/// the grow storm (precedent: `shards_sorted_raw`'s resize-locked final
/// pass). Without the bound, back-to-back grows + targeted drains can
/// re-move `current` under every retry while the reader holds its EBR pin.
const MISS_RETRY_LIMIT: usize = 8;

/// Scans of at most this many entries skip the fingerprint filter and
/// compare keys directly: for a handful of short hash keys the filter's
/// extra cache line (the packed `fps` array) and scan setup cost more
/// than the compares they replace (measured 6–22 % slower on the
/// resizing directory, whose post-growth chains average 1–4 entries),
/// while the long stash chains of an undersized directory are where the
/// packed-byte SIMD scan wins big (2.5× at 1 M–10 M keys,
/// RESULTS:rehash). Half `BUCKET_CAP`, so well-filled home buckets
/// still take the filtered path.
const FP_SCAN_MIN: usize = 8;

/// 1-byte probe fingerprint: the top byte of the seeded FNV-1a hash.
/// Bucket and stash indices use the *low* hash bits, so within one chain
/// the fingerprint byte stays discriminating.
#[inline]
fn fingerprint(h: u64) -> u8 {
    (h >> 56) as u8
}

/// A copy of `g` with `entry` (hashing to `h`) appended, its fingerprint
/// kept in lockstep.
fn push_entry(g: &BucketTable, h: u64, entry: Entry) -> BucketTable {
    BucketTable {
        fps: g
            .fps
            .iter()
            .copied()
            .chain(std::iter::once(fingerprint(h)))
            .collect(),
        entries: g
            .entries
            .iter()
            .cloned()
            .chain(std::iter::once(entry))
            .collect(),
    }
}

/// A copy of `g` without the entries at the positions in `removed` — the
/// unlink/drain counterpart of [`push_entry`].
fn remove_at(g: &BucketTable, removed: &[usize]) -> BucketTable {
    let keep = |i: &usize| !removed.contains(i);
    BucketTable {
        fps: g
            .fps
            .iter()
            .enumerate()
            .filter(|(i, _)| keep(i))
            .map(|(_, f)| *f)
            .collect(),
        entries: g
            .entries
            .iter()
            .enumerate()
            .filter(|(i, _)| keep(i))
            .map(|(_, e)| e.clone())
            .collect(),
    }
}

/// State serialized by the resize lock: grow/finish decisions plus the
/// graveyard of retired tables for the no-EBR (locked reads) ablation.
#[derive(Default)]
struct ResizeState {
    /// Boxed (not inlined) on purpose: pessimistic readers may still hold
    /// references into a retired table, so its address must stay stable.
    #[allow(clippy::vec_box)]
    graveyard: Vec<Box<Table>>,
}

pub(crate) struct Directory {
    /// Newest table — all directory inserts land here.
    current: AtomicPtr<Table>,
    /// Previous table, being drained; null when no migration is running.
    old: AtomicPtr<Table>,
    /// Live `(hash key, shard)` entries across both tables. Exact: bumped
    /// once per insert, once per unlink; migration moves, never counts.
    entries: AtomicUsize,
    /// Completed grow operations (observability / tests).
    grows: AtomicU64,
    /// Grow when `entries > resize_threshold * buckets`; `0` = fixed size
    /// (the pre-resize behavior, and the ablation baseline).
    resize_threshold: usize,
    /// Per-directory hash seed: adversarial hash-key sets cannot chain
    /// into one bucket without knowing it.
    seed: u64,
    /// Serializes grow/finish transitions and owns the table graveyard.
    resize: Mutex<ResizeState>,
    /// Route ART node reclamation in the shards through [`hart_ebr`] —
    /// set when optimistic readers are enabled, off for the pure-locked
    /// ablation so the kill-switch reproduces the original allocator
    /// behavior exactly. Also selects EBR vs graveyard retirement for
    /// drained tables (see the module docs).
    defer_reclaim: bool,
    /// Kill-switch (`HartConfig::full_key_probes`): `true` makes every
    /// probe compare full hash keys down the chain, ignoring the
    /// fingerprint arrays (which are still maintained — the flag selects
    /// the probe strategy, not the format).
    full_key_probes: bool,
    /// Observability sink for grow/drain/finish events and lock-wait
    /// timing; an inert [`hart_obs::Recorder`] until [`Directory::set_recorder`].
    obs: hart_obs::Recorder,
    /// Generation of the shard *set* (not shard contents): bumped once per
    /// shard publish and once per unlink, never by migration (which moves
    /// existing entries between tables). Stamps [`Directory::scan_cache`].
    scan_gen: AtomicU64,
    /// `(generation, sorted shard list)` for ordered scans — rebuilt
    /// lazily when `scan_gen` moved, so steady-state scans skip the
    /// full-directory walk and sort entirely.
    scan_cache: RwLock<(u64, Arc<ShardList>)>,
}

/// Sorted `(hash key, shard)` snapshot held by the scan cache.
pub(crate) type ShardList = Vec<(InlineKey, Arc<Shard>)>;

/// Keeps the table pointers a directory operation loaded dereferenceable.
///
/// * `Pin`: an EBR pin — retired tables outlive it.
/// * `Lock`: the resize lock — tables are only retired under it, so
///   holding it serializes against retirement. Fallback when all EBR
///   reader slots are taken.
/// * `None`: locked-reads mode — retired tables go to the graveyard and
///   live until the directory drops.
enum DirGuard<'a> {
    Pin(#[allow(dead_code)] hart_ebr::Guard),
    Lock(#[allow(dead_code)] MutexGuard<'a, ResizeState>),
    None,
}

impl DirGuard<'_> {
    /// Whether the holder may take the resize lock (grow, finish); taking
    /// it twice would deadlock.
    fn may_resize(&self) -> bool {
        !matches!(self, DirGuard::Lock(_))
    }
}

#[inline]
fn fnv1a_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Seed entropy without an RNG dependency: wall clock, a stack address and
/// a process-wide counter, finalized with splitmix64.
fn random_seed() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let stack = 0u8;
    let mut x = t
        ^ (&stack as *const u8 as u64).rotate_left(32)
        ^ COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Directory {
    /// `buckets` must be a power of two (validated by `HartConfig`) — the
    /// *initial* size when `resize_threshold > 0`, the permanent size when
    /// it is `0`. `defer_reclaim` enables epoch-based reclamation inside
    /// the shards, required whenever lock-free readers may be active.
    /// `full_key_probes` disables the fingerprint probe filter (the
    /// `HartConfig::with_full_key_probes` kill-switch).
    pub fn new(
        buckets: usize,
        resize_threshold: usize,
        defer_reclaim: bool,
        full_key_probes: bool,
    ) -> Directory {
        Directory::with_seed(
            buckets,
            resize_threshold,
            defer_reclaim,
            full_key_probes,
            random_seed(),
        )
    }

    /// [`Directory::new`] with a fixed hash seed (tests, reproducibility).
    pub fn with_seed(
        buckets: usize,
        resize_threshold: usize,
        defer_reclaim: bool,
        full_key_probes: bool,
        seed: u64,
    ) -> Directory {
        Directory {
            current: AtomicPtr::new(Box::into_raw(Box::new(Table::new(buckets)))),
            old: AtomicPtr::new(ptr::null_mut()),
            entries: AtomicUsize::new(0),
            grows: AtomicU64::new(0),
            resize_threshold,
            seed,
            resize: Mutex::new_ranked(
                ResizeState::default(),
                parking_lot::rank::DIR_RESIZE,
                false,
                "Directory.resize",
            ),
            defer_reclaim,
            full_key_probes,
            obs: hart_obs::Recorder::disabled(),
            scan_gen: AtomicU64::new(0),
            scan_cache: RwLock::new_ranked(
                (0, Arc::new(Vec::new())),
                parking_lot::rank::DIR_SCAN_CACHE,
                false,
                "Directory.scan_cache",
            ),
        }
    }

    /// Route directory events (grows, bucket drains, migration finishes,
    /// shard lock waits) into `rec`. Called once at tree construction,
    /// before the directory is shared.
    pub fn set_recorder(&mut self, rec: hart_obs::Recorder) {
        self.obs = rec;
    }

    #[inline]
    fn hash(&self, hk: &[u8]) -> u64 {
        fnv1a_seeded(self.seed, hk)
    }

    /// Protect the table pointers for the duration of one operation.
    fn protect(&self) -> DirGuard<'_> {
        if !self.defer_reclaim {
            return DirGuard::None; // graveyard keeps every table alive
        }
        match hart_ebr::pin() {
            Some(g) => DirGuard::Pin(g),
            None => DirGuard::Lock(self.resize.lock()),
        }
    }

    /// Snapshot `(current, old)`. `current` is loaded *before* `old`: a
    /// grow publishes `old` before swapping `current`, so a reader that
    /// observes the new current is guaranteed to also observe the demoted
    /// table, and a reader that observes the pre-grow current at worst
    /// sees it twice.
    ///
    /// The caller must hold a [`DirGuard`] (or an EBR pin) so the returned
    /// references stay valid.
    #[inline]
    fn tables(&self) -> (&Table, Option<&Table>) {
        // SAFETY: `current` is never null and the caller's guard/pin (see
        // doc above) keeps the table from being retired under us.
        let cur = unsafe { &*self.current.load(Ordering::Acquire) };
        let old = self.old.load(Ordering::Acquire);
        let old = if old.is_null() {
            None
        } else {
            // SAFETY: non-null `old` is kept alive by the same guard/pin
            // until `finish_migration` retires it past our epoch.
            Some(unsafe { &*old })
        };
        (cur, old)
    }

    /// Position of `hk` in a committed bucket table. Fingerprint
    /// pre-filter: scan the packed fingerprint array (16 bytes per SIMD
    /// compare, scalar fallback bit-identical) and compare full keys only
    /// at matches. Chains of at most `FP_SCAN_MIN` entries — and every
    /// probe under the `full_key_probes` kill-switch — compare every
    /// chained key directly instead. Pure reads — safe both under a
    /// bucket lock and on a validated optimistic copy.
    fn scan_entries(&self, t: &BucketTable, h: u64, hk: &[u8]) -> Option<usize> {
        if self.full_key_probes || t.entries.len() <= FP_SCAN_MIN {
            return t.entries.iter().position(|(k, _)| k.as_slice() == hk);
        }
        debug_assert_eq!(t.fps.len(), t.entries.len());
        let fp = fingerprint(h);
        let mut base = 0usize;
        for chunk in t.fps.chunks(64) {
            let mut mask = simd::match_byte64(chunk, fp);
            while mask != 0 {
                let i = base + mask.trailing_zeros() as usize;
                mask &= mask - 1;
                self.obs.add(hart_obs::Event::DirFpHit, 1);
                if t.entries[i].0.as_slice() == hk {
                    return Some(i);
                }
                self.obs.add(hart_obs::Event::DirFpFalsePositive, 1);
            }
            base += 64;
        }
        None
    }

    /// Locked probe of one table: the home bucket, then — only when the
    /// home bucket's overflow bit says displaced keys may exist — its
    /// stash bucket. The guards do not overlap: a key never moves between
    /// home and stash within one table, so each probe is independently
    /// authoritative for its region.
    fn find_in(&self, t: &Table, h: u64, hk: &[u8]) -> Option<Arc<Shard>> {
        let bucket = t.bucket(h);
        {
            let g = bucket.table.read();
            if let Some(i) = self.scan_entries(&g, h, hk) {
                return Some(Arc::clone(&g.entries[i].1));
            }
        }
        if !bucket.overflow.load(Ordering::Acquire) {
            return None;
        }
        self.obs.add(hart_obs::Event::DirStashProbe, 1);
        self.stash_find(t, h, hk)
    }

    /// Probe `h`'s stash bucket under its read lock, returning an owned
    /// handle. Only meaningful after a home miss with the overflow bit
    /// set (the caller's job to check).
    fn stash_find(&self, t: &Table, h: u64, hk: &[u8]) -> Option<Arc<Shard>> {
        let g = t.stash_bucket(h).table.read();
        self.scan_entries(&g, h, hk)
            .map(|i| Arc::clone(&g.entries[i].1))
    }

    /// `HashFind` (Algorithm 1 line 2 / Algorithm 4 line 2).
    ///
    /// Two-table discipline: probe `old` first, then `current`. Migration
    /// publishes an entry in the new table before removing it from the old
    /// one, so "absent in old, then absent in current" is a committed
    /// absence — as long as `current` was stable across the probe. A grow
    /// landing mid-probe demotes `cur` and lets a targeted drain move the
    /// key's bucket into a table this probe never visits, so a miss only
    /// commits after revalidating the `current` pointer (exact under the
    /// guard: tables are never freed, hence never reused, while it is
    /// held).
    pub fn get(&self, hk: &[u8]) -> Option<Arc<Shard>> {
        let guard = self.protect();
        let h = self.hash(hk);
        let mut attempts = 0usize;
        loop {
            let (cur, old) = self.tables();
            if let Some(o) = old {
                if guard.may_resize() {
                    // Keep read-only workloads from double-probing forever:
                    // retire `old` if writers drained it but never finished.
                    self.try_finish(o);
                }
                if let Some(s) = self.find_in(o, h, hk) {
                    return Some(s);
                }
            }
            if let Some(s) = self.find_in(cur, h, hk) {
                return Some(s);
            }
            if ptr::eq(self.current.load(Ordering::Acquire), cur as *const Table) {
                return None;
            }
            // A grow demoted `cur` mid-probe; the key may have been
            // drained into the new current table. Re-snapshot and retry —
            // but not unboundedly: each retry requires another grow to
            // land mid-probe, and under a sustained grow storm this loop
            // could spin while holding its EBR pin. After the limit,
            // serialize against the storm instead. (A `Lock` guard
            // already holds the resize lock, so `current` cannot move and
            // the limit is unreachable for it.)
            attempts += 1;
            if attempts >= MISS_RETRY_LIMIT && guard.may_resize() {
                return self.get_resize_locked(h, hk);
            }
        }
    }

    /// Final authoritative probe under the resize lock: grows and
    /// finishes are serialized out, so the two-table snapshot is stable
    /// for the whole probe and a double miss is a committed absence.
    fn get_resize_locked(&self, h: u64, hk: &[u8]) -> Option<Arc<Shard>> {
        let _st = self.resize.lock();
        let (cur, old) = self.tables();
        if let Some(o) = old {
            if let Some(s) = self.find_in(o, h, hk) {
                return Some(s);
            }
        }
        self.find_in(cur, h, hk)
    }

    /// Lock-free probe of one bucket: volatile-copy the bucket table
    /// struct (two fat pointers), validate the bucket version, then scan
    /// the (immutable) committed table.
    ///
    /// # Safety
    /// Caller holds an EBR pin; `bucket` belongs to a table loaded under
    /// that pin.
    unsafe fn probe_raw(&self, bucket: &Bucket, h: u64, hk: &[u8]) -> RawBucketRead {
        let v0 = bucket.version.load(Ordering::Acquire);
        if v0 % 2 == 1 {
            return RawBucketRead::Retry;
        }
        // Copy the table struct without the lock; a concurrent swap can
        // tear it, which the version re-check below detects before the
        // copy is dereferenced.
        let table_mu: MaybeUninit<BucketTable> =
            // pmlint: guarded-ok(the audited raw probe door: the volatile copy is validated against the bucket seqlock version before any field is trusted)
            ptr::read_volatile(bucket.table.data_ptr() as *const MaybeUninit<BucketTable>);
        fence(Ordering::Acquire);
        if bucket.version.load(Ordering::Relaxed) != v0 {
            return RawBucketRead::Retry;
        }
        // Validated: this is a committed table. Tables are immutable once
        // published, so scanning it needs no further checks.
        let table: &BucketTable = &*table_mu.as_ptr();
        match self.scan_entries(table, h, hk) {
            Some(i) => RawBucketRead::Found(Arc::as_ptr(&table.entries[i].1)),
            None => RawBucketRead::Absent,
        }
    }

    /// Lock-free probe of one *table*: home bucket, then its stash bucket
    /// when the overflow bit is visible. The bit is set with `Release`
    /// *after* the stash entry publishes, so a reader that misses home and
    /// loads the bit false can only be racing the displacing insert's
    /// linearization point.
    ///
    /// # Safety
    /// Same contract as [`Directory::probe_raw`].
    unsafe fn probe_table_raw(&self, t: &Table, h: u64, hk: &[u8]) -> RawBucketRead {
        let bucket = t.bucket(h);
        match self.probe_raw(bucket, h, hk) {
            RawBucketRead::Absent => {}
            found_or_retry => return found_or_retry,
        }
        if !bucket.overflow.load(Ordering::Acquire) {
            return RawBucketRead::Absent;
        }
        self.obs.add(hart_obs::Event::DirStashProbe, 1);
        self.probe_raw(t.stash_bucket(h), h, hk)
    }

    /// Lock-free `HashFind` for the optimistic read path.
    ///
    /// A miss is only committed while `current` is stable (see
    /// [`Directory::get`]): after a double-table miss the `current`
    /// pointer is revalidated, and the probe restarts if a grow moved it
    /// mid-probe — otherwise a concurrent grow + targeted drain could
    /// relocate the key into a table this probe never visits and a
    /// continuously-present key would read as absent. Bounded retries;
    /// persistent interference degrades to [`RawBucketRead::Retry`] and
    /// the caller's locked fallback.
    ///
    /// # Safety
    /// The caller must hold an [`hart_ebr`] pin for as long as it uses the
    /// returned shard pointer: retired entry tables and bucket arrays (and
    /// the shards they reference) stay alive only until the pin is
    /// released. The pin also pins table addresses, making the pointer
    /// revalidation above exact.
    pub unsafe fn get_raw(&self, hk: &[u8]) -> RawBucketRead {
        let h = self.hash(hk);
        for _ in 0..4 {
            let (cur, old) = self.tables();
            if let Some(o) = old {
                // Read paths retire a fully-drained table too, so a
                // workload that turns read-only after a grow does not
                // double-probe forever (O(1) check, locks only when the
                // drain is actually complete).
                self.try_finish(o);
                match self.probe_table_raw(o, h, hk) {
                    RawBucketRead::Absent => {} // fall through to current
                    found_or_retry => return found_or_retry,
                }
            }
            match self.probe_table_raw(cur, h, hk) {
                RawBucketRead::Absent => {
                    if ptr::eq(self.current.load(Ordering::Acquire), cur as *const Table) {
                        return RawBucketRead::Absent;
                    }
                    // Grow raced the probe; re-snapshot both tables.
                }
                found_or_retry => return found_or_retry,
            }
        }
        RawBucketRead::Retry
    }

    /// Publish one entry into table `cur`, honoring [`BUCKET_CAP`]: the
    /// home bucket if it has room, otherwise the stash bucket (setting the
    /// home bucket's overflow bit *after* the stash entry is installed, so
    /// a probe that sees the bit clear cannot miss a published entry).
    ///
    /// Lock order within one table is home-then-stash; callers that
    /// already hold locks in another table must take them table-by-table
    /// in migration order (old before current) — all bucket locks share
    /// the chained `BUCKET_ENTRIES` rank.
    fn publish_into(&self, cur: &Table, k: &InlineKey, s: &Arc<Shard>) {
        let h = self.hash(k.as_slice());
        let nb = cur.bucket(h);
        let mut ng = nb.table.write();
        if ng.len() < BUCKET_CAP {
            let next = push_entry(&ng, h, (*k, Arc::clone(s)));
            nb.install(&mut ng, next);
            return;
        }
        // Home full: displace into the stash, then make the bit visible.
        // Both installs happen under the home bucket's write lock (the
        // stash-mutation invariant in the module docs).
        let sb = cur.stash_bucket(h);
        {
            let mut sg = sb.table.write();
            let next = push_entry(&sg, h, (*k, Arc::clone(s)));
            sb.install(&mut sg, next);
        }
        nb.overflow.store(true, Ordering::Release);
        self.obs.add(hart_obs::Event::DirStashSpill, 1);
    }

    /// Drain one `old` bucket — home chain *and* its displaced stash
    /// entries — into the current table. Entries are published in the new
    /// table *before* the old bucket empties, so old-then-current probes
    /// never miss. No-op if already drained.
    ///
    /// While we hold an un-migrated old bucket's write lock, the migration
    /// cannot finish (the finisher checks every bucket's flag) and no
    /// second grow can start (it requires `old == null`), so `current` is
    /// stable for the duration.
    fn migrate_bucket(&self, o: &Table, idx: usize) {
        let bucket = &o.buckets[idx];
        if bucket.migrated.load(Ordering::Acquire) {
            return;
        }
        let mut g = bucket.table.write();
        if bucket.migrated.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: `current` is never null, and a table demoted to `old`
        // (where this bucket lives) is only retired after every bucket —
        // including this locked one — has drained.
        let cur = unsafe { &*self.current.load(Ordering::Acquire) };
        for (k, s) in g.entries.iter() {
            self.publish_into(cur, k, s);
        }
        // Displaced part of the chain: every key homed here stashes in one
        // deterministic stash bucket (`stash_mask` folds the home index),
        // and the overflow bit is sticky, so "bit clear under the home
        // lock" proves there is nothing to drain.
        if bucket.overflow.load(Ordering::Acquire) {
            let sb = &o.stash[(idx as u64 & o.stash_mask) as usize];
            let mut sg = sb.table.write();
            let homed: Vec<usize> = sg
                .entries
                .iter()
                .enumerate()
                .filter(|(_, (k, _))| (self.hash(k.as_slice()) & o.mask) as usize == idx)
                .map(|(i, _)| i)
                .collect();
            for &i in &homed {
                let (k, s) = &sg.entries[i];
                self.publish_into(cur, k, s);
            }
            if !homed.is_empty() {
                let next = remove_at(&sg, &homed);
                sb.install(&mut sg, next);
            }
        }
        if g.len() > 0 {
            bucket.install(&mut g, BucketTable::empty());
        }
        bucket.migrated.store(true, Ordering::Release);
        // Exactly-once per bucket: the flag double-check above means only
        // one caller reaches here for each bucket.
        o.migrated_count.fetch_add(1, Ordering::AcqRel);
        self.obs.add(hart_obs::Event::DirDrain, 1);
    }

    /// Retire `o` if every one of its buckets has drained — an O(1)
    /// counter check, so cheap enough for read paths. Best-effort: bails
    /// if the resize lock is contended (the holder, or any later
    /// operation, will come back through here).
    fn try_finish(&self, o: &Table) {
        if o.migrated_count.load(Ordering::Acquire) >= o.buckets.len() {
            self.finish_migration(o as *const Table as *mut Table);
        }
    }

    /// Cooperatively drain up to `stride` old buckets; finish the
    /// migration once the walker has passed the end and every bucket's
    /// flag is set. Called by directory writers holding a non-`Lock`
    /// guard.
    fn help_migrate(&self, stride: usize) {
        let old_ptr = self.old.load(Ordering::Acquire);
        if old_ptr.is_null() {
            return;
        }
        // SAFETY: a non-null `old` stays allocated until `finish_migration`
        // under the resize lock, which cannot complete while this bucket
        // walk still holds entry locks inside it.
        let o = unsafe { &*old_ptr };
        let len = o.buckets.len();
        for _ in 0..stride {
            let i = o.migrate_next.fetch_add(1, Ordering::Relaxed);
            if i >= len {
                break;
            }
            self.migrate_bucket(o, i);
        }
        self.try_finish(o);
    }

    /// Retire `old_ptr` once every one of its buckets has drained. Safe to
    /// race: only the caller that still observes it as `old` under the
    /// resize lock retires it. Best-effort on contention — finishing is
    /// idempotent and every later write or lookup retries via
    /// [`Directory::try_finish`].
    fn finish_migration(&self, old_ptr: *mut Table) {
        let Some(mut st) = self.resize.try_lock() else {
            return; // holder (or a later op) will finish
        };
        if self.old.load(Ordering::Acquire) != old_ptr {
            return; // someone else finished
        }
        // SAFETY: we hold the resize lock and just confirmed `old` still
        // equals `old_ptr`, so nobody else can retire it first.
        let o = unsafe { &*old_ptr };
        if o.migrated_count.load(Ordering::Acquire) < o.buckets.len() {
            // A drain is still mid-flight; it (or the next operation)
            // will come back through here.
            return;
        }
        debug_assert!(o.buckets.iter().all(|b| b.migrated.load(Ordering::Acquire)));
        self.old.store(ptr::null_mut(), Ordering::Release);
        self.obs.add(hart_obs::Event::DirFinish, 1);
        self.obs.resize_finished();
        // SAFETY: `old_ptr` came from `Box::into_raw` at grow time and was
        // just unlinked under the resize lock, so this is the unique owner.
        let boxed = unsafe { Box::from_raw(old_ptr) };
        if self.defer_reclaim {
            // Pinned readers may still probe the drained buckets; EBR
            // frees the array once their epochs pass. Pinless fallback
            // readers hold the resize lock, which we are holding now.
            hart_ebr::defer_drop(boxed);
        } else {
            // Locked mode: readers take no pins, so the array must outlive
            // any probe that loaded it — park it until the directory
            // drops. Doubling bounds the graveyard below one current
            // table's worth of bucket headers.
            st.graveyard.push(boxed);
        }
    }

    /// Would doubling `t` actually split the chain homed at `h`'s bucket?
    /// True iff the chain's keys (home bucket plus displaced stash
    /// entries) disagree on the next mask bit. An unsplittable chain —
    /// keys colliding on more low bits than one doubling adds — must not
    /// trigger a grow: the old guard (`len < entries * 4`) both let such
    /// chains cascade doublings that could never shorten them *and*
    /// suppressed legitimate triggers on small, lightly-loaded tables.
    ///
    /// Takes only bucket read locks; called *before* the resize lock
    /// (rank order: `DIR_RESIZE` < `BUCKET_ENTRIES`). The answer can go
    /// stale the instant the locks drop — acceptable, because the trigger
    /// is heuristic and the chain re-evaluates on its next insert.
    fn doubling_splits(&self, t: &Table, h: u64) -> bool {
        let split_bit = t.mask + 1;
        let mut seen_zero = false;
        let mut seen_one = false;
        let mut note = |kh: u64| {
            if kh & split_bit == 0 {
                seen_zero = true;
            } else {
                seen_one = true;
            }
        };
        let bucket = t.bucket(h);
        {
            let g = bucket.table.read();
            for (k, _) in g.entries.iter() {
                note(self.hash(k.as_slice()));
            }
        }
        if bucket.overflow.load(Ordering::Acquire) {
            let g = t.stash_bucket(h).table.read();
            for (k, _) in g.entries.iter() {
                let kh = self.hash(k.as_slice());
                if kh & t.mask == h & t.mask {
                    note(kh);
                }
            }
        }
        seen_zero && seen_one
    }

    /// Double the bucket array if `seen` is still the current table and
    /// the trigger (load factor, or one pathological chain that a doubling
    /// would split) still holds. `h` is the hash whose chain reached
    /// `chain_len`.
    fn maybe_grow(&self, seen: *const Table, h: u64, chain_len: usize) {
        if self.resize_threshold == 0 {
            return;
        }
        let entries = self.entries.load(Ordering::Relaxed);
        // SAFETY: the caller observed `seen` as the current table under its
        // guard, which keeps the table alive for this read.
        let t = unsafe { &*seen };
        let len = t.buckets.len();
        let overloaded = entries > self.resize_threshold.saturating_mul(len);
        let chained = !overloaded && chain_len > CHAIN_LIMIT && self.doubling_splits(t, h);
        if !overloaded && !chained {
            return;
        }
        let _st = self.resize.lock();
        if !self.old.load(Ordering::Acquire).is_null() {
            return; // previous migration still draining
        }
        if !ptr::eq(self.current.load(Ordering::Acquire), seen) {
            return; // raced another grow; its trigger re-evaluates
        }
        let next = Box::into_raw(Box::new(Table::new(len * 2)));
        // Publish order matters: `old` first, then `current` (see
        // `Directory::tables`). Entries stay put; writers drain them
        // incrementally from here on.
        self.old.store(seen as *mut Table, Ordering::Release);
        self.current.store(next, Ordering::Release);
        self.grows.fetch_add(1, Ordering::Relaxed);
        self.obs.add(hart_obs::Event::DirGrow, 1);
        self.obs.resize_started();
    }

    /// `HashFind` + `NewART` + `HashInsert` (Algorithm 1 lines 2–5).
    pub fn get_or_insert(&self, hk: &[u8]) -> Arc<Shard> {
        let guard = self.protect();
        let h = self.hash(hk);
        if guard.may_resize() {
            self.help_migrate(MIGRATE_STRIDE);
        }
        loop {
            let (cur, old) = self.tables();
            if let Some(o) = old {
                // Drain the bucket our key lives in, making `cur` the
                // single authority for `hk` before we lock it.
                self.migrate_bucket(o, (h & o.mask) as usize);
                if guard.may_resize() {
                    self.try_finish(o);
                }
            }
            let bucket = cur.bucket(h);
            let mut g = bucket.table.write();
            // Revalidate under the lock: a concurrent grow may have
            // demoted `cur`, and a concurrent drain may have emptied this
            // bucket into an even newer table.
            if !ptr::eq(self.current.load(Ordering::Acquire), cur)
                || bucket.migrated.load(Ordering::Acquire)
            {
                continue;
            }
            if let Some(i) = self.scan_entries(&g, h, hk) {
                return Arc::clone(&g.entries[i].1);
            }
            // Home miss. Displaced keys only exist when the overflow bit
            // is set, and all stash mutations for this chain happen under
            // the home lock we hold — so the stash read below is
            // authoritative, and skipping it on a clear bit is sound.
            if bucket.overflow.load(Ordering::Acquire) {
                if let Some(s) = self.stash_find(cur, h, hk) {
                    return s;
                }
            }
            let mut art = Art::new();
            art.set_deferred_reclaim(self.defer_reclaim);
            let shard = Arc::new(Shard::new(art));
            let entry = (InlineKey::from_slice(hk), Arc::clone(&shard));
            let chain_len = if g.len() < BUCKET_CAP {
                let next = push_entry(&g, h, entry);
                let chain_len = next.len();
                bucket.install(&mut g, next);
                chain_len
            } else {
                // Home full: displace into the stash (install first, then
                // the Release bit — same protocol as `publish_into`). The
                // effective chain length counts home plus the displaced
                // keys homed here, so the chain trigger still sees
                // pathological growth hidden in the stash.
                let sb = cur.stash_bucket(h);
                let displaced_here;
                {
                    let mut sg = sb.table.write();
                    let next = push_entry(&sg, h, entry);
                    displaced_here = next
                        .entries
                        .iter()
                        .filter(|(k, _)| self.hash(k.as_slice()) & cur.mask == h & cur.mask)
                        .count();
                    sb.install(&mut sg, next);
                }
                bucket.overflow.store(true, Ordering::Release);
                self.obs.add(hart_obs::Event::DirStashSpill, 1);
                BUCKET_CAP + displaced_here
            };
            self.entries.fetch_add(1, Ordering::Relaxed);
            // Release-ordered after the entry publish, and *before* the
            // caller's first key insert can commit — a scan that starts
            // after that commit therefore loads a generation past this
            // bump and rebuilds its cached shard list (see
            // `shards_sorted_cached`).
            self.scan_gen.fetch_add(1, Ordering::Release);
            drop(g);
            if guard.may_resize() {
                self.maybe_grow(cur as *const Table, h, chain_len);
            }
            return shard;
        }
    }

    /// "HART will free the ART if it becomes empty" (Algorithm 5 lines
    /// 15–16). Returns `true` if the shard was unlinked.
    pub fn remove_if_empty(&self, hk: &[u8]) -> bool {
        let guard = self.protect();
        let h = self.hash(hk);
        if guard.may_resize() {
            self.help_migrate(MIGRATE_STRIDE);
        }
        loop {
            let (cur, old) = self.tables();
            if let Some(o) = old {
                self.migrate_bucket(o, (h & o.mask) as usize);
                if guard.may_resize() {
                    self.try_finish(o);
                }
            }
            let bucket = cur.bucket(h);
            let mut g = bucket.table.write();
            if !ptr::eq(self.current.load(Ordering::Acquire), cur)
                || bucket.migrated.load(Ordering::Acquire)
            {
                continue;
            }
            if let Some(pos) = self.scan_entries(&g, h, hk) {
                {
                    let shard = &g.entries[pos].1;
                    let mut sg = shard.write_observed(&self.obs);
                    if !sg.art.is_empty() || sg.dead {
                        return false;
                    }
                    sg.dead = true;
                }
                let next = remove_at(&g, &[pos]);
                bucket.install(&mut g, next);
                self.entries.fetch_sub(1, Ordering::Relaxed);
                // Stale cached lists keep an `Arc` to the shard, but it is
                // `dead` and empty by the check above, so scans skip it;
                // the bump retires the list at the next cache probe.
                self.scan_gen.fetch_add(1, Ordering::Release);
                return true;
            }
            // Home miss: the key can only live in the stash, and only if
            // the overflow bit says some key of this chain was displaced.
            // Unlinking from the stash happens under the home write lock
            // (still held), per the stash-mutation invariant.
            if !bucket.overflow.load(Ordering::Acquire) {
                return false;
            }
            let sb = cur.stash_bucket(h);
            let mut sg = sb.table.write();
            let Some(pos) = self.scan_entries(&sg, h, hk) else {
                return false;
            };
            {
                let shard = &sg.entries[pos].1;
                let mut swg = shard.write_observed(&self.obs);
                if !swg.art.is_empty() || swg.dead {
                    return false;
                }
                swg.dead = true;
            }
            let next = remove_at(&sg, &[pos]);
            sb.install(&mut sg, next);
            self.entries.fetch_sub(1, Ordering::Relaxed);
            self.scan_gen.fetch_add(1, Ordering::Release);
            return true;
        }
    }

    /// Snapshot of all `(hash key, shard)` pairs, sorted by hash key — the
    /// backbone of the ordered-scan extension and of statistics. Holds the
    /// resize lock so the table set is stable for the walk; migration-
    /// window duplicates are dropped after the sort.
    pub fn shards_sorted(&self) -> Vec<(InlineKey, Arc<Shard>)> {
        let _st = self.resize.lock();
        let (cur, old) = self.tables();
        let mut out = Vec::new();
        for t in old.into_iter().chain(std::iter::once(cur)) {
            for b in t.buckets.iter().chain(t.stash.iter()) {
                let g = b.table.read();
                out.extend(g.entries.iter().map(|(k, s)| (*k, Arc::clone(s))));
            }
        }
        out.sort_unstable_by_key(|a| a.0);
        out.dedup_by_key(|a| a.0);
        out
    }

    /// Cached [`Directory::shards_sorted`]: the sorted list is rebuilt
    /// only when the shard *set* changed (`scan_gen` — new hash prefix or
    /// shard unlink; migrations do not count), so a steady-state ordered
    /// scan costs one generation load plus an `Arc` clone instead of a
    /// full bucket walk and sort.
    ///
    /// Staleness is bounded by commit order: a shard is published and the
    /// generation bumped *before* its first key's insert returns, so a
    /// scan that loads the generation after that insert committed sees
    /// the bump and rebuilds; a scan overlapping the insert may use the
    /// older list, indistinguishable from the scan running first.
    /// Unlinked shards linger in stale lists but are `dead` (and empty by
    /// the unlink invariant), so the per-shard collectors skip them.
    pub fn shards_sorted_cached(&self) -> Arc<ShardList> {
        let gen = self.scan_gen.load(Ordering::Acquire);
        {
            let g = self.scan_cache.read();
            if g.0 == gen {
                return Arc::clone(&g.1);
            }
        }
        // Rebuild before taking the write lock: `shards_sorted` acquires
        // the resize and bucket locks, and DIR_SCAN_CACHE ranks below
        // both, so it must never be held across them. The snapshot is at
        // least as new as `gen`; stamping it `gen` is conservative (a set
        // change that landed mid-build just forces one more rebuild).
        let list = Arc::new(self.shards_sorted());
        let mut g = self.scan_cache.write();
        if g.0 < gen {
            *g = (gen, Arc::clone(&list));
        }
        list
    }

    /// Number of live shards (= ARTs = max concurrent writers).
    pub fn shard_count(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// Buckets in the current table (observability / tests / stats).
    pub fn bucket_count(&self) -> usize {
        let _st = self.resize.lock();
        // SAFETY: `current` is never null, and holding the resize lock
        // blocks any concurrent grow from swapping and retiring it.
        unsafe { &*self.current.load(Ordering::Acquire) }
            .buckets
            .len()
    }

    /// Completed grow operations since creation.
    pub fn grow_count(&self) -> u64 {
        self.grows.load(Ordering::Relaxed)
    }

    /// True while a demoted table is still draining into the current one
    /// (observability / tests).
    pub fn migration_in_progress(&self) -> bool {
        !self.old.load(Ordering::Acquire).is_null()
    }

    /// DRAM bytes of the directory and every ART's internal nodes, for the
    /// Fig. 10b experiment. Counts both live tables and the graveyard.
    pub fn memory_bytes(&self) -> usize {
        let mut total = size_of::<Self>();
        {
            let st = self.resize.lock();
            let (cur, old) = self.tables();
            let table_bytes = |t: &Table| (t.buckets.len() + t.stash.len()) * size_of::<Bucket>();
            total += table_bytes(cur);
            if let Some(o) = old {
                total += table_bytes(o);
            }
            total += st.graveyard.iter().map(|t| table_bytes(t)).sum::<usize>();
        }
        for (_, shard) in self.shards_sorted() {
            // +1: the entry's fingerprint byte in the packed array.
            total += size_of::<Entry>() + 1 + size_of::<Shard>() + shard.read().art.memory_bytes();
        }
        total
    }

    /// Debug/test helper: every leaf pointer reachable from the directory.
    pub fn all_leaves(&self, resolver: &PmResolver<'_>) -> Vec<PmPtr> {
        let _ = resolver; // traversal does not need key resolution
        let mut out = Vec::new();
        for (_, shard) in self.shards_sorted() {
            shard.read().art.for_each(|&leaf| out.push(leaf));
        }
        out
    }
}

impl Drop for Directory {
    fn drop(&mut self) {
        // Exclusive access: free both live tables; the graveyard drops
        // with the mutex.
        let cur = *self.current.get_mut();
        // SAFETY: `&mut self` in drop means no reader or writer remains;
        // `current` uniquely owns its table here.
        unsafe { drop(Box::from_raw(cur)) };
        let old = *self.old.get_mut();
        if !old.is_null() {
            // SAFETY: same exclusivity; a non-null `old` is the only other
            // owning pointer and is dropped exactly once.
            unsafe { drop(Box::from_raw(old)) };
        }
    }
}

// SAFETY: the raw pointers are owning handles to heap tables; all access
// is synchronized by the atomics + locks above.
unsafe impl Send for Directory {}
// SAFETY: see the Send rationale — shared access goes through the seqlock
// validate/retry protocol or the resize lock.
unsafe impl Sync for Directory {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fixed-size directory with a deterministic seed, like the pre-resize
    /// default.
    fn fixed(buckets: usize) -> Directory {
        Directory::with_seed(buckets, 0, true, false, 0)
    }

    /// Aggressively resizing directory (load factor 1, deterministic seed).
    fn resizing(buckets: usize) -> Directory {
        Directory::with_seed(buckets, 1, true, false, 0)
    }

    /// First `n` u32-LE keys whose seeded hash satisfies `pred` — the
    /// engine behind the deterministic collision tests (the per-directory
    /// seed is fixed here, so collisions can be precomputed).
    fn colliding_keys(d: &Directory, n: usize, pred: impl Fn(u64) -> bool) -> Vec<[u8; 4]> {
        let mut out = Vec::with_capacity(n);
        for x in 0u32.. {
            let hk = x.to_le_bytes();
            if pred(d.hash(&hk)) {
                out.push(hk);
                if out.len() == n {
                    return out;
                }
            }
        }
        unreachable!()
    }

    #[test]
    fn get_or_insert_is_idempotent() {
        let d = fixed(16);
        let a = d.get_or_insert(b"AA");
        let b = d.get_or_insert(b"AA");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(d.shard_count(), 1);
        assert!(d.get(b"BB").is_none());
    }

    /// Resolver stub: the first insert into an empty ART never resolves a
    /// key, so lookups are irrelevant here.
    struct StubResolver;
    impl hart_art::KeyResolver<PmPtr> for StubResolver {
        fn load_key(&self, _: &PmPtr) -> InlineKey {
            InlineKey::from_slice(b"x")
        }
    }

    #[test]
    fn remove_if_empty_only_removes_empty() {
        let d = fixed(16);
        let s = d.get_or_insert(b"AA");
        s.write().art.insert(&StubResolver, b"x", PmPtr(64));
        assert!(!d.remove_if_empty(b"AA"), "non-empty shard must stay");
        assert_eq!(d.shard_count(), 1);
    }

    #[test]
    fn remove_marks_dead() {
        let d = fixed(16);
        let s = d.get_or_insert(b"AA");
        assert!(d.remove_if_empty(b"AA"));
        assert!(s.read().dead);
        assert_eq!(d.shard_count(), 0);
        // A new shard under the same hash key is a fresh object.
        let s2 = d.get_or_insert(b"AA");
        assert!(!Arc::ptr_eq(&s, &s2));
    }

    #[test]
    fn shards_sorted_orders_by_key() {
        let d = fixed(4); // force collisions
        for hk in [b"zz".as_slice(), b"aa", b"mm", b"ab"] {
            d.get_or_insert(hk);
        }
        let keys: Vec<Vec<u8>> = d
            .shards_sorted()
            .iter()
            .map(|(k, _)| k.as_slice().to_vec())
            .collect();
        assert_eq!(
            keys,
            vec![
                b"aa".to_vec(),
                b"ab".to_vec(),
                b"mm".to_vec(),
                b"zz".to_vec()
            ]
        );
    }

    #[test]
    fn memory_accounting_is_monotone() {
        let d = fixed(16);
        let m0 = d.memory_bytes();
        d.get_or_insert(b"AA");
        let m1 = d.memory_bytes();
        assert!(m1 > m0);
    }

    #[test]
    fn write_guard_bumps_version_by_two() {
        let d = fixed(16);
        let s = d.get_or_insert(b"AA");
        let v0 = s.version();
        assert_eq!(v0 % 2, 0);
        {
            let _g = s.write();
            assert_eq!(
                s.version.load(Ordering::SeqCst),
                v0 + 1,
                "odd inside the section"
            );
        }
        assert_eq!(s.version(), v0 + 2);
        assert!(s.validate(v0 + 2));
        assert!(!s.validate(v0));
    }

    #[test]
    fn raw_probe_finds_and_misses() {
        let d = fixed(16);
        let s = d.get_or_insert(b"AA");
        let _pin = hart_ebr::pin().expect("slot");
        // SAFETY: `_pin` keeps the probed tables and shard alive.
        unsafe {
            match d.get_raw(b"AA") {
                RawBucketRead::Found(p) => assert_eq!(p, Arc::as_ptr(&s)),
                _ => panic!("expected Found"),
            }
            assert!(matches!(d.get_raw(b"BB"), RawBucketRead::Absent));
        }
    }

    #[test]
    fn cached_snapshot_tracks_shard_set() {
        let d = fixed(4);
        for hk in [b"zz".as_slice(), b"aa", b"mm"] {
            d.get_or_insert(hk);
        }
        let keys = |l: &ShardList| -> Vec<InlineKey> { l.iter().map(|(k, _)| *k).collect() };
        let cached = d.shards_sorted_cached();
        let locked: Vec<InlineKey> = d.shards_sorted().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys(&cached), locked);
        // Steady state: same generation, same list object — no rebuild.
        assert!(Arc::ptr_eq(&cached, &d.shards_sorted_cached()));
        // A new shard bumps the generation and invalidates the cache.
        d.get_or_insert(b"bb");
        let grown = d.shards_sorted_cached();
        assert!(!Arc::ptr_eq(&cached, &grown));
        assert_eq!(
            keys(&grown),
            [b"aa".as_slice(), b"bb", b"mm", b"zz"]
                .map(InlineKey::from_slice)
                .to_vec()
        );
        // So does an unlink.
        assert!(d.remove_if_empty(b"mm"));
        let shrunk = d.shards_sorted_cached();
        assert_eq!(
            keys(&shrunk),
            [b"aa".as_slice(), b"bb", b"zz"]
                .map(InlineKey::from_slice)
                .to_vec()
        );
    }

    /// Satellite: the seeded hash must spread random hash keys evenly — no
    /// bucket more than 4x the mean over 10k keys (FNV-1a quality gate).
    #[test]
    fn bucket_distribution_is_balanced() {
        use rand::{Rng, SeedableRng};
        let n_buckets = 64usize;
        let d = fixed(n_buckets);
        let mask = n_buckets as u64 - 1;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xD15_7A6);
        let mut counts = vec![0usize; n_buckets];
        let n_keys = 10_000usize;
        for _ in 0..n_keys {
            // Random 2-byte hash keys over a printable alphabet, like the
            // paper's workloads.
            let hk = [rng.gen_range(0x21u8..0x7f), rng.gen_range(0x21u8..0x7f)];
            let idx = (d.hash(&hk) & mask) as usize;
            counts[idx] += 1;
        }
        let mean = n_keys as f64 / n_buckets as f64;
        let worst = *counts.iter().max().unwrap() as f64;
        assert!(
            worst <= 4.0 * mean,
            "worst bucket {worst} exceeds 4x mean {mean:.1}: {counts:?}"
        );
    }

    /// Distinct seeds must permute bucket assignment: a key set that
    /// chains into one bucket under seed A spreads out under seed B.
    #[test]
    fn seed_changes_bucket_assignment() {
        let a = Directory::with_seed(64, 0, true, false, 1);
        let b = Directory::with_seed(64, 0, true, false, 2);
        let mask = 63u64;
        let mut diff = 0;
        for x in 0u16..512 {
            let hk = x.to_le_bytes();
            if a.hash(&hk) & mask != b.hash(&hk) & mask {
                diff += 1;
            }
        }
        assert!(diff > 400, "seeds barely change placement ({diff}/512)");
    }

    #[test]
    fn fixed_directory_never_grows() {
        let d = fixed(4);
        for i in 0..256u16 {
            d.get_or_insert(&i.to_le_bytes());
        }
        assert_eq!(d.bucket_count(), 4);
        assert_eq!(d.grow_count(), 0);
        assert_eq!(d.shard_count(), 256);
    }

    #[test]
    fn directory_grows_and_stays_consistent() {
        let d = resizing(4);
        let shards: Vec<_> = (0..512u16)
            .map(|i| d.get_or_insert(&i.to_le_bytes()))
            .collect();
        assert!(
            d.grow_count() >= 5,
            "expected several doublings, got {}",
            d.grow_count()
        );
        assert!(d.bucket_count() >= 256, "bucket count {}", d.bucket_count());
        assert_eq!(d.shard_count(), 512);
        // Every shard is still found, and is the same object.
        for (i, s) in shards.iter().enumerate() {
            let hk = (i as u16).to_le_bytes();
            let got = d.get(&hk).expect("present after growth");
            assert!(
                Arc::ptr_eq(&got, s),
                "key {i} remapped to a different shard"
            );
        }
        // Raw probes agree while a migration may still be draining.
        let _pin = hart_ebr::pin().expect("slot");
        for i in 0..512u16 {
            let hk = i.to_le_bytes();
            // SAFETY: `_pin` above keeps the probed tables alive.
            match unsafe { d.get_raw(&hk) } {
                RawBucketRead::Found(p) => assert_eq!(p, Arc::as_ptr(&shards[i as usize])),
                RawBucketRead::Absent => panic!("key {i} lost"),
                RawBucketRead::Retry => {
                    assert!(d.get(&hk).is_some(), "locked fallback lost key {i}")
                }
            }
        }
        let listed = d.shards_sorted();
        assert_eq!(listed.len(), 512, "snapshot must dedup migration copies");
    }

    #[test]
    fn growth_with_removals_keeps_exact_count() {
        let d = resizing(4);
        for i in 0..300u16 {
            d.get_or_insert(&i.to_le_bytes());
        }
        for i in (0..300u16).step_by(2) {
            assert!(d.remove_if_empty(&i.to_le_bytes()), "key {i}");
        }
        assert_eq!(d.shard_count(), 150);
        for i in 0..300u16 {
            let present = d.get(&i.to_le_bytes()).is_some();
            assert_eq!(present, i % 2 == 1, "key {i}");
        }
        assert_eq!(d.shards_sorted().len(), 150);
    }

    /// Satellite regression: the chain trigger must fire deterministically
    /// on a splittable over-limit chain, regardless of table size or
    /// global load. The old guard (`len < entries * 4`) suppressed it
    /// whenever the table was large relative to the entry count — exactly
    /// the "one pathological chain in a big, lightly-loaded table" case
    /// the trigger exists for.
    #[test]
    fn chain_limit_triggers_growth_without_load() {
        // 512 buckets, absurd load threshold: only the chain trigger can
        // fire. Engineer CHAIN_LIMIT+1 keys into one home bucket (low 9
        // hash bits equal) with both values of the next mask bit present,
        // so one doubling provably splits the chain.
        let d = Directory::with_seed(512, 1_000_000, true, false, 7);
        let target = d.hash(&0u32.to_le_bytes()) & 511;
        let keys = colliding_keys(&d, CHAIN_LIMIT + 1, |h| h & 511 == target);
        assert!(
            keys.iter().any(|k| d.hash(k) & 512 == 0) && keys.iter().any(|k| d.hash(k) & 512 != 0),
            "collision set must disagree on the split bit"
        );
        for hk in &keys {
            d.get_or_insert(hk);
        }
        assert!(
            d.grow_count() >= 1,
            "chain trigger never fired on a splittable over-limit chain"
        );
        for hk in &keys {
            assert!(d.get(hk).is_some(), "key lost across chain-triggered grow");
        }
        hart_ebr::flush_for_tests();
    }

    /// Satellite regression (the other direction): an *unsplittable* chain
    /// — keys agreeing on more low bits than one doubling adds — must not
    /// trigger grows. The old guard let it cascade doublings that could
    /// never shorten the chain.
    #[test]
    fn unsplittable_chain_does_not_cascade_grows() {
        let d = Directory::with_seed(4, 1_000_000, true, false, 7);
        let target = d.hash(&0u32.to_le_bytes()) & 0xFFFF;
        // 20 keys agreeing on the low 16 hash bits: every table up to 64k
        // buckets homes them together, so no doubling from 4 buckets can
        // split the chain and the trigger must stay quiet.
        let keys = colliding_keys(&d, CHAIN_LIMIT + 4, |h| h & 0xFFFF == target);
        let shards: Vec<_> = keys.iter().map(|hk| d.get_or_insert(hk)).collect();
        assert_eq!(d.grow_count(), 0, "unsplittable chain cascaded grows");
        assert_eq!(d.bucket_count(), 4);
        // The chain spilled past BUCKET_CAP into the stash; every key is
        // still reachable by both probe paths.
        assert_eq!(d.shard_count(), keys.len());
        let _pin = hart_ebr::pin().expect("slot");
        for (hk, s) in keys.iter().zip(&shards) {
            let got = d.get(hk).expect("stashed key lost (locked probe)");
            assert!(Arc::ptr_eq(&got, s));
            // SAFETY: `_pin` keeps the probed tables alive.
            match unsafe { d.get_raw(hk) } {
                RawBucketRead::Found(p) => assert_eq!(p, Arc::as_ptr(s)),
                _ => panic!("stashed key lost (raw probe)"),
            }
        }
        hart_ebr::flush_for_tests();
    }

    /// Stash entries must drain with their home bucket during migration
    /// and stay reachable throughout.
    #[test]
    fn stash_drains_with_home_bucket_across_grows() {
        let d = Directory::with_seed(4, 1, true, false, 7);
        let target = d.hash(&0u32.to_le_bytes()) & 3;
        // Over-cap chain in one 4-bucket home (low 2 bits equal) plus
        // filler keys to trip the load-factor trigger repeatedly.
        let chained = colliding_keys(&d, BUCKET_CAP + 8, |h| h & 3 == target);
        for hk in &chained {
            d.get_or_insert(hk);
        }
        for i in 0..512u32 {
            d.get_or_insert(&(0x4000_0000 + i).to_le_bytes());
        }
        assert!(d.grow_count() >= 4, "expected several doublings");
        for hk in &chained {
            assert!(d.get(hk).is_some(), "displaced key lost across grows");
        }
        assert_eq!(d.shard_count(), chained.len() + 512);
        assert_eq!(d.shards_sorted().len(), chained.len() + 512);
        hart_ebr::flush_for_tests();
    }

    /// A fingerprint collision between distinct keys must fall through to
    /// the full key compare: the colliding absent key reads as absent, and
    /// both keys coexist after insertion. The bucket is pre-filled past
    /// `FP_SCAN_MIN` so the probe really takes the filtered path (shorter
    /// chains compare keys directly and never consult fingerprints).
    #[test]
    fn fingerprint_collision_falls_through_to_key_compare() {
        let d = fixed(16);
        // Filler sharing the home bucket but not the 0xAB fingerprint, so
        // any false-present can only come from the a/b collision.
        for f in colliding_keys(&d, FP_SCAN_MIN + 2, |h| {
            h & 15 == 3 && fingerprint(h) != 0xAB
        }) {
            d.get_or_insert(&f);
        }
        // Two distinct keys sharing home bucket AND fingerprint byte.
        let a = colliding_keys(&d, 1, |h| h & 15 == 3 && fingerprint(h) == 0xAB)[0];
        let b = colliding_keys(&d, 2, |h| h & 15 == 3 && fingerprint(h) == 0xAB)[1];
        assert_ne!(a, b);
        let sa = d.get_or_insert(&a);
        assert!(
            d.get(&b).is_none(),
            "fingerprint collision reported a false present"
        );
        let sb = d.get_or_insert(&b);
        assert!(!Arc::ptr_eq(&sa, &sb));
        assert!(Arc::ptr_eq(&d.get(&a).unwrap(), &sa));
        assert!(Arc::ptr_eq(&d.get(&b).unwrap(), &sb));
    }

    /// Kill-switch equivalence at the directory level: identical seed and
    /// operation sequence, identical observable state with fingerprint
    /// probes on and off.
    #[test]
    fn full_key_probe_kill_switch_is_equivalent() {
        let fp = Directory::with_seed(4, 1, true, false, 42);
        let full = Directory::with_seed(4, 1, true, true, 42);
        for i in 0..300u16 {
            fp.get_or_insert(&i.to_le_bytes());
            full.get_or_insert(&i.to_le_bytes());
        }
        for i in (0..300u16).step_by(3) {
            assert_eq!(
                fp.remove_if_empty(&i.to_le_bytes()),
                full.remove_if_empty(&i.to_le_bytes()),
                "unlink outcome diverged at {i}"
            );
        }
        assert_eq!(fp.shard_count(), full.shard_count());
        assert_eq!(fp.bucket_count(), full.bucket_count());
        assert_eq!(fp.grow_count(), full.grow_count());
        for i in 0..300u16 {
            assert_eq!(
                fp.get(&i.to_le_bytes()).is_some(),
                full.get(&i.to_le_bytes()).is_some(),
                "presence diverged at {i}"
            );
        }
        let a: Vec<InlineKey> = fp.shards_sorted().into_iter().map(|(k, _)| k).collect();
        let b: Vec<InlineKey> = full.shards_sorted().into_iter().map(|(k, _)| k).collect();
        assert_eq!(a, b);
        hart_ebr::flush_for_tests();
    }

    /// Satellite regression: a get that keeps losing the miss-revalidation
    /// race falls back to the resize-locked probe instead of spinning.
    /// Unit-level: the fallback itself must agree with `get` on presence
    /// and identity, including for stashed keys.
    #[test]
    fn resize_locked_probe_agrees_with_get() {
        let d = Directory::with_seed(4, 1_000_000, true, false, 7);
        let target = d.hash(&0u32.to_le_bytes()) & 3;
        let chained = colliding_keys(&d, BUCKET_CAP + 4, |h| h & 3 == target);
        let shards: Vec<_> = chained.iter().map(|hk| d.get_or_insert(hk)).collect();
        for (hk, s) in chained.iter().zip(&shards) {
            let h = d.hash(hk);
            let got = d.get_resize_locked(h, hk).expect("fallback lost key");
            assert!(Arc::ptr_eq(&got, s));
        }
        let absent = colliding_keys(&d, BUCKET_CAP * 2, |h| h & 3 == target)
            .into_iter()
            .find(|k| !chained.contains(k))
            .unwrap();
        assert!(d.get_resize_locked(d.hash(&absent), &absent).is_none());
    }

    /// Satellite stress: absent-key gets under a sustained grow storm must
    /// terminate (the MISS_RETRY_LIMIT fallback) and never report a
    /// continuously-present key absent.
    #[test]
    fn bounded_get_terminates_under_grow_storm() {
        let d = Arc::new(resizing(4));
        let stable: Vec<[u8; 2]> = (0..32u16).map(|i| i.to_le_bytes()).collect();
        for hk in &stable {
            d.get_or_insert(hk);
        }
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let d = Arc::clone(&d);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut i = 1000u32 + t as u32 * 1_000_000;
                    while !stop.load(Ordering::Relaxed) {
                        d.get_or_insert(&i.to_le_bytes()[..2]);
                        d.get_or_insert(&i.to_le_bytes());
                        i += 1;
                    }
                });
            }
            for _ in 0..2 {
                let d = Arc::clone(&d);
                let stop = Arc::clone(&stop);
                let stable = stable.clone();
                s.spawn(move || {
                    let mut miss = 0xF00Du32;
                    while !stop.load(Ordering::Relaxed) {
                        for hk in &stable {
                            assert!(d.get(hk).is_some(), "false absent under storm");
                        }
                        // Absent keys: must return (bounded), not spin.
                        assert!(d.get(&miss.to_le_bytes()[..3]).is_none());
                        miss = miss.wrapping_add(1);
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(250));
            stop.store(true, Ordering::Relaxed);
        });
        hart_ebr::flush_for_tests();
    }

    /// Satellite: `entries` bookkeeping stays exact — after a concurrent
    /// insert/remove storm, the counter equals both the number of live
    /// shards the snapshot sees and the number of present keys.
    #[test]
    fn entries_counter_stays_exact_after_concurrent_storm() {
        let d = Arc::new(resizing(4));
        let n_threads = 4u32;
        let per = 256u32;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let d = Arc::clone(&d);
                s.spawn(move || {
                    for i in 0..per {
                        let hk = (t * per + i).to_le_bytes();
                        d.get_or_insert(&hk);
                        if i % 2 == 0 {
                            assert!(d.remove_if_empty(&hk), "own empty shard must unlink");
                        }
                        // Churn: re-insert a neighbor's parity-odd key;
                        // idempotent, so the count stays predictable.
                        let other = ((t ^ 1) * per + (i | 1)).to_le_bytes();
                        d.get_or_insert(&other);
                    }
                });
            }
        });
        let expect = (n_threads * per / 2) as usize;
        assert_eq!(d.shard_count(), expect, "entries counter drifted");
        assert_eq!(
            d.shards_sorted().len(),
            expect,
            "snapshot and counter disagree"
        );
        let mut present = 0usize;
        for x in 0..(n_threads * per) {
            if d.get(&x.to_le_bytes()).is_some() {
                present += 1;
            }
        }
        assert_eq!(present, expect);
        hart_ebr::flush_for_tests();
    }

    /// Regression (REVIEW.md): a table drained entirely by *targeted*
    /// drains (stride walker never ran, cursor still at 0) must still be
    /// retired — and a read-only workload must be able to do it, or every
    /// lookup double-probes two tables forever.
    #[test]
    fn fully_drained_table_is_retired_by_lookups() {
        let d = resizing(4);
        let mut i = 0u16;
        while d.old.load(Ordering::Acquire).is_null() {
            d.get_or_insert(&i.to_le_bytes());
            i += 1;
            assert!(i < 10_000, "no grow triggered");
        }
        // SAFETY: single-threaded test — nothing can retire `old` between
        // the loop's null check and this dereference.
        let o = unsafe { &*d.old.load(Ordering::Acquire) };
        assert!(
            o.migrate_next.load(Ordering::Acquire) < o.buckets.len(),
            "walker must not have passed the end for this test to bite"
        );
        for idx in 0..o.buckets.len() {
            d.migrate_bucket(o, idx); // targeted drains only
        }
        assert!(d.migration_in_progress(), "nothing has finished it yet");
        assert!(d.get(&0u16.to_le_bytes()).is_some());
        assert!(
            !d.migration_in_progress(),
            "a lookup observing a fully-drained old table must retire it"
        );
        hart_ebr::flush_for_tests();
    }

    /// Regression (REVIEW.md): a key that is continuously present must
    /// never read as absent, even when grows + targeted drains relocate
    /// its bucket mid-probe. Hammers both the locked and the raw lookup
    /// while writers force repeated doublings.
    #[test]
    fn lookup_never_misses_present_key_during_growth() {
        let d = Arc::new(resizing(4));
        let stable: Vec<[u8; 2]> = (0..64u16).map(|i| i.to_le_bytes()).collect();
        for hk in &stable {
            d.get_or_insert(hk);
        }
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let d = Arc::clone(&d);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut i = 1000u16.wrapping_add(t.wrapping_mul(8192));
                    while !stop.load(Ordering::Relaxed) {
                        d.get_or_insert(&i.to_le_bytes());
                        i = i.wrapping_add(1);
                    }
                });
            }
            for _ in 0..2 {
                let d = Arc::clone(&d);
                let stop = Arc::clone(&stop);
                let stable = stable.clone();
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        for hk in &stable {
                            assert!(d.get(hk).is_some(), "false absent (locked probe)");
                            if let Some(_pin) = hart_ebr::pin() {
                                // SAFETY: `_pin` keeps the tables alive.
                                match unsafe { d.get_raw(hk) } {
                                    RawBucketRead::Found(_) | RawBucketRead::Retry => {}
                                    RawBucketRead::Absent => panic!("false absent (raw probe)"),
                                }
                            }
                        }
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(250));
            stop.store(true, Ordering::Relaxed);
        });
        hart_ebr::flush_for_tests();
    }

    /// Regression (REVIEW.md): the scan-facing directory snapshot must
    /// never drop a continuously-live shard, even when grows complete and
    /// drain entries between tables mid-walk — now exercised through the
    /// generation-stamped cache, whose rebuilds race the growing writers.
    #[test]
    fn cached_scan_never_misses_live_shards_during_growth() {
        let d = Arc::new(resizing(4));
        let stable: Vec<[u8; 2]> = (0..64u16).map(|i| i.to_le_bytes()).collect();
        for hk in &stable {
            d.get_or_insert(hk);
        }
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let d = Arc::clone(&d);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut i = 1000u16.wrapping_add(t.wrapping_mul(8192));
                    while !stop.load(Ordering::Relaxed) {
                        d.get_or_insert(&i.to_le_bytes());
                        i = i.wrapping_add(1);
                    }
                });
            }
            {
                let d = Arc::clone(&d);
                let stop = Arc::clone(&stop);
                let stable = stable.clone();
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let list = d.shards_sorted_cached();
                        let snap: std::collections::HashSet<Vec<u8>> =
                            list.iter().map(|(k, _)| k.as_slice().to_vec()).collect();
                        for hk in &stable {
                            assert!(
                                snap.contains(hk.as_slice()),
                                "cached scan dropped live shard {hk:?}"
                            );
                        }
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(250));
            stop.store(true, Ordering::Relaxed);
        });
        hart_ebr::flush_for_tests();
    }

    #[test]
    fn concurrent_growth_is_linearizable() {
        let d = Arc::new(resizing(4));
        let n_threads = 8u16;
        let per = 128u16;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let d = Arc::clone(&d);
                s.spawn(move || {
                    for i in 0..per {
                        let hk = (t * per + i).to_le_bytes();
                        let a = d.get_or_insert(&hk);
                        // Immediate re-probe must find the same shard.
                        let b = d.get(&hk).expect("own insert visible");
                        assert!(Arc::ptr_eq(&a, &b));
                    }
                });
            }
        });
        assert_eq!(d.shard_count(), (n_threads * per) as usize);
        assert!(d.grow_count() >= 4);
        for x in 0..(n_threads * per) {
            assert!(
                d.get(&x.to_le_bytes()).is_some(),
                "key {x} lost after growth"
            );
        }
        hart_ebr::flush_for_tests();
    }
}
