//! The DRAM hash directory mapping hash keys to ARTs (Fig. 1).
//!
//! A fixed bucket array with chaining. Entries are created lazily on first
//! insert of a hash key (Algorithm 1 lines 3–5) and removed when their ART
//! becomes empty (Algorithm 5 lines 15–16). The directory itself is
//! read-mostly: after warm-up, lookups take one bucket read-lock.

use crate::resolver::PmResolver;
use hart_art::Art;
use hart_kv::InlineKey;
use hart_pm::PmPtr;
use parking_lot::RwLock;
use std::mem::size_of;
use std::sync::Arc;

/// One ART plus its liveness flag, guarded by the per-ART reader-writer
/// lock of §III-A.3.
pub(crate) struct ShardInner {
    pub art: Art<PmPtr>,
    /// Set under the write lock when the shard is unlinked from the
    /// directory; writers that raced `get_or_insert` against removal check
    /// it and retry, so no insert can land in an orphaned shard.
    pub dead: bool,
}

pub(crate) type Shard = RwLock<ShardInner>;

type Bucket = Vec<(InlineKey, Arc<Shard>)>;

pub(crate) struct Directory {
    buckets: Box<[RwLock<Bucket>]>,
    mask: u64,
}

#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl Directory {
    /// `buckets` must be a power of two (validated by `HartConfig`).
    pub fn new(buckets: usize) -> Directory {
        Directory {
            buckets: (0..buckets).map(|_| RwLock::new(Vec::new())).collect(),
            mask: buckets as u64 - 1,
        }
    }

    #[inline]
    fn bucket_of(&self, hk: &[u8]) -> &RwLock<Bucket> {
        &self.buckets[(fnv1a(hk) & self.mask) as usize]
    }

    /// `HashFind` (Algorithm 1 line 2 / Algorithm 4 line 2).
    pub fn get(&self, hk: &[u8]) -> Option<Arc<Shard>> {
        let b = self.bucket_of(hk).read();
        b.iter().find(|(k, _)| k.as_slice() == hk).map(|(_, s)| Arc::clone(s))
    }

    /// `HashFind` + `NewART` + `HashInsert` (Algorithm 1 lines 2–5).
    pub fn get_or_insert(&self, hk: &[u8]) -> Arc<Shard> {
        if let Some(s) = self.get(hk) {
            return s;
        }
        let mut b = self.bucket_of(hk).write();
        if let Some((_, s)) = b.iter().find(|(k, _)| k.as_slice() == hk) {
            return Arc::clone(s);
        }
        let shard = Arc::new(RwLock::new(ShardInner { art: Art::new(), dead: false }));
        b.push((InlineKey::from_slice(hk), Arc::clone(&shard)));
        shard
    }

    /// "HART will free the ART if it becomes empty" (Algorithm 5 lines
    /// 15–16). Returns `true` if the shard was unlinked.
    pub fn remove_if_empty(&self, hk: &[u8]) -> bool {
        let mut b = self.bucket_of(hk).write();
        let Some(pos) = b.iter().position(|(k, _)| k.as_slice() == hk) else {
            return false;
        };
        {
            let shard = &b[pos].1;
            let mut g = shard.write();
            if !g.art.is_empty() || g.dead {
                return false;
            }
            g.dead = true;
        }
        b.swap_remove(pos);
        true
    }

    /// Snapshot of all `(hash key, shard)` pairs, sorted by hash key — the
    /// backbone of the ordered-scan extension and of statistics.
    pub fn shards_sorted(&self) -> Vec<(InlineKey, Arc<Shard>)> {
        let mut out = Vec::new();
        for b in self.buckets.iter() {
            let g = b.read();
            out.extend(g.iter().map(|(k, s)| (*k, Arc::clone(s))));
        }
        out.sort_unstable_by_key(|a| a.0);
        out
    }

    /// Number of live shards (= ARTs = max concurrent writers).
    pub fn shard_count(&self) -> usize {
        self.buckets.iter().map(|b| b.read().len()).sum()
    }

    /// DRAM bytes of the directory and every ART's internal nodes, for the
    /// Fig. 10b experiment. `kh` is needed to size the resolver (unused on
    /// this path but kept for symmetry).
    pub fn memory_bytes(&self) -> usize {
        let mut total = size_of::<Self>() + self.buckets.len() * size_of::<RwLock<Bucket>>();
        for b in self.buckets.iter() {
            let g = b.read();
            total += g.capacity() * size_of::<(InlineKey, Arc<Shard>)>();
            for (_, shard) in g.iter() {
                total += size_of::<Shard>() + shard.read().art.memory_bytes();
            }
        }
        total
    }

    /// Debug/test helper: every leaf pointer reachable from the directory.
    pub fn all_leaves(&self, resolver: &PmResolver<'_>) -> Vec<PmPtr> {
        let _ = resolver; // traversal does not need key resolution
        let mut out = Vec::new();
        for (_, shard) in self.shards_sorted() {
            shard.read().art.for_each(|&leaf| out.push(leaf));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_insert_is_idempotent() {
        let d = Directory::new(16);
        let a = d.get_or_insert(b"AA");
        let b = d.get_or_insert(b"AA");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(d.shard_count(), 1);
        assert!(d.get(b"BB").is_none());
    }

    /// Resolver stub: the first insert into an empty ART never resolves a
    /// key, so lookups are irrelevant here.
    struct StubResolver;
    impl hart_art::KeyResolver<PmPtr> for StubResolver {
        fn load_key(&self, _: &PmPtr) -> InlineKey {
            InlineKey::from_slice(b"x")
        }
    }

    #[test]
    fn remove_if_empty_only_removes_empty() {
        let d = Directory::new(16);
        let s = d.get_or_insert(b"AA");
        s.write().art.insert(&StubResolver, b"x", PmPtr(64));
        assert!(!d.remove_if_empty(b"AA"), "non-empty shard must stay");
        assert_eq!(d.shard_count(), 1);
    }

    #[test]
    fn remove_marks_dead() {
        let d = Directory::new(16);
        let s = d.get_or_insert(b"AA");
        assert!(d.remove_if_empty(b"AA"));
        assert!(s.read().dead);
        assert_eq!(d.shard_count(), 0);
        // A new shard under the same hash key is a fresh object.
        let s2 = d.get_or_insert(b"AA");
        assert!(!Arc::ptr_eq(&s, &s2));
    }

    #[test]
    fn shards_sorted_orders_by_key() {
        let d = Directory::new(4); // force collisions
        for hk in [b"zz".as_slice(), b"aa", b"mm", b"ab"] {
            d.get_or_insert(hk);
        }
        let keys: Vec<Vec<u8>> =
            d.shards_sorted().iter().map(|(k, _)| k.as_slice().to_vec()).collect();
        assert_eq!(keys, vec![b"aa".to_vec(), b"ab".to_vec(), b"mm".to_vec(), b"zz".to_vec()]);
    }

    #[test]
    fn memory_accounting_is_monotone() {
        let d = Directory::new(16);
        let m0 = d.memory_bytes();
        d.get_or_insert(b"AA");
        let m1 = d.memory_bytes();
        assert!(m1 > m0);
    }
}
