//! The DRAM hash directory mapping hash keys to ARTs (Fig. 1).
//!
//! A fixed bucket array with chaining. Entries are created lazily on first
//! insert of a hash key (Algorithm 1 lines 3–5) and removed when their ART
//! becomes empty (Algorithm 5 lines 15–16). The directory itself is
//! read-mostly: after warm-up, pessimistic lookups take one bucket
//! read-lock, and the optimistic read path (DESIGN.md §Concurrency) takes
//! none at all.
//!
//! # Seqlock versioning
//!
//! Both levels of the structure carry a version counter for lock-free
//! readers:
//!
//! * each [`Bucket`] — bumped to odd before its entry table is swapped and
//!   back to even after, so a reader can detect a torn copy of the table's
//!   fat pointer;
//! * each [`Shard`] — bumped around *every* write-locked section (the
//!   write guard does it automatically), so a reader can detect any
//!   concurrent mutation of the shard's ART or of the PM records it owns.
//!
//! Bucket entry tables are immutable once published (`Box<[Entry]>`
//! replaced wholesale, never edited in place) and retired through
//! [`hart_ebr`], as are unlinked shards — the two facts that let readers
//! chase raw pointers into them while pinned.

use crate::resolver::PmResolver;
use hart_art::Art;
use hart_kv::InlineKey;
use hart_pm::PmPtr;
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::mem::{size_of, MaybeUninit};
use std::ops::{Deref, DerefMut};
use std::ptr;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

/// One ART plus its liveness flag, guarded by the per-ART reader-writer
/// lock of §III-A.3.
pub(crate) struct ShardInner {
    pub art: Art<PmPtr>,
    /// Set under the write lock when the shard is unlinked from the
    /// directory; writers that raced `get_or_insert` against removal check
    /// it and retry, so no insert can land in an orphaned shard.
    pub dead: bool,
}

/// A directory shard: the per-ART lock of §III-A.3 plus the seqlock epoch
/// counter of the optimistic read path.
pub(crate) struct Shard {
    /// Seqlock version: odd while a write section is open, even when
    /// quiescent. Every acquisition of the write lock is a write section.
    version: AtomicU64,
    inner: RwLock<ShardInner>,
}

impl Shard {
    fn new(art: Art<PmPtr>) -> Shard {
        Shard { version: AtomicU64::new(0), inner: RwLock::new(ShardInner { art, dead: false }) }
    }

    /// Shared (pessimistic) access; does not touch the version.
    pub fn read(&self) -> RwLockReadGuard<'_, ShardInner> {
        self.inner.read()
    }

    /// Exclusive access as a *write section*: the shard version is bumped
    /// odd on acquire and even on release, so optimistic readers retry
    /// around it. Used for every mutation — including value updates that
    /// never touch the ART, since those still change what a concurrent
    /// reader would return for a key.
    pub fn write(&self) -> ShardWriteGuard<'_> {
        let guard = self.inner.write();
        let v = self.version.fetch_add(1, Ordering::AcqRel);
        debug_assert!(v.is_multiple_of(2), "write section already open under the write lock");
        ShardWriteGuard { shard: self, guard }
    }

    /// Current version, `Acquire`-loaded. Even means quiescent.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// True when the version still equals `v0` (an even observation),
    /// with an `Acquire` fence so the caller's preceding data reads cannot
    /// be reordered past the check.
    pub fn validate(&self, v0: u64) -> bool {
        fence(Ordering::Acquire);
        self.version.load(Ordering::Relaxed) == v0
    }

    /// Raw pointer to the lock-protected interior, for validated
    /// optimistic traversal. Dereference only under an [`hart_ebr`] pin and
    /// the copy-validate discipline of `hart_art::search_raw`.
    pub fn inner_ptr(&self) -> *const ShardInner {
        self.inner.data_ptr()
    }
}

/// Write guard that closes the shard's write section on drop.
pub(crate) struct ShardWriteGuard<'a> {
    shard: &'a Shard,
    guard: RwLockWriteGuard<'a, ShardInner>,
}

impl Deref for ShardWriteGuard<'_> {
    type Target = ShardInner;
    fn deref(&self) -> &ShardInner {
        &self.guard
    }
}

impl DerefMut for ShardWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut ShardInner {
        &mut self.guard
    }
}

impl Drop for ShardWriteGuard<'_> {
    fn drop(&mut self) {
        // Close the section (odd -> even) before the lock is released by
        // the inner guard's drop.
        let v = self.shard.version.fetch_add(1, Ordering::AcqRel);
        debug_assert!(v % 2 == 1, "write section must be open");
    }
}

type Entry = (InlineKey, Arc<Shard>);

/// A hash bucket: a versioned, wholesale-replaced entry table.
struct Bucket {
    /// Seqlock version guarding `entries` swaps (odd = swap in progress).
    version: AtomicU64,
    /// The published table. Never mutated in place; writers install a new
    /// boxed slice and retire the old one through the epoch reclaimer.
    entries: RwLock<Box<[Entry]>>,
}

impl Bucket {
    fn new() -> Bucket {
        Bucket { version: AtomicU64::new(0), entries: RwLock::new(Box::new([])) }
    }

    /// Replace the entry table under the (already held) write lock,
    /// retiring the old table so pinned readers can finish scanning it.
    fn install(&self, guard: &mut RwLockWriteGuard<'_, Box<[Entry]>>, next: Box<[Entry]>) {
        let v = self.version.fetch_add(1, Ordering::AcqRel);
        debug_assert!(v.is_multiple_of(2), "bucket swap already in progress");
        let old = std::mem::replace(&mut **guard, next);
        self.version.fetch_add(1, Ordering::AcqRel);
        hart_ebr::defer_drop(old);
    }
}

/// Result of a lock-free bucket probe.
pub(crate) enum RawBucketRead {
    /// The hash key maps to this shard. Valid while the caller's EBR pin is
    /// held.
    Found(*const Shard),
    /// The hash key had no shard at a committed version.
    Absent,
    /// A concurrent swap interfered; retry or fall back to `get`.
    Retry,
}

pub(crate) struct Directory {
    buckets: Box<[Bucket]>,
    mask: u64,
    /// Route ART node reclamation in the shards through [`hart_ebr`] —
    /// set when optimistic readers are enabled, off for the pure-locked
    /// ablation so the kill-switch reproduces the original allocator
    /// behavior exactly.
    defer_reclaim: bool,
}

#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl Directory {
    /// `buckets` must be a power of two (validated by `HartConfig`).
    /// `defer_reclaim` enables epoch-based reclamation inside the shards,
    /// required whenever lock-free readers may be active.
    pub fn new(buckets: usize, defer_reclaim: bool) -> Directory {
        Directory {
            buckets: (0..buckets).map(|_| Bucket::new()).collect(),
            mask: buckets as u64 - 1,
            defer_reclaim,
        }
    }

    #[inline]
    fn bucket_of(&self, hk: &[u8]) -> &Bucket {
        &self.buckets[(fnv1a(hk) & self.mask) as usize]
    }

    /// `HashFind` (Algorithm 1 line 2 / Algorithm 4 line 2).
    pub fn get(&self, hk: &[u8]) -> Option<Arc<Shard>> {
        let b = self.bucket_of(hk).entries.read();
        b.iter().find(|(k, _)| k.as_slice() == hk).map(|(_, s)| Arc::clone(s))
    }

    /// Lock-free `HashFind` for the optimistic read path.
    ///
    /// # Safety
    /// The caller must hold an [`hart_ebr`] pin for as long as it uses the
    /// returned shard pointer: retired entry tables (and the shards they
    /// reference) stay alive only until the pin is released.
    pub unsafe fn get_raw(&self, hk: &[u8]) -> RawBucketRead {
        let bucket = self.bucket_of(hk);
        let v0 = bucket.version.load(Ordering::Acquire);
        if v0 % 2 == 1 {
            return RawBucketRead::Retry;
        }
        // Copy the table's fat pointer without the lock; a concurrent swap
        // can tear it, which the version re-check below detects before the
        // copy is dereferenced.
        let table_mu: MaybeUninit<Box<[Entry]>> =
            ptr::read_volatile(bucket.entries.data_ptr() as *const MaybeUninit<Box<[Entry]>>);
        fence(Ordering::Acquire);
        if bucket.version.load(Ordering::Relaxed) != v0 {
            return RawBucketRead::Retry;
        }
        // Validated: this is a committed table. Tables are immutable once
        // published, so scanning it needs no further checks.
        let table: &[Entry] = &*table_mu.as_ptr();
        match table.iter().find(|(k, _)| k.as_slice() == hk) {
            Some((_, shard)) => RawBucketRead::Found(Arc::as_ptr(shard)),
            None => RawBucketRead::Absent,
        }
    }

    /// Lock-free snapshot of all `(hash key, shard)` pairs, sorted by hash
    /// key — the optimistic counterpart of [`Directory::shards_sorted`].
    /// Falls back to read-locking any bucket whose swaps keep interfering.
    ///
    /// # Safety
    /// Same pin contract as [`Directory::get_raw`].
    pub unsafe fn shards_sorted_raw(&self) -> Vec<(InlineKey, *const Shard)> {
        let mut out = Vec::new();
        for bucket in self.buckets.iter() {
            let mut copied = false;
            for _ in 0..4 {
                let v0 = bucket.version.load(Ordering::Acquire);
                if v0 % 2 == 1 {
                    continue;
                }
                let table_mu: MaybeUninit<Box<[Entry]>> = ptr::read_volatile(
                    bucket.entries.data_ptr() as *const MaybeUninit<Box<[Entry]>>,
                );
                fence(Ordering::Acquire);
                if bucket.version.load(Ordering::Relaxed) != v0 {
                    continue;
                }
                let table: &[Entry] = &*table_mu.as_ptr();
                out.extend(table.iter().map(|(k, s)| (*k, Arc::as_ptr(s))));
                copied = true;
                break;
            }
            if !copied {
                let g = bucket.entries.read();
                out.extend(g.iter().map(|(k, s)| (*k, Arc::as_ptr(s))));
            }
        }
        out.sort_unstable_by_key(|e| e.0);
        out
    }

    /// `HashFind` + `NewART` + `HashInsert` (Algorithm 1 lines 2–5).
    pub fn get_or_insert(&self, hk: &[u8]) -> Arc<Shard> {
        if let Some(s) = self.get(hk) {
            return s;
        }
        let bucket = self.bucket_of(hk);
        let mut g = bucket.entries.write();
        if let Some((_, s)) = g.iter().find(|(k, _)| k.as_slice() == hk) {
            return Arc::clone(s);
        }
        let mut art = Art::new();
        art.set_deferred_reclaim(self.defer_reclaim);
        let shard = Arc::new(Shard::new(art));
        let next: Box<[Entry]> = g
            .iter()
            .cloned()
            .chain(std::iter::once((InlineKey::from_slice(hk), Arc::clone(&shard))))
            .collect();
        bucket.install(&mut g, next);
        shard
    }

    /// "HART will free the ART if it becomes empty" (Algorithm 5 lines
    /// 15–16). Returns `true` if the shard was unlinked.
    pub fn remove_if_empty(&self, hk: &[u8]) -> bool {
        let bucket = self.bucket_of(hk);
        let mut g = bucket.entries.write();
        let Some(pos) = g.iter().position(|(k, _)| k.as_slice() == hk) else {
            return false;
        };
        {
            let shard = &g[pos].1;
            let mut sg = shard.write();
            if !sg.art.is_empty() || sg.dead {
                return false;
            }
            sg.dead = true;
        }
        let next: Box<[Entry]> =
            g.iter().enumerate().filter(|(i, _)| *i != pos).map(|(_, e)| e.clone()).collect();
        bucket.install(&mut g, next);
        true
    }

    /// Snapshot of all `(hash key, shard)` pairs, sorted by hash key — the
    /// backbone of the ordered-scan extension and of statistics.
    pub fn shards_sorted(&self) -> Vec<(InlineKey, Arc<Shard>)> {
        let mut out = Vec::new();
        for b in self.buckets.iter() {
            let g = b.entries.read();
            out.extend(g.iter().map(|(k, s)| (*k, Arc::clone(s))));
        }
        out.sort_unstable_by_key(|a| a.0);
        out
    }

    /// Number of live shards (= ARTs = max concurrent writers).
    pub fn shard_count(&self) -> usize {
        self.buckets.iter().map(|b| b.entries.read().len()).sum()
    }

    /// DRAM bytes of the directory and every ART's internal nodes, for the
    /// Fig. 10b experiment.
    pub fn memory_bytes(&self) -> usize {
        let mut total = size_of::<Self>() + self.buckets.len() * size_of::<Bucket>();
        for b in self.buckets.iter() {
            let g = b.entries.read();
            total += g.len() * size_of::<Entry>();
            for (_, shard) in g.iter() {
                total += size_of::<Shard>() + shard.read().art.memory_bytes();
            }
        }
        total
    }

    /// Debug/test helper: every leaf pointer reachable from the directory.
    pub fn all_leaves(&self, resolver: &PmResolver<'_>) -> Vec<PmPtr> {
        let _ = resolver; // traversal does not need key resolution
        let mut out = Vec::new();
        for (_, shard) in self.shards_sorted() {
            shard.read().art.for_each(|&leaf| out.push(leaf));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_insert_is_idempotent() {
        let d = Directory::new(16, true);
        let a = d.get_or_insert(b"AA");
        let b = d.get_or_insert(b"AA");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(d.shard_count(), 1);
        assert!(d.get(b"BB").is_none());
    }

    /// Resolver stub: the first insert into an empty ART never resolves a
    /// key, so lookups are irrelevant here.
    struct StubResolver;
    impl hart_art::KeyResolver<PmPtr> for StubResolver {
        fn load_key(&self, _: &PmPtr) -> InlineKey {
            InlineKey::from_slice(b"x")
        }
    }

    #[test]
    fn remove_if_empty_only_removes_empty() {
        let d = Directory::new(16, true);
        let s = d.get_or_insert(b"AA");
        s.write().art.insert(&StubResolver, b"x", PmPtr(64));
        assert!(!d.remove_if_empty(b"AA"), "non-empty shard must stay");
        assert_eq!(d.shard_count(), 1);
    }

    #[test]
    fn remove_marks_dead() {
        let d = Directory::new(16, true);
        let s = d.get_or_insert(b"AA");
        assert!(d.remove_if_empty(b"AA"));
        assert!(s.read().dead);
        assert_eq!(d.shard_count(), 0);
        // A new shard under the same hash key is a fresh object.
        let s2 = d.get_or_insert(b"AA");
        assert!(!Arc::ptr_eq(&s, &s2));
    }

    #[test]
    fn shards_sorted_orders_by_key() {
        let d = Directory::new(4, true); // force collisions
        for hk in [b"zz".as_slice(), b"aa", b"mm", b"ab"] {
            d.get_or_insert(hk);
        }
        let keys: Vec<Vec<u8>> =
            d.shards_sorted().iter().map(|(k, _)| k.as_slice().to_vec()).collect();
        assert_eq!(keys, vec![b"aa".to_vec(), b"ab".to_vec(), b"mm".to_vec(), b"zz".to_vec()]);
    }

    #[test]
    fn memory_accounting_is_monotone() {
        let d = Directory::new(16, true);
        let m0 = d.memory_bytes();
        d.get_or_insert(b"AA");
        let m1 = d.memory_bytes();
        assert!(m1 > m0);
    }

    #[test]
    fn write_guard_bumps_version_by_two() {
        let d = Directory::new(16, true);
        let s = d.get_or_insert(b"AA");
        let v0 = s.version();
        assert_eq!(v0 % 2, 0);
        {
            let _g = s.write();
            assert_eq!(s.version.load(Ordering::SeqCst), v0 + 1, "odd inside the section");
        }
        assert_eq!(s.version(), v0 + 2);
        assert!(s.validate(v0 + 2));
        assert!(!s.validate(v0));
    }

    #[test]
    fn raw_probe_finds_and_misses() {
        let d = Directory::new(16, true);
        let s = d.get_or_insert(b"AA");
        let _pin = hart_ebr::pin().expect("slot");
        unsafe {
            match d.get_raw(b"AA") {
                RawBucketRead::Found(p) => assert_eq!(p, Arc::as_ptr(&s)),
                _ => panic!("expected Found"),
            }
            assert!(matches!(d.get_raw(b"BB"), RawBucketRead::Absent));
        }
    }

    #[test]
    fn raw_snapshot_matches_locked_snapshot() {
        let d = Directory::new(4, true);
        for hk in [b"zz".as_slice(), b"aa", b"mm"] {
            d.get_or_insert(hk);
        }
        let _pin = hart_ebr::pin().expect("slot");
        let raw: Vec<InlineKey> =
            unsafe { d.shards_sorted_raw() }.into_iter().map(|(k, _)| k).collect();
        let locked: Vec<InlineKey> = d.shards_sorted().into_iter().map(|(k, _)| k).collect();
        assert_eq!(raw, locked);
    }

    /// Satellite: `bucket_of` must spread random hash keys evenly — no
    /// bucket more than 4x the mean over 10k keys (FNV-1a quality gate).
    #[test]
    fn bucket_distribution_is_balanced() {
        use rand::{Rng, SeedableRng};
        let n_buckets = 64usize;
        let d = Directory::new(n_buckets, true);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xD15_7A6);
        let mut counts = vec![0usize; n_buckets];
        let n_keys = 10_000usize;
        for _ in 0..n_keys {
            // Random 2-byte hash keys over a printable alphabet, like the
            // paper's workloads.
            let hk = [rng.gen_range(0x21u8..0x7f), rng.gen_range(0x21u8..0x7f)];
            let idx = (fnv1a(&hk) & d.mask) as usize;
            counts[idx] += 1;
        }
        let mean = n_keys as f64 / n_buckets as f64;
        let worst = *counts.iter().max().unwrap() as f64;
        assert!(
            worst <= 4.0 * mean,
            "worst bucket {worst} exceeds 4x mean {mean:.1}: {counts:?}"
        );
    }
}
