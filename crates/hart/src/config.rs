//! HART configuration.

use hart_kv::{Error, Result, MAX_KEY_LEN};

/// Tunable parameters of a HART instance.
#[derive(Clone, Copy, Debug)]
pub struct HartConfig {
    /// Hash-key length `k_h` in bytes (§III-A.1). The paper sets 2 for all
    /// experiments: "For HART, the hash key length is set to 2". `0` turns
    /// HART into a single ART behind one lock (useful for ablations).
    pub hash_key_len: usize,
    /// Initial number of buckets in the DRAM hash directory. With
    /// `k_h = 2` over the paper's 62-character alphabet at most
    /// 62² ≈ 3.8 k distinct hash keys exist, so the default 4096 keeps
    /// chains short without ever resizing; larger `hash_key_len` values
    /// rely on [`HartConfig::resize_threshold`] to keep chains short as
    /// the shard count scales with the data.
    pub initial_buckets: usize,
    /// Load factor (mean directory entries per bucket) above which the
    /// hash directory doubles its bucket array, migrating entries
    /// incrementally (DESIGN.md §Resizing). `0` disables resizing and
    /// pins the directory at `initial_buckets` forever — the pre-resize
    /// behavior and the ablation baseline. Default `1`.
    pub resize_threshold: usize,
    /// Ablation switch: charge `persistent()` costs for internal-node
    /// mutations as if the ART inner nodes lived in PM — i.e. *disable*
    /// the selective consistency/persistence of §III-A.2 cost-wise.
    /// Default `false` (the paper's design).
    pub persist_internal_nodes: bool,
    /// Kill-switch for the version-validated lock-free read path
    /// (DESIGN.md §Concurrency). `true` (default): `search`/`range` first
    /// traverse without taking any read lock, validating shard epoch
    /// counters, and fall back to the pessimistic read-locked path after
    /// [`HartConfig::optimistic_retry_limit`] failed attempts. `false`:
    /// every read takes the per-ART read lock, reproducing the paper's
    /// original locking protocol exactly (and skipping epoch-based node
    /// reclamation, since no reader can then hold an unprotected pointer).
    pub optimistic_reads: bool,
    /// How many times an optimistic read retries after a version-validation
    /// failure before giving up and taking the read lock. Writer-heavy
    /// shards make low values kick readers to the fair locked path sooner.
    pub optimistic_retry_limit: u32,
    /// Kill-switch for the always-on observability layer (`hart-obs`).
    /// `true` (default): the embedded recorder counts ops, retries,
    /// contention, resize and allocator events, and samples op latency
    /// (see `Hart::obs_snapshot`). `false`: the recorder is inert — every
    /// instrumentation point reduces to one predictable branch and no
    /// clock is ever read — and snapshots come back zero-valued with
    /// `enabled: false`.
    pub observability: bool,
    /// Kill-switch for the directory's fingerprint probe filter. `false`
    /// (default): every bucket probe scans the bucket's packed 1-byte
    /// fingerprint array first (SIMD where available) and compares full
    /// hash keys only at fingerprint matches. `true`: probes compare every
    /// chained key in full, reproducing the pre-fingerprint probe cost
    /// exactly. The bucket format (fingerprint arrays, stash region) is
    /// identical either way — the flag selects only the probe strategy, so
    /// equivalence is structural and proven by `tests/fingerprint.rs`.
    pub full_key_probes: bool,
    /// Group-commit persistence (kill-switch for the server's batching
    /// layer). `false` (default): every write op fences its own persists —
    /// the paper's per-op `persistent()` accounting. `true`: a hosting
    /// server may run write ops under `PmemPool::run_deferred` and redeem
    /// their [`hart_pm::PersistBatch`]es through a
    /// [`hart_pm::GroupCommitter`], coalescing many ops' fences into one
    /// flush per batch window. The tree itself never batches — the flag
    /// only advertises that the embedder wants the deferred path, so one
    /// config object can drive both the server and its ablation. Durability
    /// of *acknowledged* writes is identical either way (proven by the
    /// group-commit crash test).
    pub group_commit: bool,
}

impl Default for HartConfig {
    fn default() -> Self {
        HartConfig {
            hash_key_len: 2,
            initial_buckets: 4096,
            resize_threshold: 1,
            persist_internal_nodes: false,
            optimistic_reads: true,
            optimistic_retry_limit: 8,
            observability: true,
            full_key_probes: false,
            group_commit: false,
        }
    }
}

impl HartConfig {
    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if self.hash_key_len >= MAX_KEY_LEN {
            return Err(Error::BadConfig("hash_key_len must be < 24"));
        }
        if self.initial_buckets == 0 || !self.initial_buckets.is_power_of_two() {
            return Err(Error::BadConfig(
                "initial_buckets must be a nonzero power of two",
            ));
        }
        if self.optimistic_reads && self.optimistic_retry_limit == 0 {
            return Err(Error::BadConfig("optimistic_retry_limit must be >= 1"));
        }
        Ok(())
    }

    /// Config with a specific `k_h` (ablation experiments).
    pub fn with_hash_key_len(kh: usize) -> HartConfig {
        HartConfig {
            hash_key_len: kh,
            ..Default::default()
        }
    }

    /// Config with selective persistence disabled (ablation).
    pub fn without_selective_persistence() -> HartConfig {
        HartConfig {
            persist_internal_nodes: true,
            ..Default::default()
        }
    }

    /// Config with the lock-free read path disabled (ablation /
    /// kill-switch): all reads go through the per-ART read locks as in the
    /// paper's original protocol.
    pub fn with_locked_reads() -> HartConfig {
        HartConfig {
            optimistic_reads: false,
            ..Default::default()
        }
    }

    /// Config with directory resizing disabled (ablation / kill-switch):
    /// the bucket array stays at `initial_buckets` forever, as before the
    /// resizing extension.
    pub fn with_fixed_directory() -> HartConfig {
        HartConfig {
            resize_threshold: 0,
            ..Default::default()
        }
    }

    /// Config with an explicit directory geometry: start at `initial`
    /// buckets and double whenever the load factor exceeds `threshold`
    /// entries per bucket (`0` = never).
    pub fn with_directory(initial: usize, threshold: usize) -> HartConfig {
        HartConfig {
            initial_buckets: initial,
            resize_threshold: threshold,
            ..Default::default()
        }
    }

    /// Config with the observability layer disabled (ablation /
    /// kill-switch): no counters, no latency sampling, zero-valued
    /// snapshots. Results are identical to the default config — only the
    /// telemetry disappears.
    pub fn without_observability() -> HartConfig {
        HartConfig {
            observability: false,
            ..Default::default()
        }
    }

    /// Config with the fingerprint probe filter disabled (ablation /
    /// kill-switch): directory probes compare every chained hash key in
    /// full, as before the fingerprint extension. Storage format is
    /// unchanged — only the probe strategy reverts.
    pub fn with_full_key_probes() -> HartConfig {
        HartConfig {
            full_key_probes: true,
            ..Default::default()
        }
    }

    /// Config opting in to group-commit persistence (the server's batched
    /// fence path). The default (`false`) is the per-op-persist
    /// kill-switch.
    pub fn with_group_commit() -> HartConfig {
        HartConfig {
            group_commit: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = HartConfig::default();
        assert_eq!(c.hash_key_len, 2);
        assert!(c.optimistic_reads, "lock-free reads are the default");
        assert_eq!(c.resize_threshold, 1, "resizing is on by default");
        assert!(c.observability, "observability is on by default");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn group_commit_defaults_off() {
        assert!(!HartConfig::default().group_commit);
        let c = HartConfig::with_group_commit();
        assert!(c.group_commit);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn kill_switch_disables_observability() {
        let c = HartConfig::without_observability();
        assert!(!c.observability);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn kill_switch_disables_optimistic_reads() {
        let c = HartConfig::with_locked_reads();
        assert!(!c.optimistic_reads);
        assert!(c.validate().is_ok());
        let bad = HartConfig {
            optimistic_retry_limit: 0,
            ..HartConfig::default()
        };
        assert!(bad.validate().is_err());
        let ok = HartConfig {
            optimistic_retry_limit: 0,
            ..HartConfig::with_locked_reads()
        };
        assert!(
            ok.validate().is_ok(),
            "retry limit is irrelevant with locked reads"
        );
    }

    #[test]
    fn kill_switch_disables_fingerprints() {
        assert!(
            !HartConfig::default().full_key_probes,
            "fingerprint probes are the default"
        );
        let c = HartConfig::with_full_key_probes();
        assert!(c.full_key_probes);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn kill_switch_disables_resizing() {
        let c = HartConfig::with_fixed_directory();
        assert_eq!(c.resize_threshold, 0);
        assert!(c.validate().is_ok());
        let g = HartConfig::with_directory(8, 2);
        assert_eq!((g.initial_buckets, g.resize_threshold), (8, 2));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn rejects_bad_configs() {
        let base = HartConfig::default();
        assert!(HartConfig {
            hash_key_len: 24,
            initial_buckets: 16,
            ..base
        }
        .validate()
        .is_err());
        assert!(HartConfig {
            hash_key_len: 2,
            initial_buckets: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(HartConfig {
            hash_key_len: 2,
            initial_buckets: 100,
            ..base
        }
        .validate()
        .is_err());
        assert!(HartConfig {
            hash_key_len: 0,
            initial_buckets: 1,
            ..base
        }
        .validate()
        .is_ok());
    }
}
