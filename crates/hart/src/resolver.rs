//! Resolves ART keys from PM-resident leaves.

use hart_art::KeyResolver;
use hart_epalloc::leaf_read_key;
use hart_kv::InlineKey;
use hart_pm::{PmPtr, PmemPool};

/// [`KeyResolver`] for HART's PM leaves: loads the complete key stored in
/// the leaf node (a PM read, charged emulated read latency) and strips the
/// hash-key prefix, yielding the ART key.
pub(crate) struct PmResolver<'a> {
    pub pool: &'a PmemPool,
    pub kh: usize,
}

impl KeyResolver<PmPtr> for PmResolver<'_> {
    #[inline]
    fn load_key(&self, leaf: &PmPtr) -> InlineKey {
        let full = leaf_read_key(self.pool, *leaf);
        let s = full.as_slice();
        InlineKey::from_slice(&s[self.kh.min(s.len())..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hart_epalloc::{leaf_write_key, persist_leaf_key, LEAF_SIZE};
    use hart_kv::Key;
    use hart_pm::PoolConfig;

    #[test]
    fn strips_hash_prefix() {
        let pool = PmemPool::new(PoolConfig::test_small());
        let leaf = pool.alloc_raw(LEAF_SIZE, 8).unwrap();
        leaf_write_key(&pool, leaf, &Key::from_str("AABF").unwrap());
        persist_leaf_key(&pool, leaf);
        let r = PmResolver { pool: &pool, kh: 2 };
        assert_eq!(r.load_key(&leaf).as_slice(), b"BF");
    }

    #[test]
    fn short_key_yields_empty_art_key() {
        let pool = PmemPool::new(PoolConfig::test_small());
        let leaf = pool.alloc_raw(LEAF_SIZE, 8).unwrap();
        leaf_write_key(&pool, leaf, &Key::from_str("A").unwrap());
        persist_leaf_key(&pool, leaf);
        let r = PmResolver { pool: &pool, kh: 2 };
        assert!(r.load_key(&leaf).is_empty());
    }
}
