//! HART — the concurrent Hash-Assisted Radix Tree of Pan, Xie & Song
//! (IPDPS 2019), for DRAM-PM hybrid memory systems.
//!
//! # Architecture (Fig. 1 of the paper)
//!
//! A key is split into a **hash key** (its first `k_h` bytes, default 2) and
//! an **ART key** (the rest). A DRAM hash directory maps each hash key to
//! one adaptive radix tree; all keys in that ART share the hash-key prefix.
//! Selective consistency/persistence (§III-A.2) places:
//!
//! * in **DRAM**: the hash directory and every ART internal node — fast and
//!   reconstructable;
//! * in **PM**: the 40-byte leaf nodes (carrying the *complete* key for
//!   failure recovery) and the out-of-leaf value objects, both managed by
//!   [EPallocator](hart_epalloc) — the critical, crash-consistent data.
//!
//! # Concurrency (§III-A.3 / §IV-G)
//!
//! One reader-writer lock per ART: reads share, writes exclude, and writes
//! on *different* ARTs proceed in parallel — "the maximal number of
//! concurrent writes allowed by a HART is equal to its number of ARTs".
//!
//! # Crash consistency
//!
//! Inserts follow Algorithm 1 (value → p_value → value bit → key → DRAM
//! link → leaf bit), updates the logged out-of-place protocol of
//! Algorithm 3, deletions Algorithm 5, chunk reclamation Algorithm 6, and
//! [`Hart::recover`] rebuilds the DRAM structures from PM leaves per
//! Algorithm 7 (after the allocator has replayed its micro-logs).
//!
//! # Example
//!
//! ```
//! use hart::{Hart, HartConfig, Key, PersistentIndex, PmemPool, PoolConfig, Value};
//! use std::sync::Arc;
//!
//! # fn main() -> hart::Result<()> {
//! let pool = Arc::new(PmemPool::new(PoolConfig::test_small()));
//! let index = Hart::create(Arc::clone(&pool), HartConfig::default())?;
//!
//! // Fig. 1's running example: "AABF" = hash key "AA" + ART key "BF".
//! index.insert(&Key::from_str("AABF")?, &Value::from_u64(42))?;
//! assert_eq!(index.search(&Key::from_str("AABF")?)?.unwrap().as_u64(), 42);
//!
//! // Restart: rebuild the DRAM structures from the PM leaves.
//! drop(index);
//! let recovered = Hart::recover(pool, HartConfig::default())?;
//! assert_eq!(recovered.len(), 1);
//! assert_eq!(recovered.search(&Key::from_str("AABF")?)?.unwrap().as_u64(), 42);
//! # Ok(())
//! # }
//! ```

mod config;
mod dir;
mod resolver;
mod tree;

pub use config::HartConfig;
pub use hart_epalloc::{AllocStats, ObjClass};
pub use hart_kv::{Error, Key, MemoryStats, PersistentIndex, Result, Value};
pub use hart_obs::{ObsSnapshot, Observable};
pub use hart_pm::{LatencyConfig, PmemPool, PoolConfig, TimeMode};
pub use tree::Hart;
