//! Model checking for the seqlock publish/validate/retire protocol that
//! `hart::dir` (shard versions) and `hart_ebr` (deferred reclamation)
//! implement together.
//!
//! Uses the vendored `loom` subset: `loom::model` explores many randomized
//! schedules and every wrapped atomic op is a preemption point, so the
//! interleavings a bare test schedule would never hit (reader between the
//! two half-updates of a write section, retire racing a pinned reader)
//! become likely. `LOOM_ITERS` scales the exploration; the nightly CI job
//! raises it well beyond the local default.
//!
//! The models mirror the production protocol shapes exactly:
//! * writers open a section with an odd version bump (`AcqRel`), mutate,
//!   close with an even bump — `dir.rs::Shard::write`/`ShardWriteGuard`;
//! * readers snapshot an even version (`Acquire`), read data racily,
//!   `fence(Acquire)` then re-load the version `Relaxed` —
//!   `dir.rs::Shard::validate` (the crossbeam-style fence+Relaxed idiom
//!   pmlint's rule R3 allowlists);
//! * unlinked nodes are retired through `hart_ebr::defer_drop` and must
//!   not be reclaimed while any reader pin is live.

use loom::sync::atomic::{fence, AtomicU64, Ordering};
use loom::sync::Arc;
use loom::thread;

/// One shard-shaped seqlock cell: a version and two data words that the
/// writer always keeps in the invariant `b == 2 * a`.
#[derive(Default)]
struct Cell {
    version: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Cell {
    /// `Shard::write` + guard drop: odd bump, mutate, even bump.
    fn write_section(&self, k: u64) {
        let v = self.version.fetch_add(1, Ordering::AcqRel);
        assert!(v.is_multiple_of(2), "write section already open");
        self.a.store(k, Ordering::Relaxed);
        self.b.store(2 * k, Ordering::Relaxed);
        let v = self.version.fetch_add(1, Ordering::AcqRel);
        assert!(v % 2 == 1, "write section must be open");
    }

    /// `Shard::version` + racy reads + `Shard::validate`. Returns a
    /// validated `(a, b)` snapshot, retrying until one sticks.
    fn read_validated(&self) -> (u64, u64) {
        loop {
            let v0 = self.version.load(Ordering::Acquire);
            if !v0.is_multiple_of(2) {
                thread::yield_now();
                continue;
            }
            let a = self.a.load(Ordering::Relaxed);
            let b = self.b.load(Ordering::Relaxed);
            // validate(v0): Acquire fence, then a Relaxed re-load.
            fence(Ordering::Acquire);
            // pmlint: relaxed-ok(models Shard::validate's fence-paired re-load)
            if self.version.load(Ordering::Relaxed) == v0 {
                return (a, b);
            }
        }
    }
}

/// Readers racing a writer through the seqlock must never observe a torn
/// write (`b != 2 * a`), only fully published states.
#[test]
fn seqlock_readers_never_observe_torn_state() {
    loom::model(|| {
        let cell = Arc::new(Cell::default());
        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                for k in 1..=3u64 {
                    cell.write_section(k);
                }
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    for _ in 0..3 {
                        let (a, b) = cell.read_validated();
                        assert_eq!(b, 2 * a, "torn snapshot validated");
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    });
}

/// Two writers serialized by a lock (the shard write lock in production)
/// still close and reopen sections correctly: versions stay paired and
/// readers still never validate a torn state.
#[test]
fn seqlock_with_contending_writers_stays_paired() {
    loom::model(|| {
        let cell = Arc::new(Cell::default());
        let lock = Arc::new(loom::sync::Mutex::new(()));
        let writers: Vec<_> = (0..2)
            .map(|w| {
                let cell = Arc::clone(&cell);
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    for k in 1..=2u64 {
                        let _g = lock.lock().unwrap();
                        cell.write_section(10 * (w + 1) + k);
                    }
                })
            })
            .collect();
        let reader = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                for _ in 0..4 {
                    let (a, b) = cell.read_validated();
                    assert_eq!(b, 2 * a);
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        let v = cell.version.load(Ordering::Acquire);
        assert_eq!(v, 8, "2 writers x 2 sections x 2 bumps");
    });
}

/// A node in the publish/retire model. Never deallocated during the run —
/// retirement only stamps the canary — so post-violation reads stay
/// defined and the test can *observe* a protocol break instead of
/// crashing on a use-after-free.
struct Node {
    canary: AtomicU64,
    val: u64,
}

const ALIVE: u64 = 0xC0FF_EE00;
const DEAD: u64 = 0xDEAD_DEAD;

/// Retirement token: when EBR decides the grace period has passed, `Drop`
/// marks the node reclaimed.
struct Retired(*mut Node);
// SAFETY: the raw node pointer is only dereferenced by the EBR collector
// thread that drops this token, after every pin from the publish epoch has
// been released; the pointee outlives the test body (freed at the end).
unsafe impl Send for Retired {}

impl Drop for Retired {
    fn drop(&mut self) {
        // SAFETY: nodes are leaked for the duration of the model (freed
        // only after all threads join), so the pointee is always valid.
        let n = unsafe { &*self.0 };
        n.canary.store(DEAD, Ordering::Release);
    }
}

/// The retire half of the protocol: a writer repeatedly publishes a new
/// node and retires the old through `hart_ebr::defer_drop`; pinned readers
/// must never see a reclaimed (DEAD) node through the published pointer.
#[test]
fn retire_waits_for_reader_pins() {
    loom::model(|| {
        use loom::sync::atomic::AtomicPtr;

        let first = Box::into_raw(Box::new(Node {
            canary: AtomicU64::new(ALIVE),
            val: 0,
        }));
        let current = Arc::new(AtomicPtr::new(first));
        let mut all_nodes = vec![first as usize];

        let readers: Vec<_> = (0..2)
            .map(|_| {
                let current = Arc::clone(&current);
                thread::spawn(move || {
                    for _ in 0..4 {
                        let _pin = hart_ebr::pin().expect("pin table full");
                        let p = current.load(Ordering::Acquire);
                        // SAFETY: loaded under a live EBR pin from the
                        // published pointer; retirement defers reclamation
                        // until this pin drops, and the allocation itself
                        // outlives the model body.
                        let n = unsafe { &*p };
                        assert_eq!(
                            n.canary.load(Ordering::Acquire),
                            ALIVE,
                            "reader observed a reclaimed node (val {})",
                            n.val
                        );
                    }
                })
            })
            .collect();

        let writer = {
            let current = Arc::clone(&current);
            thread::spawn(move || {
                let mut made = Vec::new();
                for k in 1..=3u64 {
                    let fresh = Box::into_raw(Box::new(Node {
                        canary: AtomicU64::new(ALIVE),
                        val: k,
                    }));
                    made.push(fresh as usize);
                    let old = current.swap(fresh, Ordering::AcqRel);
                    hart_ebr::defer_drop(Retired(old));
                    hart_ebr::try_collect();
                }
                made
            })
        };

        all_nodes.extend(writer.join().unwrap());
        for r in readers {
            r.join().unwrap();
        }

        // Quiescent: no pins remain, so collection must be able to finish.
        hart_ebr::flush_for_tests();
        let live = current.load(Ordering::Acquire);
        for &raw in &all_nodes {
            let p = raw as *mut Node;
            // SAFETY: all threads joined; nodes are still allocated.
            let n = unsafe { &*p };
            let canary = n.canary.load(Ordering::Acquire);
            if p == live {
                assert_eq!(canary, ALIVE, "live node must not be reclaimed");
            } else {
                assert_eq!(canary, DEAD, "retired node never reclaimed");
            }
        }
        for &raw in &all_nodes {
            // SAFETY: every node came from Box::into_raw above and is
            // reclaimed exactly once, after all model threads joined.
            drop(unsafe { Box::from_raw(raw as *mut Node) });
        }
    });
}
