//! PM node layouts shared by WOART and ART+CoW.
//!
//! All four adaptive node kinds live in emulated PM and are manipulated
//! through pool accessors (so traversals pay PM read latency and mutations
//! pay `persistent()` costs). Layouts, offsets in bytes:
//!
//! ```text
//! common header   0 type | 1 prefix_len | 2..4 count (u16) | 4..28 prefix
//! NODE4           28..32 keys[4]            32..64   children[4]    (64 B)
//! NODE16          28..44 keys[16], pad      48..176  children[16]  (176 B)
//! NODE48          28..284 index[256], pad   288..672 children[48]  (672 B)
//! NODE256         pad                       32..2080 children[256] (2080 B)
//! ```
//!
//! Child pointers are **tagged**: bit 0 set marks a leaf (all allocations
//! are ≥8-byte aligned, so the bit is free), `0` is null — the 8-byte unit
//! every publish step stores atomically.
//!
//! NODE4/NODE16 keep keys *unsorted* and append new entries, as WOART does:
//! sorted insertion would shift entries, multiplying PM writes.
//!
//! Leaves reuse HART's 40-byte layout (`hart_epalloc::leaf_*`): complete
//! key, key/value lengths, out-of-leaf value pointer.

use hart_kv::{Error, InlineKey, Result, Value, MAX_VALUE_LEN};
use hart_pm::{PmPtr, PmemPool, Pod};

/// Non-persisting PM store for the volatile node-build family. Every
/// deferred write in this file funnels through these two helpers so the
/// build-then-persist-wholesale contract is waived exactly once per
/// store kind instead of at each of the eight call sites.
#[inline]
fn write_vol<T: Pod>(pool: &PmemPool, p: PmPtr, v: &T) {
    // pmlint: deferred-persist(volatile build: every caller persists the whole node before publishing; the artcow cow_replace closure path inverts control, so R1 cannot see it)
    pool.write(p, v);
}

/// See [`write_vol`]: the atomic (tagged-child) flavor.
#[inline]
fn write_vol_u64(pool: &PmemPool, p: PmPtr, v: u64) {
    // pmlint: deferred-persist(volatile build: every caller persists the whole node before publishing; the artcow cow_replace closure path inverts control, so R1 cannot see it)
    pool.write_u64_atomic(p, v);
}

/// Node-kind discriminants stored in the type byte.
pub const NT_N4: u8 = 1;
pub const NT_N16: u8 = 2;
pub const NT_N48: u8 = 3;
pub const NT_N256: u8 = 4;

const OFF_TYPE: u64 = 0;
const OFF_PREFIX_LEN: u64 = 1;
const OFF_COUNT: u64 = 2;
const OFF_PREFIX: u64 = 4;

const N4_KEYS: u64 = 28;
const N4_CHILDREN: u64 = 32;
const N16_KEYS: u64 = 28;
const N16_CHILDREN: u64 = 48;
const N48_INDEX: u64 = 28;
const N48_CHILDREN: u64 = 288;
const N256_CHILDREN: u64 = 32;

const NO_SLOT: u8 = 0xFF;

/// Node alignment (one cache line).
pub const NODE_ALIGN: u64 = 64;

/// Size in bytes of a node of kind `nt`.
pub fn node_size(nt: u8) -> usize {
    match nt {
        NT_N4 => 64,
        NT_N16 => 176,
        NT_N48 => 672,
        NT_N256 => 2080,
        _ => panic!("bad node type {nt}"),
    }
}

/// Capacity of a node kind.
pub fn node_capacity(nt: u8) -> usize {
    match nt {
        NT_N4 => 4,
        NT_N16 => 16,
        NT_N48 => 48,
        NT_N256 => 256,
        _ => panic!("bad node type {nt}"),
    }
}

/// A tagged child pointer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tagged {
    Null,
    Leaf(PmPtr),
    Node(PmPtr),
}

impl Tagged {
    /// Decode from the stored u64.
    #[inline]
    pub fn decode(raw: u64) -> Tagged {
        if raw == 0 {
            Tagged::Null
        } else if raw & 1 == 1 {
            Tagged::Leaf(PmPtr(raw & !1))
        } else {
            Tagged::Node(PmPtr(raw))
        }
    }

    /// Encode to the stored u64.
    #[inline]
    pub fn encode(self) -> u64 {
        match self {
            Tagged::Null => 0,
            Tagged::Leaf(p) => p.offset() | 1,
            Tagged::Node(p) => p.offset(),
        }
    }

    /// True for [`Tagged::Null`].
    #[inline]
    pub fn is_null(self) -> bool {
        matches!(self, Tagged::Null)
    }
}

/// Read the tagged child stored in `slot`.
#[inline]
pub fn read_slot(pool: &PmemPool, slot: PmPtr) -> Tagged {
    Tagged::decode(pool.read::<u64>(slot))
}

/// Publish a child into `slot`: the 8-byte atomic store + persist that
/// makes every structural change visible and durable at once.
pub fn publish_slot(pool: &PmemPool, slot: PmPtr, child: Tagged) {
    pool.write_u64_atomic(slot, child.encode());
    pool.persist(slot, 8);
}

// ----------------------------------------------------------------- nodes

/// Allocate a zeroed node of kind `nt` with the given prefix. The caller
/// fills children and then calls [`persist_node`] before publishing.
pub fn alloc_node(pool: &PmemPool, nt: u8, prefix: &[u8]) -> Result<PmPtr> {
    let p = pool
        .alloc_raw(node_size(nt), NODE_ALIGN)
        .ok_or(Error::PmExhausted)?;
    pool.write(p.add(OFF_TYPE), &nt);
    if nt == NT_N48 {
        pool.write_bytes(p.add(N48_INDEX), &[NO_SLOT; 256]);
    }
    set_prefix(pool, p, prefix);
    Ok(p)
}

/// Return a node to the pool.
pub fn free_node(pool: &PmemPool, node: PmPtr) {
    let nt = node_type(pool, node);
    pool.free_raw(node, node_size(nt), NODE_ALIGN);
}

/// Persist the entire node (one `persistent()` call).
pub fn persist_node(pool: &PmemPool, node: PmPtr) {
    let nt = node_type(pool, node);
    pool.persist(node, node_size(nt));
}

/// Node kind byte.
#[inline]
pub fn node_type(pool: &PmemPool, node: PmPtr) -> u8 {
    pool.read::<u8>(node.add(OFF_TYPE))
}

/// Live child count.
#[inline]
pub fn node_count(pool: &PmemPool, node: PmPtr) -> usize {
    pool.read::<u16>(node.add(OFF_COUNT)) as usize
}

fn set_count(pool: &PmemPool, node: PmPtr, c: usize) {
    write_vol(pool, node.add(OFF_COUNT), &(c as u16));
}

/// Compressed path prefix.
pub fn prefix(pool: &PmemPool, node: PmPtr) -> InlineKey {
    let len = pool.read::<u8>(node.add(OFF_PREFIX_LEN)) as usize;
    let mut buf = [0u8; 24];
    pool.read_bytes(node.add(OFF_PREFIX), &mut buf);
    InlineKey::from_slice(&buf[..len.min(24)])
}

/// Overwrite the prefix (caller persists — header region).
pub fn set_prefix(pool: &PmemPool, node: PmPtr, p: &[u8]) {
    debug_assert!(p.len() <= 24);
    let mut buf = [0u8; 24];
    buf[..p.len()].copy_from_slice(p);
    pool.write(node.add(OFF_PREFIX_LEN), &(p.len() as u8));
    pool.write_bytes(node.add(OFF_PREFIX), &buf);
}

/// Persist the header region (type/count/prefix + N4 keys — one line).
pub fn persist_header(pool: &PmemPool, node: PmPtr) {
    pool.persist(node, 64);
}

/// Find the slot (pointer to the 8-byte child word) for edge byte `b`.
pub fn find_child_slot(pool: &PmemPool, node: PmPtr, b: u8) -> Option<PmPtr> {
    let nt = node_type(pool, node);
    let count = node_count(pool, node);
    match nt {
        NT_N4 => {
            let mut keys = [0u8; 4];
            pool.read_bytes(node.add(N4_KEYS), &mut keys);
            (0..count)
                .find(|&i| keys[i] == b)
                .map(|i| node.add(N4_CHILDREN + 8 * i as u64))
        }
        NT_N16 => {
            let mut keys = [0u8; 16];
            pool.read_bytes(node.add(N16_KEYS), &mut keys);
            (0..count)
                .find(|&i| keys[i] == b)
                .map(|i| node.add(N16_CHILDREN + 8 * i as u64))
        }
        NT_N48 => {
            let slot = pool.read::<u8>(node.add(N48_INDEX + b as u64));
            (slot != NO_SLOT).then(|| node.add(N48_CHILDREN + 8 * slot as u64))
        }
        NT_N256 => {
            let slot = node.add(N256_CHILDREN + 8 * b as u64);
            (!read_slot(pool, slot).is_null()).then_some(slot)
        }
        _ => panic!("bad node type {nt}"),
    }
}

/// Add edge `b -> child` to a node with room. Returns `false` when full
/// (caller grows first). Writes the entry then persists the touched
/// region(s) — the WOART-style append.
pub fn add_child(pool: &PmemPool, node: PmPtr, b: u8, child: Tagged) -> bool {
    debug_assert!(
        find_child_slot(pool, node, b).is_none(),
        "duplicate edge {b}"
    );
    let nt = node_type(pool, node);
    let count = node_count(pool, node);
    if count == node_capacity(nt) {
        return false;
    }
    match nt {
        NT_N4 => {
            pool.write(node.add(N4_KEYS + count as u64), &b);
            pool.write_u64_atomic(node.add(N4_CHILDREN + 8 * count as u64), child.encode());
            set_count(pool, node, count + 1);
            // Entire NODE4 is one line: single flush covers entry + count.
            persist_header(pool, node);
        }
        NT_N16 => {
            pool.write(node.add(N16_KEYS + count as u64), &b);
            pool.write_u64_atomic(node.add(N16_CHILDREN + 8 * count as u64), child.encode());
            pool.persist(node.add(N16_CHILDREN + 8 * count as u64), 8);
            set_count(pool, node, count + 1);
            persist_header(pool, node);
        }
        NT_N48 => {
            // First free child slot (deletes leave holes).
            let mut slot = None;
            for i in 0..48u64 {
                if read_slot(pool, node.add(N48_CHILDREN + 8 * i)).is_null() {
                    slot = Some(i);
                    break;
                }
            }
            let i = slot.expect("count < 48 implies a free slot");
            pool.write_u64_atomic(node.add(N48_CHILDREN + 8 * i), child.encode());
            pool.persist(node.add(N48_CHILDREN + 8 * i), 8);
            pool.write(node.add(N48_INDEX + b as u64), &(i as u8));
            pool.persist(node.add(N48_INDEX + b as u64), 1);
            set_count(pool, node, count + 1);
            persist_header(pool, node);
        }
        NT_N256 => {
            pool.write_u64_atomic(node.add(N256_CHILDREN + 8 * b as u64), child.encode());
            pool.persist(node.add(N256_CHILDREN + 8 * b as u64), 8);
            set_count(pool, node, count + 1);
            persist_header(pool, node);
        }
        _ => panic!("bad node type {nt}"),
    }
    true
}

/// Remove the edge for byte `b`. Returns `false` when absent.
pub fn remove_child(pool: &PmemPool, node: PmPtr, b: u8) -> bool {
    let nt = node_type(pool, node);
    let count = node_count(pool, node);
    match nt {
        NT_N4 | NT_N16 => {
            let (keys_off, ch_off, cap) = if nt == NT_N4 {
                (N4_KEYS, N4_CHILDREN, 4usize)
            } else {
                (N16_KEYS, N16_CHILDREN, 16usize)
            };
            let mut keys = [0u8; 16];
            pool.read_bytes(node.add(keys_off), &mut keys[..cap]);
            let Some(pos) = (0..count).find(|&i| keys[i] == b) else {
                return false;
            };
            // Unsorted arrays: swap the last entry into the hole.
            let last = count - 1;
            if pos != last {
                let last_key = keys[last];
                let last_child = pool.read::<u64>(node.add(ch_off + 8 * last as u64));
                pool.write(node.add(keys_off + pos as u64), &last_key);
                pool.write_u64_atomic(node.add(ch_off + 8 * pos as u64), last_child);
                pool.persist(node.add(ch_off + 8 * pos as u64), 8);
            }
            pool.write_u64_atomic(node.add(ch_off + 8 * last as u64), 0);
            set_count(pool, node, count - 1);
            persist_header(pool, node);
            true
        }
        NT_N48 => {
            let slot = pool.read::<u8>(node.add(N48_INDEX + b as u64));
            if slot == NO_SLOT {
                return false;
            }
            pool.write(node.add(N48_INDEX + b as u64), &NO_SLOT);
            pool.persist(node.add(N48_INDEX + b as u64), 1);
            pool.write_u64_atomic(node.add(N48_CHILDREN + 8 * slot as u64), 0);
            pool.persist(node.add(N48_CHILDREN + 8 * slot as u64), 8);
            set_count(pool, node, count - 1);
            persist_header(pool, node);
            true
        }
        NT_N256 => {
            let slot = node.add(N256_CHILDREN + 8 * b as u64);
            if read_slot(pool, slot).is_null() {
                return false;
            }
            pool.write_u64_atomic(slot, 0);
            pool.persist(slot, 8);
            set_count(pool, node, count - 1);
            persist_header(pool, node);
            true
        }
        _ => panic!("bad node type {nt}"),
    }
}

/// All live `(byte, child)` edges, sorted by byte (for ordered traversal).
pub fn children_sorted(pool: &PmemPool, node: PmPtr) -> Vec<(u8, Tagged)> {
    let nt = node_type(pool, node);
    let count = node_count(pool, node);
    let mut out = Vec::with_capacity(count);
    match nt {
        NT_N4 | NT_N16 => {
            let (keys_off, ch_off, cap) = if nt == NT_N4 {
                (N4_KEYS, N4_CHILDREN, 4usize)
            } else {
                (N16_KEYS, N16_CHILDREN, 16)
            };
            let mut keys = [0u8; 16];
            pool.read_bytes(node.add(keys_off), &mut keys[..cap]);
            for (i, &b) in keys[..count].iter().enumerate() {
                out.push((b, read_slot(pool, node.add(ch_off + 8 * i as u64))));
            }
            out.sort_unstable_by_key(|(b, _)| *b);
        }
        NT_N48 => {
            for b in 0..=255u8 {
                let slot = pool.read::<u8>(node.add(N48_INDEX + b as u64));
                if slot != NO_SLOT {
                    out.push((b, read_slot(pool, node.add(N48_CHILDREN + 8 * slot as u64))));
                }
            }
        }
        NT_N256 => {
            for b in 0..=255u8 {
                let c = read_slot(pool, node.add(N256_CHILDREN + 8 * b as u64));
                if !c.is_null() {
                    out.push((b, c));
                }
            }
        }
        _ => panic!("bad node type {nt}"),
    }
    out
}

/// Copy `node`'s edges and prefix into a freshly allocated node of kind
/// `new_nt` (grow or shrink), persist it, and return it. The caller
/// publishes it into the parent slot and frees the old node.
pub fn copy_to_kind(pool: &PmemPool, node: PmPtr, new_nt: u8) -> Result<PmPtr> {
    let pfx = prefix(pool, node);
    let bigger = alloc_node(pool, new_nt, pfx.as_slice())?;
    for (b, child) in children_sorted(pool, node) {
        let ok = add_child_volatile(pool, bigger, b, child);
        debug_assert!(ok);
    }
    persist_node(pool, bigger);
    Ok(bigger)
}

/// `add_child` without per-entry persists — used while building a node
/// that will be persisted wholesale before publication.
pub fn add_child_volatile(pool: &PmemPool, node: PmPtr, b: u8, child: Tagged) -> bool {
    let nt = node_type(pool, node);
    let count = node_count(pool, node);
    if count == node_capacity(nt) {
        return false;
    }
    match nt {
        NT_N4 => {
            write_vol(pool, node.add(N4_KEYS + count as u64), &b);
            write_vol_u64(
                pool,
                node.add(N4_CHILDREN + 8 * count as u64),
                child.encode(),
            );
        }
        NT_N16 => {
            write_vol(pool, node.add(N16_KEYS + count as u64), &b);
            write_vol_u64(
                pool,
                node.add(N16_CHILDREN + 8 * count as u64),
                child.encode(),
            );
        }
        NT_N48 => {
            write_vol(pool, node.add(N48_INDEX + b as u64), &(count as u8));
            write_vol_u64(
                pool,
                node.add(N48_CHILDREN + 8 * count as u64),
                child.encode(),
            );
        }
        NT_N256 => {
            write_vol_u64(pool, node.add(N256_CHILDREN + 8 * b as u64), child.encode());
        }
        _ => panic!("bad node type {nt}"),
    }
    set_count(pool, node, count + 1);
    true
}

/// The next-larger node kind.
pub fn grown_kind(nt: u8) -> u8 {
    match nt {
        NT_N4 => NT_N16,
        NT_N16 => NT_N48,
        NT_N48 => NT_N256,
        _ => panic!("cannot grow {nt}"),
    }
}

/// The next-smaller kind when underflowed (with hysteresis), if any.
pub fn shrink_kind(nt: u8, count: usize) -> Option<u8> {
    match nt {
        NT_N16 if count <= 3 => Some(NT_N4),
        NT_N48 if count <= 12 => Some(NT_N16),
        NT_N256 if count <= 36 => Some(NT_N48),
        _ => None,
    }
}

// ----------------------------------------------------------------- values

/// Allocate, write and persist a value object. WOART/ART+CoW use the pool's
/// general-purpose allocator directly (one allocation per value — the cost
/// HART's EPallocator amortizes away).
pub fn alloc_value(pool: &PmemPool, v: &Value) -> Result<PmPtr> {
    let size = v.class_size();
    let p = pool.alloc_raw(size, 8).ok_or(Error::PmExhausted)?;
    pool.write_bytes(p, v.as_slice());
    pool.persist(p, size);
    Ok(p)
}

/// Free a value object.
pub fn free_value(pool: &PmemPool, p: PmPtr, len: usize) {
    let size = if len <= 8 { 8 } else { 16 };
    pool.free_raw(p, size, 8);
}

/// Read a value object of `len` bytes.
pub fn read_value(pool: &PmemPool, p: PmPtr, len: usize) -> Value {
    let len = len.min(MAX_VALUE_LEN);
    let mut buf = [0u8; MAX_VALUE_LEN];
    pool.read_bytes(p, &mut buf[..len.max(1)]);
    Value::new(&buf[..len]).expect("bounded")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hart_pm::PoolConfig;

    fn pool() -> PmemPool {
        PmemPool::new(PoolConfig::test_small())
    }

    #[test]
    fn tagged_roundtrip() {
        assert_eq!(Tagged::decode(0), Tagged::Null);
        let l = Tagged::Leaf(PmPtr(0x100));
        let n = Tagged::Node(PmPtr(0x200));
        assert_eq!(Tagged::decode(l.encode()), l);
        assert_eq!(Tagged::decode(n.encode()), n);
        assert_eq!(l.encode() & 1, 1);
        assert_eq!(n.encode() & 1, 0);
    }

    #[test]
    fn node_sizes_are_line_multiples_or_better() {
        assert_eq!(node_size(NT_N4), 64);
        assert_eq!(node_size(NT_N16), 176);
        assert_eq!(node_size(NT_N48), 672);
        assert_eq!(node_size(NT_N256), 2080);
    }

    #[test]
    fn add_find_remove_across_kinds() {
        let pool = pool();
        for nt in [NT_N4, NT_N16, NT_N48, NT_N256] {
            let node = alloc_node(&pool, nt, b"pfx").unwrap();
            let cap = node_capacity(nt);
            for i in 0..cap {
                assert!(add_child(
                    &pool,
                    node,
                    i as u8,
                    Tagged::Leaf(PmPtr(64 * (i as u64 + 1)))
                ));
            }
            if nt != NT_N256 {
                // A fresh byte on a full node must be refused (NODE256 can
                // never be full for a fresh byte — all 256 are taken).
                assert!(
                    !add_child(&pool, node, cap as u8, Tagged::Leaf(PmPtr(64))),
                    "full {nt}"
                );
            }
            for i in 0..cap {
                let slot = find_child_slot(&pool, node, i as u8).expect("present");
                assert_eq!(
                    read_slot(&pool, slot),
                    Tagged::Leaf(PmPtr(64 * (i as u64 + 1)))
                );
            }
            assert!(find_child_slot(&pool, node, 254).is_none() || cap == 256);
            assert!(remove_child(&pool, node, 0));
            assert!(!remove_child(&pool, node, 0));
            assert_eq!(node_count(&pool, node), cap - 1);
            assert!(find_child_slot(&pool, node, 0).is_none());
        }
    }

    #[test]
    fn prefix_roundtrip() {
        let pool = pool();
        let node = alloc_node(&pool, NT_N4, b"hello").unwrap();
        assert_eq!(prefix(&pool, node).as_slice(), b"hello");
        set_prefix(&pool, node, b"");
        assert!(prefix(&pool, node).is_empty());
    }

    #[test]
    fn children_sorted_is_sorted() {
        let pool = pool();
        let node = alloc_node(&pool, NT_N16, b"").unwrap();
        for b in [9u8, 3, 200, 0, 77] {
            add_child(&pool, node, b, Tagged::Leaf(PmPtr(64 + b as u64 * 8)));
        }
        let bytes: Vec<u8> = children_sorted(&pool, node)
            .iter()
            .map(|(b, _)| *b)
            .collect();
        assert_eq!(bytes, vec![0, 3, 9, 77, 200]);
    }

    #[test]
    fn copy_to_kind_preserves_edges() {
        let pool = pool();
        let node = alloc_node(&pool, NT_N4, b"pp").unwrap();
        for b in [5u8, 1, 9, 7] {
            add_child(&pool, node, b, Tagged::Leaf(PmPtr(64 + b as u64 * 8)));
        }
        let big = copy_to_kind(&pool, node, NT_N16).unwrap();
        assert_eq!(node_type(&pool, big), NT_N16);
        assert_eq!(prefix(&pool, big).as_slice(), b"pp");
        assert_eq!(children_sorted(&pool, big), children_sorted(&pool, node));
    }

    #[test]
    fn n48_reuses_holes() {
        let pool = pool();
        let node = alloc_node(&pool, NT_N48, b"").unwrap();
        for b in 0..48u8 {
            add_child(&pool, node, b, Tagged::Leaf(PmPtr(64 + 8 * b as u64)));
        }
        assert!(remove_child(&pool, node, 20));
        assert!(add_child(&pool, node, 100, Tagged::Leaf(PmPtr(6400))));
        let slot = find_child_slot(&pool, node, 100).unwrap();
        assert_eq!(read_slot(&pool, slot), Tagged::Leaf(PmPtr(6400)));
        assert_eq!(node_count(&pool, node), 48);
    }

    #[test]
    fn shrink_thresholds() {
        assert_eq!(shrink_kind(NT_N16, 3), Some(NT_N4));
        assert_eq!(shrink_kind(NT_N16, 4), None);
        assert_eq!(shrink_kind(NT_N48, 12), Some(NT_N16));
        assert_eq!(shrink_kind(NT_N256, 36), Some(NT_N48));
        assert_eq!(shrink_kind(NT_N4, 1), None);
    }

    #[test]
    fn value_roundtrip() {
        let pool = pool();
        let v = Value::new(b"0123456789abcdef").unwrap();
        let p = alloc_value(&pool, &v).unwrap();
        assert_eq!(read_value(&pool, p, 16), v);
        free_value(&pool, p, 16);
        let w = Value::from_u64(7);
        let q = alloc_value(&pool, &w).unwrap();
        assert_eq!(read_value(&pool, q, 8).as_u64(), 7);
    }
}
