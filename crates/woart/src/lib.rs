//! WOART — Write Optimal Adaptive Radix Tree (Lee et al., FAST 2017), the
//! paper's strongest baseline.
//!
//! WOART is an ART that lives **entirely in persistent memory**: every
//! internal node, leaf and value object is PM-resident, and every structural
//! mutation is made durable with `persistent()` calls in failure-atomic
//! order (new data persisted before the 8-byte parent-pointer store that
//! publishes it). This is exactly the cost profile HART is designed to
//! beat (§IV-B): WOART pays
//!
//! * PM read latency on every node visited during traversal,
//! * `persistent()` on every node mutation (HART persists no internal
//!   nodes at all), and
//! * one general-purpose PM allocation per node/leaf/value (HART's
//!   EPallocator amortizes allocation over 56-object chunks).
//!
//! Node representations follow WOART's design: NODE4 and NODE16 keep their
//! key arrays *unsorted* and append new entries (avoiding the shifting
//! writes a sorted array would need on PM); NODE48 uses a 256-byte index;
//! NODE256 a direct child array. Leaves reuse HART's 40-byte layout
//! (complete key + out-of-leaf value pointer) since the paper gives all
//! three ART-based trees "a similar update mechanism ... only the pointer
//! to a value is stored in each leaf".
//!
//! The crate also exposes its PM node layer ([`layout`]) to the `hart-artcow`
//! crate, which shares the node formats but replaces in-place node mutation
//! with copy-on-write.

pub mod layout;
mod tree;

pub use tree::Woart;
