//! The WOART tree: PM-resident ART with failure-atomic 8-byte publishes.

use crate::layout::*;
use hart_epalloc::{
    leaf_read_key, leaf_read_pvalue, leaf_read_val_len, leaf_write_key, leaf_write_pvalue,
    LEAF_SIZE,
};
use hart_kv::{Error, Key, MemoryStats, PersistentIndex, Result, Value, MAX_KEY_LEN};
use hart_pm::{PmPtr, PmemPool, PoolConfig};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const MAGIC: u64 = 0x574F_4152_5430_3031; // "WOART001"

/// Byte `i` of the terminated key view.
#[inline]
fn tb(key: &[u8], i: usize) -> u8 {
    if i >= key.len() {
        0
    } else {
        key[i]
    }
}

/// Write Optimal Adaptive Radix Tree, entirely in emulated PM.
///
/// The paper evaluates WOART single-threaded; a tree-level reader-writer
/// lock makes this implementation safely `Sync` without giving it
/// concurrency machinery it does not have in the original.
pub struct Woart {
    pool: Arc<PmemPool>,
    lock: RwLock<()>,
    len: AtomicUsize,
    root_slot: PmPtr,
}

impl Woart {
    /// Format a fresh pool.
    pub fn create(pool: Arc<PmemPool>) -> Result<Woart> {
        let base = pool.root_area(16);
        pool.write_zeros(base, 16);
        pool.persist(base, 16);
        pool.write_u64_atomic(base, MAGIC);
        pool.persist(base, 8);
        Ok(Woart {
            root_slot: base.add(8),
            pool,
            lock: RwLock::new(()),
            len: AtomicUsize::new(0),
        })
    }

    /// Open an existing pool. WOART is a pure-PM tree: "they have no need
    /// to recover nodes after a system failure or a normal reboot" — only
    /// the record count is re-derived (one traversal).
    pub fn open(pool: Arc<PmemPool>) -> Result<Woart> {
        let base = pool.root_area(16);
        if pool.read::<u64>(base) != MAGIC {
            return Err(Error::Corrupted("bad WOART magic"));
        }
        let t = Woart {
            root_slot: base.add(8),
            pool,
            lock: RwLock::new(()),
            len: AtomicUsize::new(0),
        };
        let mut n = 0;
        t.for_each_leaf(|_| n += 1);
        t.len.store(n, Ordering::Relaxed);
        Ok(t)
    }

    /// Convenience constructor: fresh pool from a config.
    pub fn with_config(cfg: PoolConfig) -> Result<Woart> {
        Woart::create(Arc::new(PmemPool::new(cfg)))
    }

    /// The underlying pool.
    pub fn pm_pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    fn make_leaf(&self, key: &Key, value: &Value) -> Result<PmPtr> {
        let pool = &self.pool;
        let vptr = alloc_value(pool, value)?; // value persisted first
        let leaf = pool.alloc_raw(LEAF_SIZE, 8).ok_or(Error::PmExhausted)?;
        leaf_write_key(pool, leaf, key);
        leaf_write_pvalue(pool, leaf, vptr, value.len());
        pool.persist(leaf, LEAF_SIZE); // whole leaf, one persistent() call
        Ok(leaf)
    }

    fn free_leaf(&self, leaf: PmPtr) {
        let pool = &self.pool;
        let pv = leaf_read_pvalue(pool, leaf);
        if !pv.is_null() {
            free_value(pool, pv, leaf_read_val_len(pool, leaf));
        }
        pool.free_raw(leaf, LEAF_SIZE, 8);
    }

    /// The common out-of-place value update of §IV ("a new PM space is
    /// allocated for the new value; a pointer to that new value is updated
    /// as the last step to ensure consistency").
    fn update_value(&self, leaf: PmPtr, value: &Value) -> Result<()> {
        let pool = &self.pool;
        let old = leaf_read_pvalue(pool, leaf);
        let old_len = leaf_read_val_len(pool, leaf);
        let new = alloc_value(pool, value)?;
        leaf_write_pvalue(pool, leaf, new, value.len());
        hart_epalloc::persist_leaf_pvalue(pool, leaf);
        if !old.is_null() {
            free_value(pool, old, old_len);
        }
        Ok(())
    }

    fn insert_rec(&self, slot: PmPtr, key: &Key, depth: usize, value: &Value) -> Result<bool> {
        let pool = &self.pool;
        let kb = key.as_slice();
        match read_slot(pool, slot) {
            Tagged::Null => {
                // Empty tree: publish the first leaf.
                let leaf = self.make_leaf(key, value)?;
                publish_slot(pool, slot, Tagged::Leaf(leaf));
                Ok(true)
            }
            Tagged::Leaf(l) => {
                let lk = leaf_read_key(pool, l);
                if lk.as_slice() == kb {
                    self.update_value(l, value)?;
                    return Ok(false);
                }
                // Lazy expansion: new NODE4 at the divergence point,
                // fully persisted before the parent pointer swings.
                let lks = lk.as_slice();
                let mut lcp = 0;
                while depth + lcp < lks.len()
                    && depth + lcp < kb.len()
                    && lks[depth + lcp] == kb[depth + lcp]
                {
                    lcp += 1;
                }
                let new_leaf = self.make_leaf(key, value)?;
                let node = alloc_node(pool, NT_N4, &kb[depth..depth + lcp])?;
                add_child_volatile(pool, node, tb(lks, depth + lcp), Tagged::Leaf(l));
                add_child_volatile(pool, node, tb(kb, depth + lcp), Tagged::Leaf(new_leaf));
                persist_node(pool, node);
                publish_slot(pool, slot, Tagged::Node(node));
                Ok(true)
            }
            Tagged::Node(n) => {
                let pfx = prefix(pool, n);
                let p = pfx.as_slice();
                let mut m = 0;
                while m < p.len() && depth + m < kb.len() && kb[depth + m] == p[m] {
                    m += 1;
                }
                if m < p.len() {
                    // Prefix split: build the new parent, truncate the old
                    // node's prefix, then publish.
                    let e_old = p[m];
                    let b_new = tb(kb, depth + m);
                    let new_leaf = self.make_leaf(key, value)?;
                    let parent = alloc_node(pool, NT_N4, &p[..m])?;
                    add_child_volatile(pool, parent, e_old, Tagged::Node(n));
                    add_child_volatile(pool, parent, b_new, Tagged::Leaf(new_leaf));
                    persist_node(pool, parent);
                    set_prefix(pool, n, &p[m + 1..]);
                    persist_header(pool, n);
                    publish_slot(pool, slot, Tagged::Node(parent));
                    Ok(true)
                } else {
                    let depth = depth + p.len();
                    let b = tb(kb, depth);
                    if let Some(cslot) = find_child_slot(pool, n, b) {
                        self.insert_rec(cslot, key, depth + 1, value)
                    } else {
                        let new_leaf = self.make_leaf(key, value)?;
                        if !add_child(pool, n, b, Tagged::Leaf(new_leaf)) {
                            // Node full: grow out-of-place, publish, free.
                            let bigger = copy_to_kind(pool, n, grown_kind(node_type(pool, n)))?;
                            let ok = add_child_volatile(pool, bigger, b, Tagged::Leaf(new_leaf));
                            debug_assert!(ok);
                            persist_node(pool, bigger);
                            publish_slot(pool, slot, Tagged::Node(bigger));
                            free_node(pool, n);
                        }
                        Ok(true)
                    }
                }
            }
        }
    }

    fn remove_from_node(&self, node: PmPtr, key: &[u8], depth: usize) -> Result<bool> {
        let pool = &self.pool;
        let pfx = prefix(pool, node);
        let p = pfx.as_slice();
        if key.len() < depth + p.len() || &key[depth..depth + p.len()] != p {
            return Ok(false);
        }
        let depth = depth + p.len();
        let b = tb(key, depth);
        let Some(slot) = find_child_slot(pool, node, b) else {
            return Ok(false);
        };
        match read_slot(pool, slot) {
            Tagged::Null => Ok(false),
            Tagged::Leaf(l) => {
                if leaf_read_key(pool, l).as_slice() != key {
                    return Ok(false);
                }
                remove_child(pool, node, b);
                self.free_leaf(l);
                Ok(true)
            }
            Tagged::Node(child) => {
                let ok = self.remove_from_node(child, key, depth + 1)?;
                if ok {
                    self.fixup_after_remove(slot, child)?;
                }
                Ok(ok)
            }
        }
    }

    /// Post-delete structural maintenance: collapse single-child nodes
    /// (delete-side path compression) and shrink underflowed kinds, always
    /// out-of-place + publish.
    fn fixup_after_remove(&self, slot: PmPtr, node: PmPtr) -> Result<()> {
        let pool = &self.pool;
        let count = node_count(pool, node);
        if count == 1 {
            let (eb, only) = children_sorted(pool, node)[0];
            match only {
                Tagged::Leaf(l) => {
                    publish_slot(pool, slot, Tagged::Leaf(l));
                    free_node(pool, node);
                }
                Tagged::Node(gn) => {
                    let mut buf = [0u8; MAX_KEY_LEN];
                    let a = prefix(pool, node);
                    let c = prefix(pool, gn);
                    let total = a.len() + 1 + c.len();
                    assert!(total <= MAX_KEY_LEN);
                    buf[..a.len()].copy_from_slice(a.as_slice());
                    buf[a.len()] = eb;
                    buf[a.len() + 1..total].copy_from_slice(c.as_slice());
                    set_prefix(pool, gn, &buf[..total]);
                    persist_header(pool, gn);
                    publish_slot(pool, slot, Tagged::Node(gn));
                    free_node(pool, node);
                }
                Tagged::Null => unreachable!("count==1 implies a live child"),
            }
        } else if let Some(snt) = shrink_kind(node_type(pool, node), count) {
            let smaller = copy_to_kind(pool, node, snt)?;
            publish_slot(pool, slot, Tagged::Node(smaller));
            free_node(pool, node);
        }
        Ok(())
    }

    /// In-order traversal over every leaf.
    pub fn for_each_leaf<F: FnMut(PmPtr)>(&self, mut f: F) {
        fn walk<F: FnMut(PmPtr)>(pool: &PmemPool, t: Tagged, f: &mut F) {
            match t {
                Tagged::Null => {}
                Tagged::Leaf(l) => f(l),
                Tagged::Node(n) => {
                    for (_, c) in children_sorted(pool, n) {
                        walk(pool, c, f);
                    }
                }
            }
        }
        walk(&self.pool, read_slot(&self.pool, self.root_slot), &mut f);
    }

    /// Bounded in-order descent for `range`/`scan`: seek to `start` like a
    /// point search (the left spine compares compressed prefixes and skips
    /// smaller sibling edges), then emit leaves in key order until `end`,
    /// `limit`, or the tree is exhausted — O(depth + answer) node visits
    /// instead of one PM key read per live leaf.
    fn scan_ordered(&self, s: &[u8], e: &[u8], limit: usize) -> Vec<(Key, Value)> {
        /// Returns `false` once the traversal is done (past `end` or at
        /// `limit`); in-order visiting makes that a global stop.
        #[allow(clippy::too_many_arguments)]
        fn walk(
            pool: &PmemPool,
            t: Tagged,
            depth: usize,
            seeking: bool,
            s: &[u8],
            e: &[u8],
            limit: usize,
            out: &mut Vec<(Key, Value)>,
        ) -> bool {
            match t {
                Tagged::Null => true,
                Tagged::Leaf(l) => {
                    let k = leaf_read_key(pool, l);
                    let ks = k.as_slice();
                    if ks > e {
                        return false;
                    }
                    if ks >= s {
                        if let Ok(key) = Key::new(ks) {
                            let pv = leaf_read_pvalue(pool, l);
                            out.push((key, read_value(pool, pv, leaf_read_val_len(pool, l))));
                        }
                        if out.len() >= limit {
                            return false;
                        }
                    }
                    true
                }
                Tagged::Node(n) => {
                    let mut depth = depth;
                    let mut seeking = seeking;
                    if seeking {
                        // Compare the compressed prefix against the
                        // terminated start key: a smaller prefix byte means
                        // the whole subtree precedes `start` (skip it), a
                        // larger one that it follows (emit everything,
                        // still bounded by `end` at the leaves).
                        let pfx = prefix(pool, n);
                        for (i, &pb) in pfx.as_slice().iter().enumerate() {
                            match pb.cmp(&tb(s, depth + i)) {
                                std::cmp::Ordering::Less => return true,
                                std::cmp::Ordering::Greater => {
                                    seeking = false;
                                    break;
                                }
                                std::cmp::Ordering::Equal => {}
                            }
                        }
                        depth += pfx.as_slice().len();
                    }
                    let sb = tb(s, depth);
                    for (b, c) in children_sorted(pool, n) {
                        if seeking && b < sb {
                            continue;
                        }
                        if !walk(pool, c, depth + 1, seeking && b == sb, s, e, limit, out) {
                            return false;
                        }
                    }
                    true
                }
            }
        }
        let mut out = Vec::new();
        if s > e || limit == 0 {
            return out;
        }
        walk(
            &self.pool,
            read_slot(&self.pool, self.root_slot),
            0,
            true,
            s,
            e,
            limit,
            &mut out,
        );
        out
    }
}

impl PersistentIndex for Woart {
    fn insert(&self, key: &Key, value: &Value) -> Result<()> {
        let _g = self.lock.write();
        if self.insert_rec(self.root_slot, key, 0, value)? {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn search(&self, key: &Key) -> Result<Option<Value>> {
        let _g = self.lock.read();
        let pool = &self.pool;
        let kb = key.as_slice();
        let mut cur = read_slot(pool, self.root_slot);
        let mut depth = 0usize;
        loop {
            match cur {
                Tagged::Null => return Ok(None),
                Tagged::Leaf(l) => {
                    if leaf_read_key(pool, l).as_slice() != kb {
                        return Ok(None);
                    }
                    let pv = leaf_read_pvalue(pool, l);
                    if pv.is_null() {
                        return Ok(None);
                    }
                    return Ok(Some(read_value(pool, pv, leaf_read_val_len(pool, l))));
                }
                Tagged::Node(n) => {
                    let pfx = prefix(pool, n);
                    let p = pfx.as_slice();
                    if kb.len() < depth + p.len() || &kb[depth..depth + p.len()] != p {
                        return Ok(None);
                    }
                    depth += p.len();
                    let Some(slot) = find_child_slot(pool, n, tb(kb, depth)) else {
                        return Ok(None);
                    };
                    cur = read_slot(pool, slot);
                    depth += 1;
                }
            }
        }
    }

    fn update(&self, key: &Key, value: &Value) -> Result<bool> {
        let _g = self.lock.write();
        let pool = &self.pool;
        let kb = key.as_slice();
        // Locate the leaf, then run the out-of-place value swap.
        let mut cur = read_slot(pool, self.root_slot);
        let mut depth = 0usize;
        loop {
            match cur {
                Tagged::Null => return Ok(false),
                Tagged::Leaf(l) => {
                    if leaf_read_key(pool, l).as_slice() != kb {
                        return Ok(false);
                    }
                    self.update_value(l, value)?;
                    return Ok(true);
                }
                Tagged::Node(n) => {
                    let pfx = prefix(pool, n);
                    let p = pfx.as_slice();
                    if kb.len() < depth + p.len() || &kb[depth..depth + p.len()] != p {
                        return Ok(false);
                    }
                    depth += p.len();
                    let Some(slot) = find_child_slot(pool, n, tb(kb, depth)) else {
                        return Ok(false);
                    };
                    cur = read_slot(pool, slot);
                    depth += 1;
                }
            }
        }
    }

    fn remove(&self, key: &Key) -> Result<bool> {
        let _g = self.lock.write();
        let pool = &self.pool;
        let kb = key.as_slice();
        let removed = match read_slot(pool, self.root_slot) {
            Tagged::Null => false,
            Tagged::Leaf(l) => {
                if leaf_read_key(pool, l).as_slice() == kb {
                    publish_slot(pool, self.root_slot, Tagged::Null);
                    self.free_leaf(l);
                    true
                } else {
                    false
                }
            }
            Tagged::Node(n) => {
                let ok = self.remove_from_node(n, kb, 0)?;
                if ok {
                    self.fixup_after_remove(self.root_slot, n)?;
                }
                ok
            }
        };
        if removed {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        Ok(removed)
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn memory_stats(&self) -> MemoryStats {
        // "WOART and ART+CoW do not use any DRAM" (§IV-E).
        MemoryStats {
            dram_bytes: std::mem::size_of::<Self>(),
            pm_bytes: self.pool.stats().snapshot().bytes_in_use as usize,
        }
    }

    fn range(&self, start: &Key, end: &Key) -> Result<Vec<(Key, Value)>> {
        let _g = self.lock.read();
        Ok(self.scan_ordered(start.as_slice(), end.as_slice(), usize::MAX))
    }

    fn scan(&self, start: &Key, end: &Key, limit: usize) -> Result<Vec<(Key, Value)>> {
        let _g = self.lock.read();
        Ok(self.scan_ordered(start.as_slice(), end.as_slice(), limit))
    }

    fn name(&self) -> &'static str {
        "WOART"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn fresh() -> Woart {
        Woart::with_config(PoolConfig::test_small()).unwrap()
    }

    fn k(s: &str) -> Key {
        Key::from_str(s).unwrap()
    }

    fn v(n: u64) -> Value {
        Value::from_u64(n)
    }

    #[test]
    fn roundtrip_basics() {
        let t = fresh();
        t.insert(&k("romane"), &v(1)).unwrap();
        t.insert(&k("romanus"), &v(2)).unwrap();
        t.insert(&k("romulus"), &v(3)).unwrap();
        assert_eq!(t.search(&k("romane")).unwrap().unwrap().as_u64(), 1);
        assert_eq!(t.search(&k("romanus")).unwrap().unwrap().as_u64(), 2);
        assert_eq!(t.search(&k("romulus")).unwrap().unwrap().as_u64(), 3);
        assert_eq!(t.search(&k("rom")).unwrap(), None);
        assert_eq!(t.search(&k("romanes")).unwrap(), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn prefix_keys() {
        let t = fresh();
        for key in ["a", "ab", "abc", "abcd"] {
            t.insert(&k(key), &v(key.len() as u64)).unwrap();
        }
        for key in ["a", "ab", "abc", "abcd"] {
            assert_eq!(
                t.search(&k(key)).unwrap().unwrap().as_u64(),
                key.len() as u64
            );
        }
        assert!(t.remove(&k("ab")).unwrap());
        assert_eq!(t.search(&k("ab")).unwrap(), None);
        assert_eq!(t.search(&k("abc")).unwrap().unwrap().as_u64(), 3);
    }

    #[test]
    fn upsert_and_update() {
        let t = fresh();
        t.insert(&k("key"), &v(1)).unwrap();
        t.insert(&k("key"), &v(2)).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.search(&k("key")).unwrap().unwrap().as_u64(), 2);
        assert!(t
            .update(&k("key"), &Value::new(b"0123456789abcdef").unwrap())
            .unwrap());
        assert_eq!(
            t.search(&k("key")).unwrap().unwrap().as_slice(),
            b"0123456789abcdef"
        );
        assert!(!t.update(&k("nope"), &v(0)).unwrap());
    }

    #[test]
    fn grows_and_shrinks_node_kinds() {
        let t = fresh();
        // 200 distinct first bytes forces NODE256 at the root.
        let keys: Vec<Key> = (0..200u64)
            .map(|i| Key::from_u64_base62(i * 62, 4))
            .collect();
        for (i, key) in keys.iter().enumerate() {
            t.insert(key, &v(i as u64)).unwrap();
        }
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(t.search(key).unwrap().unwrap().as_u64(), i as u64, "{key}");
        }
        // Remove most, forcing shrinks back down.
        for key in &keys[4..] {
            assert!(t.remove(key).unwrap());
        }
        for key in &keys[..4] {
            assert!(t.search(key).unwrap().is_some());
        }
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn matches_btreemap_model() {
        let t = fresh();
        let mut model: BTreeMap<String, u64> = BTreeMap::new();
        // Deterministic pseudo-random op sequence.
        let mut state = 0x1234_5678u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..4000 {
            let r = rng();
            let key_s = format!("K{:03}", r % 500);
            let key = k(&key_s);
            match r % 4 {
                0 | 1 => {
                    t.insert(&key, &v(r)).unwrap();
                    model.insert(key_s, r);
                }
                2 => {
                    let got = t.remove(&key).unwrap();
                    let expect = model.remove(&key_s).is_some();
                    assert_eq!(got, expect, "remove {key_s}");
                }
                _ => {
                    let got = t.search(&key).unwrap().map(|x| x.as_u64());
                    assert_eq!(got, model.get(&key_s).copied(), "search {key_s}");
                }
            }
            assert_eq!(t.len(), model.len());
        }
        // Final sweep.
        for (key_s, val) in &model {
            assert_eq!(t.search(&k(key_s)).unwrap().unwrap().as_u64(), *val);
        }
    }

    #[test]
    fn reopen_preserves_tree() {
        let pool = Arc::new(PmemPool::new(PoolConfig::test_small()));
        let t = Woart::create(Arc::clone(&pool)).unwrap();
        for i in 0..500u64 {
            t.insert(&Key::from_u64_base62(i, 6), &v(i)).unwrap();
        }
        drop(t);
        let t2 = Woart::open(pool).unwrap();
        assert_eq!(t2.len(), 500);
        for i in 0..500u64 {
            assert_eq!(
                t2.search(&Key::from_u64_base62(i, 6))
                    .unwrap()
                    .unwrap()
                    .as_u64(),
                i
            );
        }
    }

    #[test]
    fn range_is_sorted_and_bounded() {
        let t = fresh();
        for i in (0..100u64).rev() {
            t.insert(&Key::from_u64_base62(i, 4), &v(i)).unwrap();
        }
        let lo = Key::from_u64_base62(10, 4);
        let hi = Key::from_u64_base62(20, 4);
        let got = t.range(&lo, &hi).unwrap();
        assert_eq!(got.len(), 11);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(got[0].1.as_u64(), 10);
        assert_eq!(got[10].1.as_u64(), 20);
    }

    #[test]
    fn delete_everything_frees_pm() {
        let t = fresh();
        let baseline = t.pm_pool().stats().snapshot().bytes_in_use;
        for i in 0..300u64 {
            t.insert(&Key::from_u64_base62(i, 6), &v(i)).unwrap();
        }
        for i in 0..300u64 {
            assert!(t.remove(&Key::from_u64_base62(i, 6)).unwrap());
        }
        assert_eq!(t.len(), 0);
        assert_eq!(
            t.pm_pool().stats().snapshot().bytes_in_use,
            baseline,
            "all nodes, leaves and values must be freed"
        );
    }

    #[test]
    fn persists_are_counted() {
        let t = fresh();
        let before = t.pm_pool().stats().snapshot().persist_calls;
        t.insert(&k("abc"), &v(1)).unwrap();
        let after = t.pm_pool().stats().snapshot().persist_calls;
        assert!(after > before, "insert must issue persistent() calls");
    }
}
