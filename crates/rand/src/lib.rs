//! A drop-in subset of the `rand` 0.8 API for offline builds.
//!
//! Provides exactly what the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` and
//! `Rng::fill_bytes`. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic across platforms, which the workload
//! generators rely on for reproducible benchmarks.
//!
//! `gen_range` uses Lemire-style rejection-free mapping (widening
//! multiply) — a negligible modulo bias is acceptable for workload
//! generation and tests, and documented here on purpose.

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Derive a full seed from one `u64` (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_below<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Successor, for inclusive ranges; saturates at the type maximum.
    fn successor(self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample_below<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u128) - (lo as u128);
                // Widening multiply maps a u64 draw onto [0, span).
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                lo + draw
            }
            #[inline]
            fn successor(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Range argument forms accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw a value inside the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl<T: UniformInt> SampleRange for Range<T> {
    type Output = T;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_below(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange for RangeInclusive<T> {
    type Output = T;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_below(rng, lo, hi.successor())
    }
}

/// The user-facing generator trait (subset of rand 0.8's `Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draw a value of `T` uniformly over its domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Draw a `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** — the workspace's deterministic standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> StdRng {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(5..=16usize);
            assert!((5..=16).contains(&x));
            let y = r.gen_range(0..62usize);
            assert!(y < 62);
            let z = r.gen_range(0..100u8);
            assert!(z < 100);
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0..10usize)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all 10 values should appear: {seen:?}"
        );
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_fills() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 37];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
