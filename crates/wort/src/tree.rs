//! The WORT tree: fixed 16-way (nibble) radix nodes in PM.

use hart_epalloc::{
    leaf_read_key, leaf_read_pvalue, leaf_read_val_len, leaf_write_key, leaf_write_pvalue,
    persist_leaf_pvalue, LEAF_SIZE,
};
use hart_kv::{Error, Key, MemoryStats, PersistentIndex, Result, Value};
use hart_pm::{PmPtr, PmemPool, PoolConfig};
use hart_woart::layout::{alloc_value, free_value, publish_slot, read_slot, read_value, Tagged};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const MAGIC: u64 = 0x574F_5254_3030_3031; // "WORT0001"

/// Node layout: `prefix_len u8 | pad u8 | prefix [14] (one nibble per
/// byte) | children [16] u64`.
const OFF_PREFIX_LEN: u64 = 0;
const OFF_PREFIX: u64 = 2;
const OFF_CHILDREN: u64 = 16;
const MAX_PREFIX: usize = 14;
const NODE_SIZE: usize = 16 + 16 * 8;
const NODE_ALIGN: u64 = 64;
const FANOUT: u8 = 16;

/// Nibble `i` of the terminated view of `key` (two nibbles per byte, high
/// first; the byte at `key.len()` is the implicit 0 terminator).
#[inline]
fn nib(key: &[u8], i: usize) -> u8 {
    let byte = if i / 2 >= key.len() { 0 } else { key[i / 2] };
    if i.is_multiple_of(2) {
        byte >> 4
    } else {
        byte & 0x0F
    }
}

/// Nibbles in the terminated view.
#[inline]
fn nib_len(key: &[u8]) -> usize {
    2 * (key.len() + 1)
}

fn alloc_node(pool: &PmemPool, prefix: &[u8]) -> Result<PmPtr> {
    debug_assert!(prefix.len() <= MAX_PREFIX);
    let p = pool
        .alloc_raw(NODE_SIZE, NODE_ALIGN)
        .ok_or(Error::PmExhausted)?;
    set_prefix(pool, p, prefix);
    Ok(p)
}

fn free_node(pool: &PmemPool, node: PmPtr) {
    pool.free_raw(node, NODE_SIZE, NODE_ALIGN);
}

fn persist_node(pool: &PmemPool, node: PmPtr) {
    pool.persist(node, NODE_SIZE);
}

fn prefix_of(pool: &PmemPool, node: PmPtr) -> ([u8; MAX_PREFIX], usize) {
    let len = (pool.read::<u8>(node.add(OFF_PREFIX_LEN)) as usize).min(MAX_PREFIX);
    let mut buf = [0u8; MAX_PREFIX];
    pool.read_bytes(node.add(OFF_PREFIX), &mut buf);
    (buf, len)
}

fn set_prefix(pool: &PmemPool, node: PmPtr, p: &[u8]) {
    let mut buf = [0u8; MAX_PREFIX];
    buf[..p.len()].copy_from_slice(p);
    pool.write(node.add(OFF_PREFIX_LEN), &(p.len() as u8));
    pool.write_bytes(node.add(OFF_PREFIX), &buf);
}

fn persist_header(pool: &PmemPool, node: PmPtr) {
    pool.persist(node, OFF_CHILDREN as usize);
}

#[inline]
fn child_slot(node: PmPtr, b: u8) -> PmPtr {
    debug_assert!(b < FANOUT);
    node.add(OFF_CHILDREN + 8 * b as u64)
}

/// Live children as `(nibble, child)` pairs, in nibble order (scanning 16
/// slots — WORT keeps no count, so structure checks are recomputed).
fn children(pool: &PmemPool, node: PmPtr) -> Vec<(u8, Tagged)> {
    (0..FANOUT)
        .filter_map(|b| {
            let c = read_slot(pool, child_slot(node, b));
            (!c.is_null()).then_some((b, c))
        })
        .collect()
}

/// Write Optimal Radix Tree, entirely in emulated PM.
pub struct Wort {
    pool: Arc<PmemPool>,
    lock: RwLock<()>,
    len: AtomicUsize,
    root_slot: PmPtr,
}

impl Wort {
    /// Format a fresh pool.
    pub fn create(pool: Arc<PmemPool>) -> Result<Wort> {
        let base = pool.root_area(16);
        pool.write_zeros(base, 16);
        pool.persist(base, 16);
        pool.write_u64_atomic(base, MAGIC);
        pool.persist(base, 8);
        Ok(Wort {
            root_slot: base.add(8),
            pool,
            lock: RwLock::new(()),
            len: AtomicUsize::new(0),
        })
    }

    /// Open an existing pool (pure-PM tree: only the count is re-derived).
    pub fn open(pool: Arc<PmemPool>) -> Result<Wort> {
        let base = pool.root_area(16);
        if pool.read::<u64>(base) != MAGIC {
            return Err(Error::Corrupted("bad WORT magic"));
        }
        let t = Wort {
            root_slot: base.add(8),
            pool,
            lock: RwLock::new(()),
            len: AtomicUsize::new(0),
        };
        let mut n = 0;
        t.for_each_leaf(|_| n += 1);
        t.len.store(n, Ordering::Relaxed);
        Ok(t)
    }

    /// Convenience constructor: fresh pool from a config.
    pub fn with_config(cfg: PoolConfig) -> Result<Wort> {
        Wort::create(Arc::new(PmemPool::new(cfg)))
    }

    /// The underlying pool.
    pub fn pm_pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    fn make_leaf(&self, key: &Key, value: &Value) -> Result<PmPtr> {
        let pool = &self.pool;
        let vptr = alloc_value(pool, value)?;
        let leaf = pool.alloc_raw(LEAF_SIZE, 8).ok_or(Error::PmExhausted)?;
        leaf_write_key(pool, leaf, key);
        leaf_write_pvalue(pool, leaf, vptr, value.len());
        pool.persist(leaf, LEAF_SIZE);
        Ok(leaf)
    }

    fn free_leaf(&self, leaf: PmPtr) {
        let pool = &self.pool;
        let pv = leaf_read_pvalue(pool, leaf);
        if !pv.is_null() {
            free_value(pool, pv, leaf_read_val_len(pool, leaf));
        }
        pool.free_raw(leaf, LEAF_SIZE, 8);
    }

    fn update_value(&self, leaf: PmPtr, value: &Value) -> Result<()> {
        let pool = &self.pool;
        let old = leaf_read_pvalue(pool, leaf);
        let old_len = leaf_read_val_len(pool, leaf);
        let new = alloc_value(pool, value)?;
        leaf_write_pvalue(pool, leaf, new, value.len());
        persist_leaf_pvalue(pool, leaf);
        if !old.is_null() {
            free_value(pool, old, old_len);
        }
        Ok(())
    }

    /// Build a (possibly chained) subtree joining `existing` and a new
    /// leaf whose keys first diverge at nibble `depth + lcp`. Returns the
    /// fully persisted top node (not yet published).
    fn build_split(
        &self,
        existing: PmPtr,
        ek: &[u8],
        key: &[u8],
        new_leaf: PmPtr,
        depth: usize,
        lcp: usize,
    ) -> Result<PmPtr> {
        let pool = &self.pool;
        let take = lcp.min(MAX_PREFIX);
        let pfx: Vec<u8> = (0..take).map(|i| nib(key, depth + i)).collect();
        let node = alloc_node(pool, &pfx)?;
        if take < lcp {
            // The common run continues: chain another node underneath the
            // shared nibble.
            let shared = nib(key, depth + take);
            let inner = self.build_split(
                existing,
                ek,
                key,
                new_leaf,
                depth + take + 1,
                lcp - take - 1,
            )?;
            pool.write_u64_atomic(child_slot(node, shared), Tagged::Node(inner).encode());
        } else {
            let b_old = nib(ek, depth + lcp);
            let b_new = nib(key, depth + lcp);
            debug_assert_ne!(b_old, b_new, "distinct keys must diverge");
            pool.write_u64_atomic(child_slot(node, b_old), Tagged::Leaf(existing).encode());
            pool.write_u64_atomic(child_slot(node, b_new), Tagged::Leaf(new_leaf).encode());
        }
        persist_node(pool, node);
        Ok(node)
    }

    fn insert_rec(&self, slot: PmPtr, key: &Key, depth: usize, value: &Value) -> Result<bool> {
        let pool = &self.pool;
        let kb = key.as_slice();
        match read_slot(pool, slot) {
            Tagged::Null => {
                let leaf = self.make_leaf(key, value)?;
                publish_slot(pool, slot, Tagged::Leaf(leaf));
                Ok(true)
            }
            Tagged::Leaf(l) => {
                let lk = leaf_read_key(pool, l);
                if lk.as_slice() == kb {
                    self.update_value(l, value)?;
                    return Ok(false);
                }
                let lks = lk.as_slice();
                let mut lcp = 0;
                let max = nib_len(lks).min(nib_len(kb));
                while depth + lcp < max && nib(lks, depth + lcp) == nib(kb, depth + lcp) {
                    lcp += 1;
                }
                let new_leaf = self.make_leaf(key, value)?;
                let top = self.build_split(l, lks, kb, new_leaf, depth, lcp)?;
                publish_slot(pool, slot, Tagged::Node(top));
                Ok(true)
            }
            Tagged::Node(n) => {
                let (p, plen) = prefix_of(pool, n);
                let mut m = 0;
                let kmax = nib_len(kb);
                while m < plen && depth + m < kmax && nib(kb, depth + m) == p[m] {
                    m += 1;
                }
                if m < plen {
                    // Prefix split, WOART-style: new parent + truncated old
                    // prefix, then one atomic publish.
                    let e_old = p[m];
                    let b_new = nib(kb, depth + m);
                    debug_assert_ne!(e_old, b_new);
                    let new_leaf = self.make_leaf(key, value)?;
                    let parent = alloc_node(pool, &p[..m])?;
                    pool.write_u64_atomic(child_slot(parent, e_old), Tagged::Node(n).encode());
                    pool.write_u64_atomic(
                        child_slot(parent, b_new),
                        Tagged::Leaf(new_leaf).encode(),
                    );
                    persist_node(pool, parent);
                    set_prefix(pool, n, &p[m + 1..plen]);
                    persist_header(pool, n);
                    publish_slot(pool, slot, Tagged::Node(parent));
                    Ok(true)
                } else {
                    let depth = depth + plen;
                    let b = nib(kb, depth);
                    let cslot = child_slot(n, b);
                    if read_slot(pool, cslot).is_null() {
                        // The write-optimal case: one leaf persist + one
                        // 8-byte atomic slot publish, nothing else.
                        let new_leaf = self.make_leaf(key, value)?;
                        publish_slot(pool, cslot, Tagged::Leaf(new_leaf));
                        Ok(true)
                    } else {
                        self.insert_rec(cslot, key, depth + 1, value)
                    }
                }
            }
        }
    }

    /// Post-delete maintenance: empty nodes vanish; single-child nodes
    /// collapse into the child when the merged prefix fits.
    fn fixup(&self, slot: PmPtr, node: PmPtr) {
        let pool = &self.pool;
        let kids = children(pool, node);
        match kids.len() {
            0 => {
                publish_slot(pool, slot, Tagged::Null);
                free_node(pool, node);
            }
            1 => {
                let (eb, only) = kids[0];
                match only {
                    Tagged::Leaf(l) => {
                        publish_slot(pool, slot, Tagged::Leaf(l));
                        free_node(pool, node);
                    }
                    Tagged::Node(gn) => {
                        let (p, plen) = prefix_of(pool, node);
                        let (gp, gplen) = prefix_of(pool, gn);
                        if plen + 1 + gplen <= MAX_PREFIX {
                            let mut merged = Vec::with_capacity(plen + 1 + gplen);
                            merged.extend_from_slice(&p[..plen]);
                            merged.push(eb);
                            merged.extend_from_slice(&gp[..gplen]);
                            set_prefix(pool, gn, &merged);
                            persist_header(pool, gn);
                            publish_slot(pool, slot, Tagged::Node(gn));
                            free_node(pool, node);
                        }
                        // Otherwise keep the single-child node: correct,
                        // just not maximally compressed.
                    }
                    Tagged::Null => unreachable!(),
                }
            }
            _ => {}
        }
    }

    fn remove_rec(&self, slot: PmPtr, key: &[u8], depth: usize) -> bool {
        let pool = &self.pool;
        let Tagged::Node(node) = read_slot(pool, slot) else {
            unreachable!()
        };
        let (p, plen) = prefix_of(pool, node);
        let kmax = nib_len(key);
        for (i, &pn) in p[..plen].iter().enumerate() {
            if depth + i >= kmax || nib(key, depth + i) != pn {
                return false;
            }
        }
        let depth = depth + plen;
        let b = nib(key, depth);
        let cslot = child_slot(node, b);
        let removed = match read_slot(pool, cslot) {
            Tagged::Null => false,
            Tagged::Leaf(l) => {
                if leaf_read_key(pool, l).as_slice() == key {
                    publish_slot(pool, cslot, Tagged::Null);
                    self.free_leaf(l);
                    true
                } else {
                    false
                }
            }
            Tagged::Node(_) => self.remove_rec(cslot, key, depth + 1),
        };
        if removed {
            self.fixup(slot, node);
        }
        removed
    }

    /// In-order traversal over every leaf (nibble order = byte order).
    pub fn for_each_leaf<F: FnMut(PmPtr)>(&self, mut f: F) {
        fn walk<F: FnMut(PmPtr)>(pool: &PmemPool, t: Tagged, f: &mut F) {
            match t {
                Tagged::Null => {}
                Tagged::Leaf(l) => f(l),
                Tagged::Node(n) => {
                    for (_, c) in children(pool, n) {
                        walk(pool, c, f);
                    }
                }
            }
        }
        walk(&self.pool, read_slot(&self.pool, self.root_slot), &mut f);
    }

    /// Bounded in-order descent for `range`/`scan`: seek to `start` like a
    /// point search (the left spine compares prefix nibbles and skips
    /// smaller sibling edges), then emit leaves in key order until `end`,
    /// `limit`, or the tree is exhausted — O(depth + answer) node visits
    /// instead of one PM key read per live leaf.
    fn scan_ordered(&self, s: &[u8], e: &[u8], limit: usize) -> Vec<(Key, Value)> {
        /// Returns `false` once the traversal is done (past `end` or at
        /// `limit`); in-order visiting makes that a global stop.
        #[allow(clippy::too_many_arguments)]
        fn walk(
            pool: &PmemPool,
            t: Tagged,
            depth: usize,
            seeking: bool,
            s: &[u8],
            e: &[u8],
            limit: usize,
            out: &mut Vec<(Key, Value)>,
        ) -> bool {
            match t {
                Tagged::Null => true,
                Tagged::Leaf(l) => {
                    let k = leaf_read_key(pool, l);
                    let ks = k.as_slice();
                    if ks > e {
                        return false;
                    }
                    if ks >= s {
                        if let Ok(key) = Key::new(ks) {
                            let pv = leaf_read_pvalue(pool, l);
                            out.push((key, read_value(pool, pv, leaf_read_val_len(pool, l))));
                        }
                        if out.len() >= limit {
                            return false;
                        }
                    }
                    true
                }
                Tagged::Node(n) => {
                    let mut depth = depth;
                    let mut seeking = seeking;
                    if seeking {
                        // Compare the prefix nibbles against the terminated
                        // start key: a smaller prefix nibble means the whole
                        // subtree precedes `start` (skip it), a larger one
                        // that it follows (emit everything, still bounded by
                        // `end` at the leaves).
                        let (pfx, plen) = prefix_of(pool, n);
                        for (i, &pn) in pfx[..plen].iter().enumerate() {
                            match pn.cmp(&nib(s, depth + i)) {
                                std::cmp::Ordering::Less => return true,
                                std::cmp::Ordering::Greater => {
                                    seeking = false;
                                    break;
                                }
                                std::cmp::Ordering::Equal => {}
                            }
                        }
                        depth += plen;
                    }
                    let sn = nib(s, depth);
                    for (b, c) in children(pool, n) {
                        if seeking && b < sn {
                            continue;
                        }
                        if !walk(pool, c, depth + 1, seeking && b == sn, s, e, limit, out) {
                            return false;
                        }
                    }
                    true
                }
            }
        }
        let mut out = Vec::new();
        if s > e || limit == 0 {
            return out;
        }
        walk(
            &self.pool,
            read_slot(&self.pool, self.root_slot),
            0,
            true,
            s,
            e,
            limit,
            &mut out,
        );
        out
    }

    fn descend(&self, key: &[u8]) -> Option<PmPtr> {
        let pool = &self.pool;
        let mut cur = read_slot(pool, self.root_slot);
        let mut depth = 0usize;
        let kmax = nib_len(key);
        loop {
            match cur {
                Tagged::Null => return None,
                Tagged::Leaf(l) => {
                    return (leaf_read_key(pool, l).as_slice() == key).then_some(l);
                }
                Tagged::Node(n) => {
                    let (p, plen) = prefix_of(pool, n);
                    for (i, &pn) in p[..plen].iter().enumerate() {
                        if depth + i >= kmax || nib(key, depth + i) != pn {
                            return None;
                        }
                    }
                    depth += plen;
                    if depth >= kmax {
                        return None;
                    }
                    cur = read_slot(pool, child_slot(n, nib(key, depth)));
                    depth += 1;
                }
            }
        }
    }
}

impl PersistentIndex for Wort {
    fn insert(&self, key: &Key, value: &Value) -> Result<()> {
        let _g = self.lock.write();
        if self.insert_rec(self.root_slot, key, 0, value)? {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn search(&self, key: &Key) -> Result<Option<Value>> {
        let _g = self.lock.read();
        let pool = &self.pool;
        Ok(self.descend(key.as_slice()).map(|leaf| {
            let pv = leaf_read_pvalue(pool, leaf);
            read_value(pool, pv, leaf_read_val_len(pool, leaf))
        }))
    }

    fn update(&self, key: &Key, value: &Value) -> Result<bool> {
        let _g = self.lock.write();
        match self.descend(key.as_slice()) {
            Some(leaf) => {
                self.update_value(leaf, value)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn remove(&self, key: &Key) -> Result<bool> {
        let _g = self.lock.write();
        let pool = &self.pool;
        let kb = key.as_slice();
        let removed = match read_slot(pool, self.root_slot) {
            Tagged::Null => false,
            Tagged::Leaf(l) => {
                if leaf_read_key(pool, l).as_slice() == kb {
                    publish_slot(pool, self.root_slot, Tagged::Null);
                    self.free_leaf(l);
                    true
                } else {
                    false
                }
            }
            Tagged::Node(_) => self.remove_rec(self.root_slot, kb, 0),
        };
        if removed {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        Ok(removed)
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn memory_stats(&self) -> MemoryStats {
        MemoryStats {
            dram_bytes: std::mem::size_of::<Self>(),
            pm_bytes: self.pool.stats().snapshot().bytes_in_use as usize,
        }
    }

    fn range(&self, start: &Key, end: &Key) -> Result<Vec<(Key, Value)>> {
        let _g = self.lock.read();
        Ok(self.scan_ordered(start.as_slice(), end.as_slice(), usize::MAX))
    }

    fn scan(&self, start: &Key, end: &Key, limit: usize) -> Result<Vec<(Key, Value)>> {
        let _g = self.lock.read();
        Ok(self.scan_ordered(start.as_slice(), end.as_slice(), limit))
    }

    fn name(&self) -> &'static str {
        "WORT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn fresh() -> Wort {
        Wort::with_config(PoolConfig::test_small()).unwrap()
    }

    fn k(s: &str) -> Key {
        Key::from_str(s).unwrap()
    }

    fn v(n: u64) -> Value {
        Value::from_u64(n)
    }

    #[test]
    fn nibble_view() {
        assert_eq!(nib(b"\x12", 0), 1);
        assert_eq!(nib(b"\x12", 1), 2);
        assert_eq!(nib(b"\x12", 2), 0, "terminator high nibble");
        assert_eq!(nib(b"\x12", 3), 0, "terminator low nibble");
        assert_eq!(nib_len(b"ab"), 6);
    }

    #[test]
    fn basic_roundtrip() {
        let t = fresh();
        for (i, key) in ["romane", "romanus", "romulus", "a", "ab"]
            .iter()
            .enumerate()
        {
            t.insert(&k(key), &v(i as u64)).unwrap();
        }
        for (i, key) in ["romane", "romanus", "romulus", "a", "ab"]
            .iter()
            .enumerate()
        {
            assert_eq!(
                t.search(&k(key)).unwrap().unwrap().as_u64(),
                i as u64,
                "{key}"
            );
        }
        assert_eq!(t.search(&k("roman")).unwrap(), None);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn long_common_prefixes_chain_nodes() {
        // 20 shared bytes = 40 shared nibbles — far beyond one node's
        // 14-nibble prefix, forcing build_split to chain.
        let t = fresh();
        let a = k("aaaaaaaaaaaaaaaaaaaaAB");
        let b = k("aaaaaaaaaaaaaaaaaaaaCD");
        t.insert(&a, &v(1)).unwrap();
        t.insert(&b, &v(2)).unwrap();
        assert_eq!(t.search(&a).unwrap().unwrap().as_u64(), 1);
        assert_eq!(t.search(&b).unwrap().unwrap().as_u64(), 2);
        assert!(t.remove(&a).unwrap());
        assert_eq!(t.search(&b).unwrap().unwrap().as_u64(), 2);
    }

    #[test]
    fn matches_btreemap_model() {
        let t = fresh();
        let mut model: BTreeMap<String, u64> = BTreeMap::new();
        let mut state = 0x5EED_1234u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..4000 {
            let r = rng();
            let key_s = format!("K{:03}", r % 400);
            let key = k(&key_s);
            match r % 4 {
                0 | 1 => {
                    t.insert(&key, &v(r)).unwrap();
                    model.insert(key_s, r);
                }
                2 => {
                    assert_eq!(t.remove(&key).unwrap(), model.remove(&key_s).is_some());
                }
                _ => {
                    assert_eq!(
                        t.search(&key).unwrap().map(|x| x.as_u64()),
                        model.get(&key_s).copied()
                    );
                }
            }
            assert_eq!(t.len(), model.len());
        }
    }

    #[test]
    fn reopen_preserves_tree() {
        let pool = Arc::new(PmemPool::new(PoolConfig::test_small()));
        let t = Wort::create(Arc::clone(&pool)).unwrap();
        for i in 0..500u64 {
            t.insert(&Key::from_u64_base62(i, 6), &v(i)).unwrap();
        }
        drop(t);
        let t2 = Wort::open(pool).unwrap();
        assert_eq!(t2.len(), 500);
        for i in (0..500u64).step_by(7) {
            assert_eq!(
                t2.search(&Key::from_u64_base62(i, 6))
                    .unwrap()
                    .unwrap()
                    .as_u64(),
                i
            );
        }
    }

    #[test]
    fn delete_everything_frees_pm() {
        let t = fresh();
        let baseline = t.pm_pool().stats().snapshot().bytes_in_use;
        for i in 0..300u64 {
            t.insert(&Key::from_u64_base62(i, 6), &v(i)).unwrap();
        }
        for i in 0..300u64 {
            assert!(t.remove(&Key::from_u64_base62(i, 6)).unwrap());
        }
        assert_eq!(t.len(), 0);
        assert_eq!(
            t.pm_pool().stats().snapshot().bytes_in_use,
            baseline,
            "all nodes, leaves and values must be freed"
        );
    }

    #[test]
    fn range_is_sorted() {
        let t = fresh();
        for i in (0..100u64).rev() {
            t.insert(&Key::from_u64_base62(i, 4), &v(i)).unwrap();
        }
        let got = t
            .range(&Key::from_u64_base62(20, 4), &Key::from_u64_base62(40, 4))
            .unwrap();
        assert_eq!(got.len(), 21);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn update_swaps_values() {
        let t = fresh();
        t.insert(&k("key"), &v(1)).unwrap();
        assert!(t
            .update(&k("key"), &Value::new(b"0123456789abcdef").unwrap())
            .unwrap());
        assert_eq!(
            t.search(&k("key")).unwrap().unwrap().as_slice(),
            b"0123456789abcdef"
        );
        assert!(!t.update(&k("absent"), &v(0)).unwrap());
    }

    #[test]
    fn deeper_than_woart_but_smaller_nodes() {
        // Sanity on the design tension: nibble fanout doubles depth but
        // bounds node size at 144 B.
        assert_eq!(NODE_SIZE, 144);
        let t = fresh();
        for i in 0..1000u64 {
            t.insert(&Key::from_u64_base62(i, 8), &v(i)).unwrap();
        }
        assert_eq!(t.len(), 1000);
        for i in (0..1000u64).step_by(97) {
            assert!(t.search(&Key::from_u64_base62(i, 8)).unwrap().is_some());
        }
    }
}
