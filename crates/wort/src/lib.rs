//! WORT — Write Optimal Radix Tree (Lee et al., FAST 2017), the third
//! member of the radix-tree trio the HART paper builds on (its reference
//! [7] proposes WORT, WOART and ART+CoW; the paper evaluates the latter
//! two because "among the three trees, WOART performs the best in most
//! cases"). This crate completes the family so the trade-off WOART makes —
//! adaptive nodes at the cost of more complex writes — can be measured
//! against the original fixed-fanout design.
//!
//! WORT is a **non-adaptive** radix tree over 4-bit nibbles:
//!
//! * every inner node has a fixed 16-slot child array — no NODE4→…→NODE256
//!   growing or shrinking, so a child insert is a single 8-byte atomic
//!   pointer store (the "write optimal" property);
//! * path compression collapses single-child chains into a per-node prefix
//!   (up to 14 nibbles; longer runs chain nodes);
//! * the whole tree lives in emulated PM; traversals pay PM read latency,
//!   and every structural change is published with persist-then-swing
//!   ordering.
//!
//! Memory trade-off vs WOART: 16 nibble children per node mean twice the
//! tree depth of a byte-based ART, but each node is only 144 bytes — the
//! exact design tension §II-A of the HART paper describes.
//!
//! Leaves reuse the workspace 40-byte layout; the tagged-pointer encoding
//! comes from [`hart_woart::layout`].

mod tree;

pub use tree::Wort;
