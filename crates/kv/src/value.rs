//! Fixed-capacity inline values.
//!
//! §III-A.5: "For simplicity, HART currently only supports two sizes of value
//! objects: 8-byte values and 16-byte values." A [`Value`] carries up to 16
//! bytes; the allocator picks the 8- or 16-byte object class from the length.

use crate::error::{Error, Result};
use std::fmt;

/// Maximum value length in bytes (the larger of the paper's two classes).
pub const MAX_VALUE_LEN: usize = 16;

/// An inline value of 0–16 bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Value {
    len: u8,
    bytes: [u8; MAX_VALUE_LEN],
}

impl Value {
    /// Validate and build a value from raw bytes.
    pub fn new(bytes: &[u8]) -> Result<Value> {
        if bytes.len() > MAX_VALUE_LEN {
            return Err(Error::ValueTooLong(bytes.len()));
        }
        let mut buf = [0u8; MAX_VALUE_LEN];
        buf[..bytes.len()].copy_from_slice(bytes);
        Ok(Value {
            len: bytes.len() as u8,
            bytes: buf,
        })
    }

    /// Build an 8-byte value from a `u64` (little-endian). The most common
    /// case in the paper's workloads.
    #[inline]
    pub fn from_u64(v: u64) -> Value {
        let mut bytes = [0u8; MAX_VALUE_LEN];
        bytes[..8].copy_from_slice(&v.to_le_bytes());
        Value { len: 8, bytes }
    }

    /// Interpret the first 8 bytes as a little-endian `u64` (zero-padded for
    /// shorter values).
    #[inline]
    pub fn as_u64(&self) -> u64 {
        let mut b = [0u8; 8];
        let n = (self.len as usize).min(8);
        b[..n].copy_from_slice(&self.bytes[..n]);
        u64::from_le_bytes(b)
    }

    /// The value bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the value holds no bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The allocator object class this value needs: 8 or 16 bytes
    /// (§III-A.5's two singly linked-lists of value-object memory chunks).
    #[inline]
    pub fn class_size(&self) -> usize {
        if self.len as usize <= 8 {
            8
        } else {
            16
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Value({:02x?})", self.as_slice())
    }
}

impl Default for Value {
    fn default() -> Self {
        Value {
            len: 0,
            bytes: [0; MAX_VALUE_LEN],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_oversized() {
        assert_eq!(Value::new(&[0u8; 17]), Err(Error::ValueTooLong(17)));
        assert!(Value::new(&[0u8; 16]).is_ok());
    }

    #[test]
    fn u64_roundtrip() {
        let v = Value::from_u64(0xdead_beef_cafe_f00d);
        assert_eq!(v.as_u64(), 0xdead_beef_cafe_f00d);
        assert_eq!(v.len(), 8);
        assert_eq!(v.class_size(), 8);
    }

    #[test]
    fn class_selection_matches_paper() {
        assert_eq!(Value::new(b"12345678").unwrap().class_size(), 8);
        assert_eq!(Value::new(b"123456789").unwrap().class_size(), 16);
        assert_eq!(Value::new(b"").unwrap().class_size(), 8);
    }

    #[test]
    fn short_value_as_u64_is_zero_padded() {
        let v = Value::new(&[0xff, 0x01]).unwrap();
        assert_eq!(v.as_u64(), 0x01ff);
    }
}
