//! Fixed-capacity inline key types.
//!
//! §III-A.5 of the paper: "Although HART supports variable-size keys, it sets
//! a limit on the maximal key length. The maximal key length supported by
//! HART is 24 bytes." Keys are stored inline (no heap) so they can live in
//! emulated persistent memory verbatim and be copied cheaply.

use crate::error::{Error, Result};
use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Maximum key length in bytes (paper §III-A.5).
pub const MAX_KEY_LEN: usize = 24;

/// A raw inline byte string of up to [`MAX_KEY_LEN`] bytes.
///
/// Unlike [`Key`] this type performs no validation; it is the building block
/// used internally by the radix trees (e.g. for compressed path prefixes,
/// which may legitimately be empty).
#[derive(Clone, Copy)]
pub struct InlineKey {
    len: u8,
    bytes: [u8; MAX_KEY_LEN],
}

impl InlineKey {
    /// The empty inline key.
    pub const EMPTY: InlineKey = InlineKey {
        len: 0,
        bytes: [0; MAX_KEY_LEN],
    };

    /// Create from a slice.
    ///
    /// # Panics
    /// Panics if `src` is longer than [`MAX_KEY_LEN`]; internal callers
    /// always pass validated data.
    #[inline]
    pub fn from_slice(src: &[u8]) -> InlineKey {
        assert!(
            src.len() <= MAX_KEY_LEN,
            "inline key too long: {}",
            src.len()
        );
        let mut bytes = [0u8; MAX_KEY_LEN];
        bytes[..src.len()].copy_from_slice(src);
        InlineKey {
            len: src.len() as u8,
            bytes,
        }
    }

    /// The key bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the key holds no bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte at position `i` of the *terminated* view: positions `0..len()`
    /// return the key bytes, position `len()` returns the implicit `0`
    /// terminator the radix trees use to disambiguate prefix keys.
    ///
    /// # Panics
    /// Panics if `i > len()`.
    #[inline]
    pub fn terminated_byte(&self, i: usize) -> u8 {
        let len = self.len as usize;
        assert!(i <= len, "index {i} past terminated key of length {len}");
        if i == len {
            0
        } else {
            self.bytes[i]
        }
    }

    /// Length of the terminated view (`len() + 1`).
    #[inline]
    pub fn terminated_len(&self) -> usize {
        self.len as usize + 1
    }
}

impl fmt::Debug for InlineKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "InlineKey({})", String::from_utf8_lossy(self.as_slice()))
    }
}

impl PartialEq for InlineKey {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for InlineKey {}

impl PartialOrd for InlineKey {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InlineKey {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for InlineKey {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Default for InlineKey {
    fn default() -> Self {
        InlineKey::EMPTY
    }
}

/// A validated index key: 1–24 bytes, no interior NUL bytes.
///
/// The NUL restriction mirrors the libart implementation the paper builds on
/// (keys are C strings): the radix trees append an implicit `0` terminator so
/// that a key that is a strict prefix of another key still terminates in a
/// leaf of its own.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(InlineKey);

impl Key {
    /// Validate and build a key from raw bytes.
    pub fn new(bytes: &[u8]) -> Result<Key> {
        if bytes.is_empty() {
            return Err(Error::EmptyKey);
        }
        if bytes.len() > MAX_KEY_LEN {
            return Err(Error::KeyTooLong(bytes.len()));
        }
        if bytes.contains(&0) {
            return Err(Error::NulInKey);
        }
        Ok(Key(InlineKey::from_slice(bytes)))
    }

    /// Build a key from a string slice. (An inherent constructor rather
    /// than `FromStr` so call sites read `Key::from_str("AABF")?` without
    /// importing the trait.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Result<Key> {
        Key::new(s.as_bytes())
    }

    /// Encode a `u64` as a fixed-width big-endian-style base-62 string key,
    /// so that numeric order matches lexicographic order. Used by the
    /// Sequential workload generator.
    pub fn from_u64_base62(mut v: u64, width: usize) -> Key {
        const ALPHABET: &[u8; 62] =
            b"0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
        assert!((1..=MAX_KEY_LEN).contains(&width), "bad width {width}");
        let mut buf = [b'0'; MAX_KEY_LEN];
        let mut i = width;
        while v > 0 && i > 0 {
            i -= 1;
            buf[i] = ALPHABET[(v % 62) as usize];
            v /= 62;
        }
        assert!(v == 0, "value does not fit in width {width}");
        Key(InlineKey::from_slice(&buf[..width]))
    }

    /// The key bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        self.0.as_slice()
    }

    /// Length in bytes (1–24).
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Always false: empty keys are rejected at construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// View as the unvalidated inline representation.
    #[inline]
    pub fn inline(&self) -> &InlineKey {
        &self.0
    }

    /// Split into the hash-key prefix (first `kh` bytes) and the ART-key
    /// suffix, as in Fig. 1 of the paper ("A key AABF is split into AA ...
    /// and BF"). When the key is shorter than `kh` the whole key becomes the
    /// hash key and the ART key is empty.
    #[inline]
    pub fn split(&self, kh: usize) -> (&[u8], &[u8]) {
        let s = self.as_slice();
        let cut = kh.min(s.len());
        (&s[..cut], &s[cut..])
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({})", String::from_utf8_lossy(self.as_slice()))
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", String::from_utf8_lossy(self.as_slice()))
    }
}

impl Borrow<[u8]> for Key {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Key {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_keys() {
        assert_eq!(Key::new(b""), Err(Error::EmptyKey));
        assert_eq!(Key::new(&[b'a'; 25]), Err(Error::KeyTooLong(25)));
        assert_eq!(Key::new(b"a\0b"), Err(Error::NulInKey));
        assert!(Key::new(&[b'a'; 24]).is_ok());
    }

    #[test]
    fn split_matches_figure_1() {
        let k = Key::from_str("AABF").unwrap();
        let (h, a) = k.split(2);
        assert_eq!(h, b"AA");
        assert_eq!(a, b"BF");
    }

    #[test]
    fn split_short_key() {
        let k = Key::from_str("A").unwrap();
        let (h, a) = k.split(2);
        assert_eq!(h, b"A");
        assert_eq!(a, b"");
    }

    #[test]
    fn terminated_view() {
        let k = InlineKey::from_slice(b"ab");
        assert_eq!(k.terminated_len(), 3);
        assert_eq!(k.terminated_byte(0), b'a');
        assert_eq!(k.terminated_byte(1), b'b');
        assert_eq!(k.terminated_byte(2), 0);
    }

    #[test]
    #[should_panic]
    fn terminated_byte_past_end_panics() {
        InlineKey::from_slice(b"ab").terminated_byte(3);
    }

    #[test]
    fn base62_keys_are_ordered() {
        let a = Key::from_u64_base62(41, 8);
        let b = Key::from_u64_base62(42, 8);
        let c = Key::from_u64_base62(62 * 62, 8);
        assert!(a < b && b < c);
        assert_eq!(a.len(), 8);
    }

    #[test]
    #[should_panic]
    fn base62_overflow_panics() {
        // 62^2 = 3844 does not fit in width 2.
        Key::from_u64_base62(3844, 2);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let ab = Key::from_str("ab").unwrap();
        let abc = Key::from_str("abc").unwrap();
        let b = Key::from_str("b").unwrap();
        assert!(ab < abc);
        assert!(abc < b);
    }

    #[test]
    fn inline_key_roundtrip() {
        let k = InlineKey::from_slice(b"hello");
        assert_eq!(k.as_slice(), b"hello");
        assert_eq!(k.len(), 5);
        assert!(!k.is_empty());
        assert!(InlineKey::EMPTY.is_empty());
    }
}
