//! Memory-footprint accounting, for the Fig. 10b experiment.

use std::fmt;
use std::ops::Add;

/// DRAM vs PM footprint of an index.
///
/// The paper's Fig. 10b compares used memory of the four trees split into
/// DRAM and PM portions (WOART and ART+CoW use no DRAM; HART uses DRAM for
/// the hash table and ART internal nodes; FPTree for its inner B+ nodes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Bytes of volatile memory used by index structures (excluding the
    /// emulated PM arena itself).
    pub dram_bytes: usize,
    /// Bytes of emulated persistent memory currently allocated to the index
    /// (chunks, nodes, values — including internal fragmentation).
    pub pm_bytes: usize,
}

impl MemoryStats {
    /// Combined footprint.
    pub fn total(&self) -> usize {
        self.dram_bytes + self.pm_bytes
    }
}

impl Add for MemoryStats {
    type Output = MemoryStats;
    fn add(self, rhs: MemoryStats) -> MemoryStats {
        MemoryStats {
            dram_bytes: self.dram_bytes + rhs.dram_bytes,
            pm_bytes: self.pm_bytes + rhs.pm_bytes,
        }
    }
}

impl fmt::Display for MemoryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DRAM {:.2} MiB / PM {:.2} MiB",
            self.dram_bytes as f64 / (1024.0 * 1024.0),
            self.pm_bytes as f64 / (1024.0 * 1024.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total() {
        let a = MemoryStats {
            dram_bytes: 10,
            pm_bytes: 20,
        };
        let b = MemoryStats {
            dram_bytes: 1,
            pm_bytes: 2,
        };
        let c = a + b;
        assert_eq!(c.dram_bytes, 11);
        assert_eq!(c.pm_bytes, 22);
        assert_eq!(c.total(), 33);
    }
}
