//! Shared key/value types, error types and the [`PersistentIndex`] trait used
//! by every index structure in the HART reproduction (HART itself plus the
//! WOART, ART+CoW and FPTree baselines).
//!
//! The paper (§III-A.5) fixes the maximum key length at 24 bytes ("which
//! could generate 2^192 distinct keys") and supports two value classes of 8
//! and 16 bytes. [`Key`] and [`Value`] encode those limits as inline,
//! `Copy`-able types so that no heap allocation happens on the hot paths.

mod error;
mod key;
mod stats;
mod value;

pub use error::{Error, Result};
pub use key::{InlineKey, Key, MAX_KEY_LEN};
pub use stats::MemoryStats;
pub use value::{Value, MAX_VALUE_LEN};

/// The common interface implemented by all four persistent indexes evaluated
/// in the paper (HART, WOART, ART+CoW, FPTree).
///
/// All methods take `&self`: implementations are internally synchronized
/// (HART with one reader-writer lock per ART as in §III-A.3; the baselines
/// with a single tree-level lock, matching the paper's single-threaded
/// evaluation of the competitors).
///
/// `insert` follows Algorithm 1 of the paper and is an *upsert*: inserting an
/// existing key updates its value in place (via the out-of-place update
/// protocol of Algorithm 3 for the PM-resident trees).
pub trait PersistentIndex: Send + Sync {
    /// Insert `key` with `value`, updating the value if the key exists.
    fn insert(&self, key: &Key, value: &Value) -> Result<()>;

    /// Look up `key`, returning its current value if present.
    fn search(&self, key: &Key) -> Result<Option<Value>>;

    /// Update the value of an existing key. Returns `false` when the key is
    /// absent (no insertion happens).
    fn update(&self, key: &Key, value: &Value) -> Result<bool>;

    /// Remove a key. Returns `false` when the key was absent.
    fn remove(&self, key: &Key) -> Result<bool>;

    /// Number of live records.
    fn len(&self) -> usize;

    /// True when the index holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// DRAM / PM footprint, for the Fig. 10b memory-consumption experiment.
    fn memory_stats(&self) -> MemoryStats;

    /// Range query in the style the paper evaluates in Fig. 10a: the
    /// ART-based trees implement it "by calling a search function for each
    /// key"; FPTree scans its sorted linked leaf list. Returns the values of
    /// all present keys in `[start, end]` (inclusive), in key order.
    fn range(&self, start: &Key, end: &Key) -> Result<Vec<(Key, Value)>>;

    /// Ordered scan: up to `limit` records with keys in `[start, end]`
    /// (inclusive), smallest first — the YCSB-E primitive ("scan `limit`
    /// records from `start`").
    ///
    /// **Contract**: the result equals the first `limit` rows of
    /// [`range`](Self::range) over the same interval; `limit == 0` returns
    /// no rows and must do no interval work.
    ///
    /// **Cost**: the default body is `range` + post-hoc truncation — it is
    /// correct for any implementation but materializes the *whole*
    /// interval first, so it costs O(interval), not O(limit). Indexes with
    /// an ordered walk must override it to stop traversal once `limit`
    /// rows are collected (every in-tree index does; `Hart::scan` pushes
    /// the quota down so shards past it are never visited). The only
    /// early stop the default itself enforces is the `limit == 0`
    /// short-circuit.
    fn scan(&self, start: &Key, end: &Key, limit: usize) -> Result<Vec<(Key, Value)>> {
        if limit == 0 {
            return Ok(Vec::new());
        }
        let mut out = self.range(start, end)?;
        out.truncate(limit);
        Ok(out)
    }

    /// Point-lookup batch — exactly how the paper implements range query
    /// for the three ART-based trees (§IV-D: "simply implemented by calling
    /// a search function for each key").
    fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        keys.iter().map(|k| self.search(k)).collect()
    }

    /// Short human-readable name used by the benchmark harness.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn _takes(_: &dyn PersistentIndex) {}
    }

    /// The default `scan` is `range` + truncation, except `limit == 0`,
    /// which must not touch the interval at all.
    #[test]
    fn default_scan_truncates_range() {
        struct Fixed(std::sync::atomic::AtomicU32);
        impl PersistentIndex for Fixed {
            fn insert(&self, _: &Key, _: &Value) -> Result<()> {
                unimplemented!()
            }
            fn search(&self, _: &Key) -> Result<Option<Value>> {
                unimplemented!()
            }
            fn update(&self, _: &Key, _: &Value) -> Result<bool> {
                unimplemented!()
            }
            fn remove(&self, _: &Key) -> Result<bool> {
                unimplemented!()
            }
            fn len(&self) -> usize {
                3
            }
            fn memory_stats(&self) -> MemoryStats {
                MemoryStats::default()
            }
            fn range(&self, _: &Key, _: &Key) -> Result<Vec<(Key, Value)>> {
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Ok(["a", "b", "c"]
                    .iter()
                    .map(|s| (Key::from_str(s).unwrap(), Value::from_u64(7)))
                    .collect())
            }
            fn name(&self) -> &'static str {
                "fixed"
            }
        }
        let ix = Fixed(std::sync::atomic::AtomicU32::new(0));
        let lo = Key::from_str("a").unwrap();
        let hi = Key::from_str("z").unwrap();
        let got = ix.scan(&lo, &hi, 2).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0.as_slice(), b"a");
        assert!(ix.scan(&lo, &hi, 10).unwrap().len() == 3);
        assert_eq!(ix.0.load(std::sync::atomic::Ordering::Relaxed), 2);
        // limit == 0 short-circuits without materializing the interval.
        assert!(ix.scan(&lo, &hi, 0).unwrap().is_empty());
        assert_eq!(ix.0.load(std::sync::atomic::Ordering::Relaxed), 2);
    }
}
