//! Error type shared by all crates of the reproduction.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the persistent indexes and their substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The key exceeds the 24-byte maximum of §III-A.5.
    KeyTooLong(usize),
    /// The key is empty; all indexes require at least one byte.
    EmptyKey,
    /// Keys may not contain interior NUL bytes: like the libart
    /// implementation the paper builds on, the radix trees use a NUL
    /// terminator to disambiguate keys that are prefixes of other keys.
    NulInKey,
    /// The value exceeds the largest supported value class (16 bytes).
    ValueTooLong(usize),
    /// The emulated persistent-memory pool ran out of space.
    PmExhausted,
    /// The persistent image failed a consistency check during recovery.
    Corrupted(&'static str),
    /// A configuration parameter was out of range.
    BadConfig(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::KeyTooLong(n) => write!(f, "key of {n} bytes exceeds the 24-byte maximum"),
            Error::EmptyKey => write!(f, "empty keys are not supported"),
            Error::NulInKey => write!(f, "keys may not contain interior NUL bytes"),
            Error::ValueTooLong(n) => write!(f, "value of {n} bytes exceeds the 16-byte maximum"),
            Error::PmExhausted => write!(f, "persistent-memory pool exhausted"),
            Error::Corrupted(what) => write!(f, "persistent image corrupted: {what}"),
            Error::BadConfig(what) => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(Error::KeyTooLong(30).to_string().contains("30"));
        assert!(Error::ValueTooLong(99).to_string().contains("99"));
        assert!(Error::Corrupted("bad magic")
            .to_string()
            .contains("bad magic"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::PmExhausted, Error::PmExhausted);
        assert_ne!(Error::EmptyKey, Error::NulInKey);
    }
}
