//! A drop-in subset of the `loom` model-checker API.
//!
//! The build environment has no crates.io mirror, so the workspace vendors
//! the slice of `loom` its concurrency models use: [`model`],
//! `loom::thread::{spawn, yield_now}`, `loom::sync::Arc`,
//! `loom::sync::atomic::*` and `loom::hint::spin_loop`.
//!
//! Real loom exhaustively enumerates interleavings under a C11 memory
//! model. This subset explores schedules *randomly* instead, in the style
//! of a PCT/Shuttle fuzzer: [`model`] runs the closure many times
//! (`LOOM_ITERS`, default 128) and every wrapped atomic operation passes
//! through a decision point ([`shake`]) that randomly yields the OS thread
//! or spins, with a deterministic per-iteration seed so a failing
//! iteration index reproduces. That trades loom's completeness for zero
//! dependencies — the models stay API-compatible, so swapping in real loom
//! under `cfg(loom)` remains a mechanical change.
//!
//! Limitations vs. real loom, stated plainly: no exhaustiveness guarantee,
//! no weak-memory simulation beyond what the host CPU provides, and no
//! deadlock detection. It still catches ordering bugs the way stress tests
//! do — by making preemption at every shared-memory access point vastly
//! more likely than a bare `cargo test` schedule ever would.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};

/// Global seed source: every participating thread derives its RNG stream
/// from this counter, so each `model` iteration (and each spawned thread
/// within it) shakes differently but deterministically.
static SEED: StdAtomicU64 = StdAtomicU64::new(0x9E37_79B9_7F4A_7C15);

thread_local! {
    static RNG: Cell<u64> = const { Cell::new(0) };
}

fn rng_next() -> u64 {
    RNG.with(|r| {
        let mut x = r.get();
        if x == 0 {
            // First use on this thread: pull a fresh stream.
            x = SEED.fetch_add(0xD1B5_4A32_D192_ED03, StdOrdering::Relaxed) | 1;
        }
        // xorshift64*
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        r.set(x);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    })
}

/// A schedule decision point: sometimes yield the OS scheduler, sometimes
/// spin, mostly run on. Called by every wrapped atomic operation.
pub fn shake() {
    match rng_next() % 8 {
        0 => std::thread::yield_now(),
        1 => {
            for _ in 0..(rng_next() % 64) {
                std::hint::spin_loop();
            }
        }
        _ => {}
    }
}

/// Number of random schedules [`model`] explores: `LOOM_ITERS` env var,
/// default 128. CI's nightly job raises it.
pub fn iters() -> usize {
    std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

/// Explore `f` under many randomized schedules (real loom: exhaustively).
///
/// Panics propagate out of the failing iteration with its index in the
/// message, so `LOOM_ITERS=1` plus the printed seed context reproduces.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    for i in 0..iters() {
        // Re-seed the main thread per iteration for determinism.
        RNG.with(|r| r.set((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        if let Err(e) = caught {
            eprintln!("loom(subset): model failed at iteration {i}");
            std::panic::resume_unwind(e);
        }
    }
}

pub mod hint {
    /// Spin-loop hint, routed through a schedule decision point.
    pub fn spin_loop() {
        super::shake();
        std::hint::spin_loop();
    }
}

pub mod thread {
    pub use std::thread::JoinHandle;

    /// Spawn a model thread whose schedule is shaken from the start.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(move || {
            super::shake();
            f()
        })
    }

    /// Yield the scheduler (a decision point in real loom too).
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

pub mod sync {
    pub use std::sync::{Arc, Mutex};

    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        /// An atomic fence preceded by a schedule decision point.
        pub fn fence(order: Ordering) {
            crate::shake();
            std::sync::atomic::fence(order);
        }

        macro_rules! shaken_atomic {
            ($name:ident, $std:ty, $val:ty) => {
                /// Std atomic wrapped so every operation is a schedule
                /// decision point.
                #[derive(Debug, Default)]
                pub struct $name($std);

                impl $name {
                    pub fn new(v: $val) -> Self {
                        Self(<$std>::new(v))
                    }

                    pub fn load(&self, order: Ordering) -> $val {
                        crate::shake();
                        self.0.load(order)
                    }

                    pub fn store(&self, v: $val, order: Ordering) {
                        crate::shake();
                        self.0.store(v, order);
                        crate::shake();
                    }

                    pub fn fetch_add(&self, v: $val, order: Ordering) -> $val {
                        crate::shake();
                        self.0.fetch_add(v, order)
                    }

                    pub fn compare_exchange(
                        &self,
                        current: $val,
                        new: $val,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$val, $val> {
                        crate::shake();
                        self.0.compare_exchange(current, new, success, failure)
                    }
                }
            };
        }

        shaken_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        shaken_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        /// Shaken `AtomicBool` (separate: no `fetch_add`).
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            pub fn new(v: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(v))
            }

            pub fn load(&self, order: Ordering) -> bool {
                crate::shake();
                self.0.load(order)
            }

            pub fn store(&self, v: bool, order: Ordering) {
                crate::shake();
                self.0.store(v, order);
                crate::shake();
            }
        }

        /// Shaken `AtomicPtr` for publish/retire models.
        #[derive(Debug)]
        pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

        impl<T> AtomicPtr<T> {
            pub fn new(p: *mut T) -> Self {
                Self(std::sync::atomic::AtomicPtr::new(p))
            }

            pub fn load(&self, order: Ordering) -> *mut T {
                crate::shake();
                self.0.load(order)
            }

            pub fn store(&self, p: *mut T, order: Ordering) {
                crate::shake();
                self.0.store(p, order);
                crate::shake();
            }

            pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
                crate::shake();
                self.0.swap(p, order)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_iterations() {
        std::env::set_var("LOOM_ITERS", "4");
        let runs = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let r2 = Arc::clone(&runs);
        super::model(move || {
            r2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        assert_eq!(runs.load(std::sync::atomic::Ordering::SeqCst), 4);
        std::env::remove_var("LOOM_ITERS");
    }

    #[test]
    fn shaken_atomics_behave_like_std() {
        let a = AtomicU64::new(1);
        a.store(5, Ordering::Release);
        assert_eq!(a.load(Ordering::Acquire), 5);
        assert_eq!(a.fetch_add(2, Ordering::AcqRel), 5);
        assert_eq!(
            a.compare_exchange(7, 9, Ordering::AcqRel, Ordering::Acquire),
            Ok(7)
        );
        assert_eq!(a.load(Ordering::Acquire), 9);
    }

    #[test]
    fn threads_join_with_results() {
        let h = super::thread::spawn(|| 40 + 2);
        assert_eq!(h.join().unwrap(), 42);
    }
}
