//! Print the current ObsSnapshot schema keys, one per line — pipe into
//! `golden/obs_schema_keys.txt` (below its comment header) to accept an
//! intentional schema change:
//!
//! ```text
//! cargo run -p hart-obs --example regen_golden
//! ```

fn main() {
    for k in hart_obs::ObsSnapshot::default().schema_keys() {
        println!("{k}");
    }
}
