//! Sharded atomic counters: one cache-line-padded cell per shard, with
//! each thread pinned to a shard by a cheap thread-local index, so hot-path
//! increments from different threads never contend on one cache line.
//!
//! The first [`SHARDS`] threads to touch *any* counter each get a shard
//! of their own; being its only writer, such a thread increments with a
//! Relaxed load + store pair (~2 ns) instead of an atomic RMW (~7 ns on
//! current x86) — the difference is most of the observability layer's
//! per-op budget (DESIGN.md §Observability). Threads past the first
//! [`SHARDS`] share one overflow cell and pay the RMW; the paper's
//! evaluation tops out at 16 threads, so the common case never does.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of exclusively-owned counter shards. A small power of two:
/// enough for the thread counts the paper evaluates (up to 16) without
/// bloating snapshots.
const SHARDS: usize = 16;

/// One shard on its own cache line.
#[repr(align(64))]
#[derive(Default)]
struct Padded(AtomicU64);

/// Shard assignment, fixed per thread on first use. The first [`SHARDS`]
/// assignments are exclusive; everything after lands on the overflow cell.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// This thread's shard index. Indexes `< SHARDS` are exclusive to one
/// thread; index `SHARDS` is the shared overflow cell.
#[inline]
fn my_shard() -> usize {
    MY_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed).min(SHARDS);
            s.set(v);
            v
        }
    })
}

/// A monotonically increasing event counter shared by many threads.
#[derive(Default)]
pub struct ShardedCounter {
    /// `SHARDS` single-writer cells plus the shared overflow cell.
    shards: [Padded; SHARDS + 1],
}

impl ShardedCounter {
    /// Zeroed counter.
    pub fn new() -> ShardedCounter {
        ShardedCounter::default()
    }

    /// Add `n` to this thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        if n == 0 {
            return;
        }
        let idx = my_shard();
        let cell = &self.shards[idx].0;
        if idx < SHARDS {
            // Single-writer cell: a load + store pair cannot lose
            // updates, and costs no locked instruction.
            cell.store(cell.load(Ordering::Relaxed) + n, Ordering::Relaxed);
        } else {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Total across all shards. Exact once writers quiesce; a consistent
    /// lower bound while they run.
    pub fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sum() {
        let c = ShardedCounter::new();
        c.add(3);
        c.add(0); // no-op, must not panic or count
        c.add(39);
        assert_eq!(c.sum(), 42);
    }

    #[test]
    fn hammer_8_threads() {
        let c = ShardedCounter::new();
        const PER_THREAD: u64 = 100_000;
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.sum(), 8 * PER_THREAD);
    }

    #[test]
    fn hammer_past_the_exclusive_shards() {
        // More threads than exclusive shards: the overflow cell absorbs
        // the rest via RMW and the total stays exact.
        let c = ShardedCounter::new();
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|s| {
            for _ in 0..(2 * SHARDS + 3) {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.sum(), (2 * SHARDS as u64 + 3) * PER_THREAD);
    }
}
