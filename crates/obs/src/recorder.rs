//! The [`Recorder`]: a cheap, cloneable handle the instrumented crates
//! thread through their hot paths.
//!
//! Design for the kill-switch (`HartConfig::observability = false`): a
//! disabled recorder holds no core, every method is an inlined `None`
//! check, and — critically — no `Instant::now()` is ever taken, so the
//! disabled path costs one predictable branch per call site.
//!
//! Design for the enabled path: exact event counts go through sharded
//! Relaxed counters (a few ns), but latency timing pays two clock reads
//! — `Instant::now()` runs 25–50 ns even through the vDSO — so ops are
//! *sampled*: each thread times 1 in [`SAMPLE_EVERY`] of its operations,
//! putting the amortized clock cost at ~2–3 ns per op. Quantiles of a
//! uniform sample converge to the population quantiles, and the ablation
//! budget (< 3% on `readpath`) holds.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::counter::ShardedCounter;
use crate::hist::AtomicHistogram;
use crate::snapshot::{ObsSnapshot, OpStats};

/// Latency sampling period: each thread times 1 in this many ops.
pub const SAMPLE_EVERY: u64 = 32;

/// Operation kinds with latency histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Op {
    Search = 0,
    Insert = 1,
    Update = 2,
    Remove = 3,
    Scan = 4,
}

pub(crate) const N_OPS: usize = 5;

/// Exact-count events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Event {
    /// Optimistic read attempts that failed seqlock validation.
    OptimisticRetry = 0,
    /// Optimistic reads that gave up and took the shard lock.
    LockFallback,
    /// Contended shard write-lock acquisitions.
    ShardLockWait,
    /// Nanoseconds spent blocked on shard write locks.
    ShardLockWaitNs,
    /// Directory doublings.
    DirGrow,
    /// Old-table buckets drained into the current table.
    DirDrain,
    /// Migrations fully finished (old table unlinked).
    DirFinish,
    /// Total nanoseconds with a directory migration in progress.
    MigrationNs,
    /// EPallocator object reservations.
    Alloc,
    /// EPallocator commits (bitmap bit durably set).
    Commit,
    /// EPallocator retires (live object freed).
    Retire,
    /// Whole chunks recycled back to the pool.
    RecycleChunk,
    /// Micro-log slot acquisitions (out-of-place update protocol).
    UlogAcquire,
    /// Directory probe fingerprint matches (candidate entries whose full
    /// hash key was then compared).
    DirFpHit,
    /// Fingerprint matches whose full-key compare failed — the 1-byte
    /// pre-filter's false positives (expected rate ≈ chain/256).
    DirFpFalsePositive,
    /// Probes that consulted a table's stash region (the home bucket's
    /// overflow bit was set).
    DirStashProbe,
    /// Entries displaced into a stash region because their home bucket was
    /// at capacity (inserts and migrations both count).
    DirStashSpill,
}

pub(crate) const N_EVENTS: usize = 17;

struct ObsCore {
    ops: [AtomicHistogram; N_OPS],
    op_counts: [ShardedCounter; N_OPS],
    events: [ShardedCounter; N_EVENTS],
    /// Rows returned per scan (count-valued samples in the ns histogram's
    /// log₂ buckets — quantiles are bucket-approximate, like latencies).
    scan_rows: AtomicHistogram,
    /// Scans that stopped at their `limit` (more rows may have existed).
    scan_truncated: AtomicU64,
    /// Epoch-relative ns at which the in-progress directory migration
    /// started; 0 when none is running.
    resize_started_at_ns: AtomicU64,
    epoch: Instant,
}

/// Per-thread sampling-phase allocator: the n-th thread to record an op
/// starts its tick at `n * 21 mod SAMPLE_EVERY` (21 is odd, so the map is
/// a bijection on residues and consecutive threads land far apart).
static PHASE_SEQ: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Seeded, not zero: with every thread starting at tick 0, each thread's
    // first latency sample was always its SAMPLE_EVERY-th operation — all
    // threads sampled the same warm-up-correlated op positions, and a
    // thread retiring before SAMPLE_EVERY ops never contributed a sample
    // at all. Staggered phases decorrelate sample positions from thread
    // start while keeping per-thread sampling exactly 1-in-SAMPLE_EVERY.
    static SAMPLE_TICK: Cell<u64> = Cell::new(
        PHASE_SEQ
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(21)
            % SAMPLE_EVERY,
    );
}

/// Cloneable recording handle; see the module docs for the cost model.
#[derive(Clone, Default)]
pub struct Recorder {
    core: Option<Arc<ObsCore>>,
}

impl Recorder {
    /// An enabled recorder with fresh, zeroed instruments.
    pub fn new() -> Recorder {
        Recorder {
            core: Some(Arc::new(ObsCore {
                ops: Default::default(),
                op_counts: Default::default(),
                events: Default::default(),
                scan_rows: AtomicHistogram::new(),
                scan_truncated: AtomicU64::new(0),
                resize_started_at_ns: AtomicU64::new(0),
                epoch: Instant::now(),
            })),
        }
    }

    /// The no-op recorder (the `observability = false` kill-switch).
    pub fn disabled() -> Recorder {
        Recorder { core: None }
    }

    /// Enabled (`new`) or disabled per `on`.
    pub fn with_enabled(on: bool) -> Recorder {
        if on {
            Recorder::new()
        } else {
            Recorder::disabled()
        }
    }

    /// Whether this recorder actually records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Start timing an operation. Returns `None` when disabled or when
    /// this op falls outside the 1-in-[`SAMPLE_EVERY`] sample.
    #[inline]
    pub fn op_timer(&self) -> Option<Instant> {
        self.core.as_ref()?;
        let sampled = SAMPLE_TICK.with(|t| {
            let v = t.get().wrapping_add(1);
            t.set(v);
            v % SAMPLE_EVERY == 0
        });
        if sampled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finish an operation: always bumps the exact op count; records the
    /// latency only when `op_timer` sampled this op.
    #[inline]
    pub fn record_op(&self, op: Op, t0: Option<Instant>) {
        if let Some(core) = &self.core {
            core.op_counts[op as usize].add(1);
            if let Some(t0) = t0 {
                core.ops[op as usize].record(t0.elapsed());
            }
        }
    }

    /// Finish a scan: bumps the exact scan count, records the sampled
    /// latency like [`Recorder::record_op`], and additionally folds in the
    /// number of rows returned and whether the scan stopped at its limit.
    #[inline]
    pub fn record_scan(&self, rows: u64, truncated: bool, t0: Option<Instant>) {
        if let Some(core) = &self.core {
            core.op_counts[Op::Scan as usize].add(1);
            if let Some(t0) = t0 {
                core.ops[Op::Scan as usize].record(t0.elapsed());
            }
            core.scan_rows.record_value(rows);
            if truncated {
                core.scan_truncated.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Unsampled clock read for rare-event timing (lock waits, resizes).
    /// `None` when disabled.
    #[inline]
    pub fn now(&self) -> Option<Instant> {
        self.core.as_ref().map(|_| Instant::now())
    }

    /// Bump an event counter.
    #[inline]
    pub fn add(&self, ev: Event, n: u64) {
        if let Some(core) = &self.core {
            core.events[ev as usize].add(n);
        }
    }

    /// Record one contended shard write-lock acquisition that started
    /// blocking at `t0` (from [`Recorder::now`]).
    #[inline]
    pub fn record_shard_wait(&self, t0: Option<Instant>) {
        if let (Some(core), Some(t0)) = (&self.core, t0) {
            core.events[Event::ShardLockWait as usize].add(1);
            core.events[Event::ShardLockWaitNs as usize]
                .add(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        }
    }

    /// A directory grow published a new table: migration is now in
    /// progress (re-arming on back-to-back grows keeps the earliest start).
    pub fn resize_started(&self) {
        if let Some(core) = &self.core {
            let now = core.epoch.elapsed().as_nanos().max(1) as u64;
            let _ = core.resize_started_at_ns.compare_exchange(
                0,
                now,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
    }

    /// A migration finished (old table unlinked): fold its duration into
    /// [`Event::MigrationNs`].
    pub fn resize_finished(&self) {
        if let Some(core) = &self.core {
            let started = core.resize_started_at_ns.swap(0, Ordering::Relaxed);
            if started != 0 {
                let now = core.epoch.elapsed().as_nanos() as u64;
                core.events[Event::MigrationNs as usize].add(now.saturating_sub(started));
            }
        }
    }

    /// Current count of one event.
    pub fn event_count(&self, ev: Event) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.events[ev as usize].sum())
    }

    /// Exact operation count for one op kind.
    pub fn op_count(&self, op: Op) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.op_counts[op as usize].sum())
    }

    /// Fill the recorder-owned sections of a snapshot (`enabled`, `ops`,
    /// `reads`, `locks`, the dir event counters). Gauges polled from live
    /// structures (directory size, EBR backlog, epalloc occupancy, pm) are
    /// the caller's job — see `Hart::obs_snapshot`.
    pub fn fill_snapshot(&self, snap: &mut ObsSnapshot) {
        let core = match &self.core {
            Some(c) => c,
            None => {
                snap.enabled = false;
                return;
            }
        };
        snap.enabled = true;
        snap.ops.sample_every = SAMPLE_EVERY;
        let op_stats = |op: Op| {
            let h = core.ops[op as usize].snapshot();
            OpStats::from_hist(core.op_counts[op as usize].sum(), &h)
        };
        snap.ops.search = op_stats(Op::Search);
        snap.ops.insert = op_stats(Op::Insert);
        snap.ops.update = op_stats(Op::Update);
        snap.ops.remove = op_stats(Op::Remove);
        snap.ops.scan = op_stats(Op::Scan);
        let rows = core.scan_rows.snapshot();
        snap.scan.rows_mean = rows.mean_ns();
        snap.scan.rows_p50 = rows.quantile_ns(0.50);
        snap.scan.rows_p99 = rows.quantile_ns(0.99);
        snap.scan.rows_max = rows.max_ns();
        snap.scan.truncated = core.scan_truncated.load(Ordering::Relaxed);
        let ev = |e: Event| core.events[e as usize].sum();
        snap.reads.optimistic_retries = ev(Event::OptimisticRetry);
        snap.reads.lock_fallbacks = ev(Event::LockFallback);
        snap.locks.shard_write_waits = ev(Event::ShardLockWait);
        snap.locks.shard_write_wait_ns = ev(Event::ShardLockWaitNs);
        snap.dir.grows = ev(Event::DirGrow);
        snap.dir.bucket_drains = ev(Event::DirDrain);
        snap.dir.migrations_finished = ev(Event::DirFinish);
        snap.dir.migration_ns_total = ev(Event::MigrationNs);
        snap.dir.fp_hits = ev(Event::DirFpHit);
        snap.dir.fp_false_positives = ev(Event::DirFpFalsePositive);
        snap.dir.stash_probes = ev(Event::DirStashProbe);
        snap.dir.stash_spills = ev(Event::DirStashSpill);
        snap.alloc.allocs = ev(Event::Alloc);
        snap.alloc.commits = ev(Event::Commit);
        snap.alloc.retires = ev(Event::Retire);
        snap.alloc.chunks_recycled = ev(Event::RecycleChunk);
        snap.alloc.ulog_acquisitions = ev(Event::UlogAcquire);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert_and_zero() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        assert!(r.op_timer().is_none());
        assert!(r.now().is_none());
        r.record_op(Op::Search, None);
        r.add(Event::DirGrow, 5);
        r.resize_started();
        r.resize_finished();
        let mut snap = ObsSnapshot::default();
        r.fill_snapshot(&mut snap);
        assert_eq!(snap, ObsSnapshot::default());
    }

    #[test]
    fn records_ops_and_events() {
        let r = Recorder::new();
        for _ in 0..100 {
            let t0 = r.op_timer();
            r.record_op(Op::Insert, t0);
        }
        r.add(Event::OptimisticRetry, 3);
        r.record_shard_wait(r.now());
        let mut snap = ObsSnapshot::default();
        r.fill_snapshot(&mut snap);
        assert!(snap.enabled);
        assert_eq!(snap.ops.insert.count, 100);
        // 1-in-SAMPLE_EVERY sampling: roughly count/SAMPLE_EVERY latency
        // samples, never zero here.
        assert!(snap.ops.insert.samples >= 100 / SAMPLE_EVERY);
        assert!(snap.ops.insert.samples < 100);
        assert_eq!(snap.reads.optimistic_retries, 3);
        assert_eq!(snap.locks.shard_write_waits, 1);
        assert_eq!(snap.ops.search.count, 0);
    }

    #[test]
    fn records_scans_with_rows_and_truncation() {
        let r = Recorder::new();
        for i in 0..64u64 {
            let t0 = r.op_timer();
            r.record_scan(i, i % 4 == 0, t0);
        }
        let mut snap = ObsSnapshot::default();
        r.fill_snapshot(&mut snap);
        assert_eq!(snap.ops.scan.count, 64);
        assert_eq!(snap.scan.truncated, 16);
        assert_eq!(snap.scan.rows_max, 63);
        assert!(snap.scan.rows_mean > 0.0);
        // Scan recording must not leak into the point-op histograms.
        assert_eq!(snap.ops.search.count, 0);
    }

    #[test]
    fn scan_row_stats_stay_in_row_units() {
        // Regression guard for the shared-histogram audit: row-count
        // samples ride the log₂-ns latency histogram, and the exported
        // stats must come back in rows — bucket-approximate for the
        // quantiles, exact for mean and max — never scaled or clamped as
        // if they were nanoseconds.
        let r = Recorder::new();
        for _ in 0..100 {
            r.record_scan(10, false, None);
        }
        let mut snap = ObsSnapshot::default();
        r.fill_snapshot(&mut snap);
        assert_eq!(snap.scan.rows_max, 10);
        assert!((snap.scan.rows_mean - 10.0).abs() < 1e-9, "mean is exact");
        // p50/p99 land inside 10's log₂ bucket [8, 16), clamped to max.
        for q in [snap.scan.rows_p50, snap.scan.rows_p99] {
            assert!((8..=10).contains(&q), "count-valued quantile {q}");
        }
        let prom = snap.to_prometheus();
        assert!(
            prom.contains("# HELP hart_scan_rows Rows returned"),
            "scan-rows metric must declare its non-time unit:\n{prom}"
        );
        assert!(
            !prom.contains("hart_scan_rows_ns"),
            "row counts must not be exported under an _ns label"
        );
    }

    #[test]
    fn resize_duration_accumulates() {
        let r = Recorder::new();
        r.resize_started();
        std::thread::sleep(std::time::Duration::from_millis(2));
        r.resize_finished();
        assert!(r.event_count(Event::MigrationNs) >= 1_000_000);
        // Finish without a start is a no-op.
        r.resize_finished();
    }

    #[test]
    fn clones_share_the_core() {
        let r = Recorder::new();
        let r2 = r.clone();
        r2.add(Event::Commit, 7);
        assert_eq!(r.event_count(Event::Commit), 7);
    }

    #[test]
    fn hammer_8_threads_counts_exact() {
        let r = Recorder::new();
        const PER_THREAD: u64 = 20_000;
        std::thread::scope(|s| {
            for _ in 0..8 {
                let r = r.clone();
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        let t0 = r.op_timer();
                        r.record_op(Op::Search, t0);
                        r.add(Event::OptimisticRetry, 1);
                    }
                });
            }
        });
        let mut snap = ObsSnapshot::default();
        r.fill_snapshot(&mut snap);
        assert_eq!(snap.ops.search.count, 8 * PER_THREAD);
        assert_eq!(snap.reads.optimistic_retries, 8 * PER_THREAD);
        // Sampling is per-thread deterministic: exactly 1 in SAMPLE_EVERY.
        // (Phase seeding does not disturb this — over any multiple of
        // SAMPLE_EVERY ops a thread samples exactly n/SAMPLE_EVERY times,
        // whatever its starting phase.)
        assert_eq!(snap.ops.search.samples, 8 * PER_THREAD / SAMPLE_EVERY);
    }

    #[test]
    fn short_lived_threads_still_contribute_samples() {
        // Regression: every thread's SAMPLE_TICK used to start at 0, so a
        // thread doing fewer than SAMPLE_EVERY ops never produced a single
        // latency sample, and longer-lived threads all sampled the same
        // warm-up-correlated positions (op 32, 64, …). With staggered
        // phases a fleet of short-lived threads samples at close to the
        // nominal 1-in-SAMPLE_EVERY rate in aggregate.
        let r = Recorder::new();
        const THREADS: u64 = 64;
        const OPS: u64 = 16; // < SAMPLE_EVERY: old behavior sampled nothing
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let r = r.clone();
                s.spawn(move || {
                    for _ in 0..OPS {
                        let t0 = r.op_timer();
                        r.record_op(Op::Update, t0);
                    }
                });
            }
        });
        let mut snap = ObsSnapshot::default();
        r.fill_snapshot(&mut snap);
        assert_eq!(snap.ops.update.count, THREADS * OPS);
        let samples = snap.ops.update.samples;
        assert!(
            samples > 0,
            "short-lived threads sampled nothing (phase bug)"
        );
        // Nominal rate is THREADS*OPS/SAMPLE_EVERY = 32; phases interleave
        // with other concurrently running tests, so accept a wide band
        // around it rather than an exact count.
        let nominal = THREADS * OPS / SAMPLE_EVERY;
        assert!(
            samples >= nominal / 4 && samples <= THREADS,
            "sample count {samples} far from nominal {nominal}"
        );
    }

    #[test]
    fn full_windows_sample_exactly_regardless_of_phase() {
        // Any thread that completes a whole number of SAMPLE_EVERY-op
        // windows contributes exactly one sample per window, independent
        // of its seeded phase.
        std::thread::scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    let r = Recorder::new(); // fresh core per thread
                    for _ in 0..3 * SAMPLE_EVERY {
                        let t0 = r.op_timer();
                        r.record_op(Op::Remove, t0);
                    }
                    let mut snap = ObsSnapshot::default();
                    r.fill_snapshot(&mut snap);
                    assert_eq!(snap.ops.remove.samples, 3);
                });
            }
        });
    }
}
