//! `hart-obs` — the workspace's always-on observability layer.
//!
//! The instruments Dash-style PM scalability debugging needs (optimistic
//! retry rates, shard-lock contention, directory migration progress, EBR
//! backlog, allocator occupancy) but the paper's codebase never had:
//!
//! * [`ShardedCounter`] — contention-free exact event counts.
//! * [`Histogram`] / [`AtomicHistogram`] — mergeable log₂ latency
//!   histograms with linearly interpolated quantiles (single-owner and
//!   lock-free shared flavors).
//! * [`Recorder`] — the cloneable hot-path handle. Disabled it is a single
//!   branch per call site (the `HartConfig::observability` kill-switch);
//!   enabled it samples op latency 1-in-[`SAMPLE_EVERY`] and counts
//!   everything else exactly.
//! * [`ObsSnapshot`] — one point-in-time export, serializable as JSON
//!   (schema pinned by `golden/obs_schema_keys.txt`) and Prometheus text.
//! * [`Instrumented`] — op-latency adapter for the baseline indexes.
//!
//! HART itself embeds a `Recorder` (see `Hart::obs_snapshot`); the CLI
//! exposes the snapshot via `stats --json` / `--metrics-dump`, and the
//! bench harness drops per-phase snapshots next to its CSVs.

mod counter;
mod hist;
mod json;
mod recorder;
mod snapshot;
mod wrap;

pub use counter::ShardedCounter;
pub use hist::{AtomicHistogram, Histogram};
pub use json::Json;
pub use recorder::{Event, Op, Recorder, SAMPLE_EVERY};
pub use snapshot::{
    AllocClassStats, AllocSection, DirSection, EbrSection, GroupSection, LocksSection, ObsSnapshot,
    OpStats, OpsSection, PmSection, ReadsSection, ScanSection, ServerSection,
};
pub use wrap::Instrumented;

/// Anything that can export an [`ObsSnapshot`] — HART with its full
/// telemetry, or an [`Instrumented`] baseline with ops only.
pub trait Observable {
    fn obs_snapshot(&self) -> ObsSnapshot;
}
