//! A deliberately tiny JSON value type with a recursive-descent parser and
//! a compact/pretty writer. The workspace builds fully offline with no
//! serde, and `ObsSnapshot` is the only schema we serialize, so ~200 lines
//! of hand-rolled JSON beat a dependency.
//!
//! Numbers are kept as their literal text: the snapshot's `u64` counters
//! must round-trip exactly (past 2^53 an `f64` representation would not),
//! and its `f64` means rely on Rust's shortest-round-trip `Display`.

use std::fmt;

/// One JSON value. Object member order is preserved (snapshot schemas are
/// key-ordered so goldens diff cleanly).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Number, stored as its literal source text.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Integer-valued number.
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// Float-valued number (shortest round-trip formatting; non-finite
    /// values clamp to 0 since JSON has no NaN/Inf).
    pub fn f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v}"))
        } else {
            Json::Num("0".to_string())
        }
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `u64` (integer literals only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// All leaf paths in dotted form (`"a.b.c"`), in schema order. Arrays
    /// contribute a single `[]` component so element count doesn't affect
    /// the schema. This is what the schema-stability golden records.
    pub fn leaf_paths(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(v: &Json, prefix: &str, out: &mut Vec<String>) {
            match v {
                Json::Obj(members) => {
                    for (k, v) in members {
                        let p = if prefix.is_empty() {
                            k.clone()
                        } else {
                            format!("{prefix}.{k}")
                        };
                        walk(v, &p, out);
                    }
                }
                Json::Arr(items) => {
                    let p = format!("{prefix}[]");
                    match items.first() {
                        Some(first) => walk(first, &p, out),
                        None => out.push(p),
                    }
                }
                _ => out.push(prefix.to_string()),
            }
        }
        walk(self, "", &mut out);
        out
    }

    /// Parse a JSON document (must consume all non-whitespace input).
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Compact serialization.
    pub fn to_compact(&self) -> String {
        let mut s = String::new();
        write_value(self, None, 0, &mut s);
        s
    }

    /// Pretty serialization (2-space indent).
    pub fn to_pretty(&self) -> String {
        let mut s = String::new();
        write_value(self, Some(2), 0, &mut s);
        s
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Json, indent: Option<usize>, depth: usize, out: &mut String) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(s) => out.push_str(s),
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Json::Obj(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, "\"")?;
    let mut s = String::new();
    loop {
        let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
        let mut chars = rest.char_indices();
        match chars.next() {
            None => return Err("unterminated string".into()),
            Some((_, '"')) => {
                *pos += 1;
                return Ok(s);
            }
            Some((_, '\\')) => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let hex = std::str::from_utf8(
                            b.get(*pos + 1..*pos + 5).ok_or("short \\u escape")?,
                        )
                        .map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        s.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some((i, c)) => {
                s.push(c);
                *pos += i + c.len_utf8();
            }
        }
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                members.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => {
            // Number literal: take the maximal run of number characters.
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            if *pos == start {
                return Err(format!("unexpected byte at {pos}"));
            }
            let lit = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            lit.parse::<f64>()
                .map_err(|e| format!("bad number `{lit}`: {e}"))?;
            Ok(Json::Num(lit.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_writes_round_trip() {
        let src =
            r#"{"a": 1, "b": [true, null, "x\n\"y"], "c": {"d": 1.5, "e": 18446744073709551615}}"#;
        let v = Json::parse(src).unwrap();
        let compact = v.to_compact();
        assert_eq!(Json::parse(&compact).unwrap(), v);
        let pretty = v.to_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        // u64::MAX survives exactly (would be lossy through f64).
        assert_eq!(
            v.get("c").unwrap().get("e").unwrap().as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn leaf_paths_are_dotted() {
        let v = Json::parse(r#"{"a": {"b": 1, "c": [ {"d": 2} ]}, "e": true}"#).unwrap();
        assert_eq!(v.leaf_paths(), vec!["a.b", "a.c[].d", "e"]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }
}
