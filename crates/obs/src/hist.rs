//! Power-of-two latency histograms for tail-latency reporting — an
//! extension beyond the paper, which reports only averages. PM indexes
//! have strongly bimodal operation costs (a search that stays in cache vs
//! one that misses; an insert that fits a chunk vs one that allocates), so
//! percentiles tell a sharper story than means.
//!
//! Two flavors share the bucket layout: [`Histogram`] is the plain
//! single-owner accumulator the bench harness threads through its loops,
//! and [`AtomicHistogram`] is the lock-free shared variant the always-on
//! [`Recorder`](crate::Recorder) records into from many threads at once.
//! Atomic histograms snapshot into plain ones, and plain ones merge, so
//! per-thread results aggregate without locks.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

pub(crate) const BUCKETS: usize = 64;

/// Bucket index for a nanosecond sample: bucket `i` covers `[2^i, 2^(i+1))`
/// ns (bucket 0 also absorbs 0 ns).
#[inline]
fn bucket_of(ns: u64) -> usize {
    (64 - ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1)
}

/// Interpolated value of the sample at 1-based position `pos` out of
/// `count` samples inside bucket `i`, assuming samples spread uniformly
/// across the bucket's `[lo, hi)` range.
fn interpolate(i: usize, pos: u64, count: u64) -> f64 {
    let lo = if i == 0 { 0u64 } else { 1u64 << i };
    let hi = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
    lo as f64 + (hi - lo) as f64 * pos as f64 / count as f64
}

/// A fixed-size log₂ histogram of nanosecond latencies.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` ns; recording is branch-light and
/// allocation-free, so per-op instrumentation stays cheap.
#[derive(Clone)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, d: Duration) {
        let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Approximate `p`-quantile (0 < p ≤ 1) in nanoseconds.
    ///
    /// The quantile's rank is located in its log₂ bucket and then linearly
    /// interpolated within the bucket (samples are assumed uniform across
    /// the bucket's range), clamped to the observed maximum. The previous
    /// upper-bucket-edge answer overstated every quantile by up to 2×.
    pub fn quantile_ns(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 && seen + c >= rank {
                let pos = rank - seen; // 1-based position within bucket i
                return (interpolate(i, pos, c) as u64).min(self.max_ns);
            }
            seen += c;
        }
        self.max_ns
    }

    /// Largest observed sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// One summary line: mean / p50 / p90 / p99 / p99.9 / max in µs.
    pub fn summary(&self) -> String {
        format!(
            "mean {:>8.2}µs  p50 {:>8.2}µs  p90 {:>8.2}µs  p99 {:>8.2}µs  p99.9 {:>8.2}µs  max {:>8.2}µs",
            self.mean_ns() / 1e3,
            self.quantile_ns(0.50) as f64 / 1e3,
            self.quantile_ns(0.90) as f64 / 1e3,
            self.quantile_ns(0.99) as f64 / 1e3,
            self.quantile_ns(0.999) as f64 / 1e3,
            self.max_ns as f64 / 1e3,
        )
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Histogram({} samples, {})", self.total, self.summary())
    }
}

/// Lock-free shared histogram with the same bucket layout as [`Histogram`].
///
/// All updates are Relaxed atomics on independent cells: concurrent
/// recorders never wait, and a snapshot is a plain (not atomic) read of
/// each cell — exact once recorders quiesce, approximate but well-formed
/// while they run.
pub struct AtomicHistogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Empty histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram::default()
    }

    /// Record one sample of `ns` nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.counts[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record one *unitless* count-valued sample (e.g. rows per scan).
    ///
    /// The log₂ bucket layout and within-bucket interpolation are
    /// unit-agnostic — a bucket is `[2^i, 2^(i+1))` of whatever the caller
    /// measures — so the mechanics are shared with the ns path. Callers
    /// recording counts must NOT report the results through ns-labeled
    /// fields or metrics: `mean`/`quantile`/`max` come back in the sample's
    /// own unit (see `ScanSection::rows_*` / `hart_scan_rows`). This alias
    /// exists so count-valued call sites don't read as latency recordings.
    #[inline]
    pub fn record_value(&self, v: u64) {
        self.record_ns(v);
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Copy the current contents into a plain [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (dst, src) in h.counts.iter_mut().zip(&self.counts) {
            *dst = src.load(Ordering::Relaxed);
        }
        h.total = self.total.load(Ordering::Relaxed);
        h.sum_ns = self.sum_ns.load(Ordering::Relaxed) as u128;
        h.max_ns = self.max_ns.load(Ordering::Relaxed);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_quantiles() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(Duration::from_nanos(1_000)); // bucket 9: [512, 1024)
        }
        for _ in 0..10 {
            h.record(Duration::from_nanos(1_000_000)); // bucket 19: [524288, 1048576)
        }
        assert_eq!(h.count(), 100);
        assert!(h.mean_ns() > 1_000.0 && h.mean_ns() < 200_000.0);
        // p50 = rank 50 of 90 samples in [512, 1024): 512 + 512*50/90 ≈ 796,
        // not the old upper-edge answer of 1024.
        let p50 = h.quantile_ns(0.50);
        assert!((790..=800).contains(&p50), "interpolated p50, got {p50}");
        // p90 = rank 90 = last sample of the fast bucket: exactly its upper edge.
        assert_eq!(h.quantile_ns(0.90), 1024);
        // p99 = rank 9 of 10 samples in [524288, 1048576): ≈ 996147.
        let p99 = h.quantile_ns(0.99);
        assert!(
            (990_000..=1_000_000).contains(&p99),
            "interpolated p99, got {p99}"
        );
        // The top quantile clamps to the observed max, never past it.
        assert_eq!(h.quantile_ns(1.0), 1_000_000);
        assert_eq!(h.max_ns(), 1_000_000);
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let mut h = Histogram::new();
        h.record(Duration::from_nanos(700));
        for p in [0.01, 0.5, 0.99, 1.0] {
            assert!(h.quantile_ns(p) <= 700);
        }
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Duration::from_nanos(100));
        b.record(Duration::from_nanos(200_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ns(), 200_000);
    }

    #[test]
    fn empty_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert!(h.summary().contains("p99"));
    }

    #[test]
    fn zero_duration_goes_to_first_bucket() {
        let mut h = Histogram::new();
        h.record(Duration::from_nanos(0));
        assert_eq!(h.count(), 1);
        let _ = h.quantile_ns(1.0);
    }

    #[test]
    fn atomic_matches_plain() {
        let a = AtomicHistogram::new();
        let mut p = Histogram::new();
        for ns in [0u64, 1, 7, 512, 1_000, 65_536, 1_000_000] {
            a.record_ns(ns);
            p.record(Duration::from_nanos(ns));
        }
        let s = a.snapshot();
        assert_eq!(s.count(), p.count());
        assert_eq!(s.max_ns(), p.max_ns());
        assert_eq!(s.counts, p.counts);
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(s.quantile_ns(q), p.quantile_ns(q));
        }
    }

    #[test]
    fn atomic_hammer_8_threads() {
        let h = AtomicHistogram::new();
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Deterministic spread over several buckets per thread.
                        h.record_ns((i % 20) * 100 + t);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), 8 * PER_THREAD);
        let bucket_sum: u64 = snap.counts.iter().sum();
        assert_eq!(bucket_sum, 8 * PER_THREAD);
        assert_eq!(snap.max_ns(), 1_900 + 7);
    }
}
