//! `ObsSnapshot`: one point-in-time export of everything the observability
//! layer knows, serializable as JSON (machine-readable, schema-stable) and
//! as Prometheus text exposition (scrape-ready).
//!
//! The schema is flat and fixed — no arrays whose length depends on
//! runtime state — so the committed golden in `golden/obs_schema_keys.txt`
//! pins the exact set of JSON leaf paths and CI fails on any silent drift.

use crate::hist::Histogram;
use crate::json::Json;

/// Latency summary for one operation kind.
///
/// `count` is the exact number of operations; `samples` is how many of
/// them were latency-timed (the recorder samples 1 in
/// [`SAMPLE_EVERY`](crate::SAMPLE_EVERY) to keep hot-path overhead low),
/// so the quantiles describe the sampled subset.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpStats {
    pub count: u64,
    pub samples: u64,
    pub mean_ns: f64,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub max_ns: u64,
}

impl OpStats {
    /// Summarize a histogram of sampled latencies for `count` total ops.
    pub fn from_hist(count: u64, h: &Histogram) -> OpStats {
        OpStats {
            count,
            samples: h.count(),
            mean_ns: h.mean_ns(),
            p50_ns: h.quantile_ns(0.50),
            p90_ns: h.quantile_ns(0.90),
            p99_ns: h.quantile_ns(0.99),
            p999_ns: h.quantile_ns(0.999),
            max_ns: h.max_ns(),
        }
    }
}

/// Per-operation latency section.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpsSection {
    /// Latency sampling period: 1 of every `sample_every` ops is timed.
    pub sample_every: u64,
    pub search: OpStats,
    pub insert: OpStats,
    pub update: OpStats,
    pub remove: OpStats,
    pub scan: OpStats,
}

/// Ordered-scan shape: how much each scan returned and how often the
/// `limit` cut it short. Scan *latency* lives in [`OpsSection::scan`].
///
/// Every `rows_*` field is a **row count, not a time** — the samples go
/// through the same log₂-bucket histogram as latencies (the bucketing is
/// unit-agnostic), so the quantiles are bucket-approximate, but nothing
/// here is in nanoseconds and none of these values may be exported under
/// an `_ns`/seconds label. `rows_mean` and `rows_max` are exact.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ScanSection {
    pub rows_mean: f64,
    pub rows_p50: u64,
    pub rows_p99: u64,
    pub rows_max: u64,
    /// Scans that stopped at their row limit (more rows may have existed).
    pub truncated: u64,
}

/// Optimistic-read path health (PR 1's seqlock read protocol).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReadsSection {
    /// Optimistic attempts that failed validation and looped.
    pub optimistic_retries: u64,
    /// Reads that exhausted the retry budget and fell back to the lock.
    pub lock_fallbacks: u64,
}

/// Shard write-lock contention. Only contended acquisitions are timed
/// (an uncontended `try_write` costs nothing), so `waits` counts actual
/// blocking events.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LocksSection {
    pub shard_write_waits: u64,
    pub shard_write_wait_ns: u64,
}

/// DRAM hash-directory resizing (PR 2's incremental migration).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DirSection {
    pub grows: u64,
    pub bucket_drains: u64,
    pub migrations_finished: u64,
    /// Total wall time spent with a migration in progress, grow → finish.
    pub migration_ns_total: u64,
    pub migration_in_progress: bool,
    pub buckets: u64,
    pub shards: u64,
    /// Probe fingerprint matches (each followed by a full key compare).
    pub fp_hits: u64,
    /// Fingerprint matches whose key compare failed (pre-filter false
    /// positives).
    pub fp_false_positives: u64,
    /// Probes that consulted a stash region (overflow bit set).
    pub stash_probes: u64,
    /// Entries displaced into a stash region (home bucket at capacity).
    pub stash_spills: u64,
}

/// Epoch-based reclamation backlog.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EbrSection {
    pub pending_garbage: u64,
}

/// One epalloc object class's occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AllocClassStats {
    pub live: u64,
    pub chunks: u64,
    pub slots_per_chunk: u64,
    /// live / (chunks × slots_per_chunk), 0 when no chunks are linked.
    pub occupancy: f64,
}

/// EPallocator activity and occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AllocSection {
    pub allocs: u64,
    pub commits: u64,
    pub retires: u64,
    pub chunks_recycled: u64,
    pub ulog_acquisitions: u64,
    pub leaf: AllocClassStats,
    pub value8: AllocClassStats,
    pub value16: AllocClassStats,
}

/// PM device-model counters, folded in from `PmStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PmSection {
    pub persist_calls: u64,
    pub lines_flushed: u64,
    pub fences: u64,
    pub read_lines: u64,
    pub read_misses: u64,
    pub raw_allocs: u64,
    pub raw_frees: u64,
    pub bytes_in_use: u64,
    pub bytes_peak: u64,
    pub write_extra_ns: u64,
    pub read_extra_ns: u64,
    pub alloc_extra_ns: u64,
}

/// Network front-end (hart-server) connection and admission counters.
/// Zero when no server is hosting the tree.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServerSection {
    /// Connections accepted over the server's lifetime.
    pub connections_total: u64,
    /// Currently open connections.
    pub connections_active: u64,
    /// Requests handled (any opcode, any status).
    pub requests_total: u64,
    /// Requests refused with BUSY by admission control.
    pub busy_rejections: u64,
    /// High-water mark of concurrently in-flight ops.
    pub inflight_peak: u64,
    /// Frames rejected as malformed/oversized/unknown-opcode.
    pub proto_errors: u64,
}

/// Group-commit persistence: fence amortization and batch occupancy.
/// `persists_deferred`/`flushes` fold in from `PmStats`; occupancy comes
/// from the hosting server's `GroupCommitter` (zero without one).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GroupSection {
    /// True when the hosting config opted in (`HartConfig::group_commit`).
    pub enabled: bool,
    /// Batch flushes (each = one real fence for a whole batch).
    pub flushes: u64,
    /// Ops whose batches were promoted durably.
    pub ops_committed: u64,
    /// Ops refused durability (simulated crash mid-batch).
    pub ops_failed: u64,
    /// `persist()` calls recorded-not-fenced under deferral.
    pub persists_deferred: u64,
    /// Mean ops per flush.
    pub occupancy_mean: f64,
    /// Largest single flushed batch, in ops.
    pub occupancy_max: u64,
}

/// Point-in-time export of the whole observability layer.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ObsSnapshot {
    /// False when the `HartConfig::observability` kill-switch is off; every
    /// other field is then zero.
    pub enabled: bool,
    pub ops: OpsSection,
    pub scan: ScanSection,
    pub reads: ReadsSection,
    pub locks: LocksSection,
    pub dir: DirSection,
    pub ebr: EbrSection,
    pub alloc: AllocSection,
    pub pm: PmSection,
    pub server: ServerSection,
    pub group: GroupSection,
}

fn op_json(o: &OpStats) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::u64(o.count)),
        ("samples".into(), Json::u64(o.samples)),
        ("mean_ns".into(), Json::f64(o.mean_ns)),
        ("p50_ns".into(), Json::u64(o.p50_ns)),
        ("p90_ns".into(), Json::u64(o.p90_ns)),
        ("p99_ns".into(), Json::u64(o.p99_ns)),
        ("p999_ns".into(), Json::u64(o.p999_ns)),
        ("max_ns".into(), Json::u64(o.max_ns)),
    ])
}

fn class_json(c: &AllocClassStats) -> Json {
    Json::Obj(vec![
        ("live".into(), Json::u64(c.live)),
        ("chunks".into(), Json::u64(c.chunks)),
        ("slots_per_chunk".into(), Json::u64(c.slots_per_chunk)),
        ("occupancy".into(), Json::f64(c.occupancy)),
    ])
}

impl ObsSnapshot {
    /// Build the JSON tree (fixed member order — the schema).
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("enabled".into(), Json::Bool(self.enabled)),
            (
                "ops".into(),
                Json::Obj(vec![
                    ("sample_every".into(), Json::u64(self.ops.sample_every)),
                    ("search".into(), op_json(&self.ops.search)),
                    ("insert".into(), op_json(&self.ops.insert)),
                    ("update".into(), op_json(&self.ops.update)),
                    ("remove".into(), op_json(&self.ops.remove)),
                    ("scan".into(), op_json(&self.ops.scan)),
                ]),
            ),
            (
                "scan".into(),
                Json::Obj(vec![
                    ("rows_mean".into(), Json::f64(self.scan.rows_mean)),
                    ("rows_p50".into(), Json::u64(self.scan.rows_p50)),
                    ("rows_p99".into(), Json::u64(self.scan.rows_p99)),
                    ("rows_max".into(), Json::u64(self.scan.rows_max)),
                    ("truncated".into(), Json::u64(self.scan.truncated)),
                ]),
            ),
            (
                "reads".into(),
                Json::Obj(vec![
                    (
                        "optimistic_retries".into(),
                        Json::u64(self.reads.optimistic_retries),
                    ),
                    (
                        "lock_fallbacks".into(),
                        Json::u64(self.reads.lock_fallbacks),
                    ),
                ]),
            ),
            (
                "locks".into(),
                Json::Obj(vec![
                    (
                        "shard_write_waits".into(),
                        Json::u64(self.locks.shard_write_waits),
                    ),
                    (
                        "shard_write_wait_ns".into(),
                        Json::u64(self.locks.shard_write_wait_ns),
                    ),
                ]),
            ),
            (
                "dir".into(),
                Json::Obj(vec![
                    ("grows".into(), Json::u64(self.dir.grows)),
                    ("bucket_drains".into(), Json::u64(self.dir.bucket_drains)),
                    (
                        "migrations_finished".into(),
                        Json::u64(self.dir.migrations_finished),
                    ),
                    (
                        "migration_ns_total".into(),
                        Json::u64(self.dir.migration_ns_total),
                    ),
                    (
                        "migration_in_progress".into(),
                        Json::Bool(self.dir.migration_in_progress),
                    ),
                    ("buckets".into(), Json::u64(self.dir.buckets)),
                    ("shards".into(), Json::u64(self.dir.shards)),
                    ("fp_hits".into(), Json::u64(self.dir.fp_hits)),
                    (
                        "fp_false_positives".into(),
                        Json::u64(self.dir.fp_false_positives),
                    ),
                    ("stash_probes".into(), Json::u64(self.dir.stash_probes)),
                    ("stash_spills".into(), Json::u64(self.dir.stash_spills)),
                ]),
            ),
            (
                "ebr".into(),
                Json::Obj(vec![(
                    "pending_garbage".into(),
                    Json::u64(self.ebr.pending_garbage),
                )]),
            ),
            (
                "alloc".into(),
                Json::Obj(vec![
                    ("allocs".into(), Json::u64(self.alloc.allocs)),
                    ("commits".into(), Json::u64(self.alloc.commits)),
                    ("retires".into(), Json::u64(self.alloc.retires)),
                    (
                        "chunks_recycled".into(),
                        Json::u64(self.alloc.chunks_recycled),
                    ),
                    (
                        "ulog_acquisitions".into(),
                        Json::u64(self.alloc.ulog_acquisitions),
                    ),
                    ("leaf".into(), class_json(&self.alloc.leaf)),
                    ("value8".into(), class_json(&self.alloc.value8)),
                    ("value16".into(), class_json(&self.alloc.value16)),
                ]),
            ),
            (
                "pm".into(),
                Json::Obj(vec![
                    ("persist_calls".into(), Json::u64(self.pm.persist_calls)),
                    ("lines_flushed".into(), Json::u64(self.pm.lines_flushed)),
                    ("fences".into(), Json::u64(self.pm.fences)),
                    ("read_lines".into(), Json::u64(self.pm.read_lines)),
                    ("read_misses".into(), Json::u64(self.pm.read_misses)),
                    ("raw_allocs".into(), Json::u64(self.pm.raw_allocs)),
                    ("raw_frees".into(), Json::u64(self.pm.raw_frees)),
                    ("bytes_in_use".into(), Json::u64(self.pm.bytes_in_use)),
                    ("bytes_peak".into(), Json::u64(self.pm.bytes_peak)),
                    ("write_extra_ns".into(), Json::u64(self.pm.write_extra_ns)),
                    ("read_extra_ns".into(), Json::u64(self.pm.read_extra_ns)),
                    ("alloc_extra_ns".into(), Json::u64(self.pm.alloc_extra_ns)),
                ]),
            ),
            (
                "server".into(),
                Json::Obj(vec![
                    (
                        "connections_total".into(),
                        Json::u64(self.server.connections_total),
                    ),
                    (
                        "connections_active".into(),
                        Json::u64(self.server.connections_active),
                    ),
                    (
                        "requests_total".into(),
                        Json::u64(self.server.requests_total),
                    ),
                    (
                        "busy_rejections".into(),
                        Json::u64(self.server.busy_rejections),
                    ),
                    ("inflight_peak".into(), Json::u64(self.server.inflight_peak)),
                    ("proto_errors".into(), Json::u64(self.server.proto_errors)),
                ]),
            ),
            (
                "group".into(),
                Json::Obj(vec![
                    ("enabled".into(), Json::Bool(self.group.enabled)),
                    ("flushes".into(), Json::u64(self.group.flushes)),
                    ("ops_committed".into(), Json::u64(self.group.ops_committed)),
                    ("ops_failed".into(), Json::u64(self.group.ops_failed)),
                    (
                        "persists_deferred".into(),
                        Json::u64(self.group.persists_deferred),
                    ),
                    (
                        "occupancy_mean".into(),
                        Json::f64(self.group.occupancy_mean),
                    ),
                    ("occupancy_max".into(), Json::u64(self.group.occupancy_max)),
                ]),
            ),
        ])
    }

    /// Compact JSON document.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_compact()
    }

    /// Pretty JSON document (CLI-friendly).
    pub fn to_json_pretty(&self) -> String {
        self.to_json_value().to_pretty()
    }

    /// Parse a snapshot back out of its JSON form. Every schema field must
    /// be present — this is the round-trip/schema test's teeth.
    pub fn from_json(src: &str) -> Result<ObsSnapshot, String> {
        let v = Json::parse(src)?;
        let need = |obj: &Json, key: &str| -> Result<Json, String> {
            obj.get(key)
                .cloned()
                .ok_or_else(|| format!("missing key `{key}`"))
        };
        let u = |obj: &Json, key: &str| -> Result<u64, String> {
            need(obj, key)?
                .as_u64()
                .ok_or_else(|| format!("`{key}` is not a u64"))
        };
        let f = |obj: &Json, key: &str| -> Result<f64, String> {
            need(obj, key)?
                .as_f64()
                .ok_or_else(|| format!("`{key}` is not a number"))
        };
        let b = |obj: &Json, key: &str| -> Result<bool, String> {
            need(obj, key)?
                .as_bool()
                .ok_or_else(|| format!("`{key}` is not a bool"))
        };
        let op = |obj: &Json, key: &str| -> Result<OpStats, String> {
            let o = need(obj, key)?;
            Ok(OpStats {
                count: u(&o, "count")?,
                samples: u(&o, "samples")?,
                mean_ns: f(&o, "mean_ns")?,
                p50_ns: u(&o, "p50_ns")?,
                p90_ns: u(&o, "p90_ns")?,
                p99_ns: u(&o, "p99_ns")?,
                p999_ns: u(&o, "p999_ns")?,
                max_ns: u(&o, "max_ns")?,
            })
        };
        let class = |obj: &Json, key: &str| -> Result<AllocClassStats, String> {
            let o = need(obj, key)?;
            Ok(AllocClassStats {
                live: u(&o, "live")?,
                chunks: u(&o, "chunks")?,
                slots_per_chunk: u(&o, "slots_per_chunk")?,
                occupancy: f(&o, "occupancy")?,
            })
        };
        let ops = need(&v, "ops")?;
        let scan = need(&v, "scan")?;
        let reads = need(&v, "reads")?;
        let locks = need(&v, "locks")?;
        let dir = need(&v, "dir")?;
        let ebr = need(&v, "ebr")?;
        let alloc = need(&v, "alloc")?;
        let pm = need(&v, "pm")?;
        let server = need(&v, "server")?;
        let group = need(&v, "group")?;
        Ok(ObsSnapshot {
            enabled: b(&v, "enabled")?,
            ops: OpsSection {
                sample_every: u(&ops, "sample_every")?,
                search: op(&ops, "search")?,
                insert: op(&ops, "insert")?,
                update: op(&ops, "update")?,
                remove: op(&ops, "remove")?,
                scan: op(&ops, "scan")?,
            },
            scan: ScanSection {
                rows_mean: f(&scan, "rows_mean")?,
                rows_p50: u(&scan, "rows_p50")?,
                rows_p99: u(&scan, "rows_p99")?,
                rows_max: u(&scan, "rows_max")?,
                truncated: u(&scan, "truncated")?,
            },
            reads: ReadsSection {
                optimistic_retries: u(&reads, "optimistic_retries")?,
                lock_fallbacks: u(&reads, "lock_fallbacks")?,
            },
            locks: LocksSection {
                shard_write_waits: u(&locks, "shard_write_waits")?,
                shard_write_wait_ns: u(&locks, "shard_write_wait_ns")?,
            },
            dir: DirSection {
                grows: u(&dir, "grows")?,
                bucket_drains: u(&dir, "bucket_drains")?,
                migrations_finished: u(&dir, "migrations_finished")?,
                migration_ns_total: u(&dir, "migration_ns_total")?,
                migration_in_progress: b(&dir, "migration_in_progress")?,
                buckets: u(&dir, "buckets")?,
                shards: u(&dir, "shards")?,
                fp_hits: u(&dir, "fp_hits")?,
                fp_false_positives: u(&dir, "fp_false_positives")?,
                stash_probes: u(&dir, "stash_probes")?,
                stash_spills: u(&dir, "stash_spills")?,
            },
            ebr: EbrSection {
                pending_garbage: u(&ebr, "pending_garbage")?,
            },
            alloc: AllocSection {
                allocs: u(&alloc, "allocs")?,
                commits: u(&alloc, "commits")?,
                retires: u(&alloc, "retires")?,
                chunks_recycled: u(&alloc, "chunks_recycled")?,
                ulog_acquisitions: u(&alloc, "ulog_acquisitions")?,
                leaf: class(&alloc, "leaf")?,
                value8: class(&alloc, "value8")?,
                value16: class(&alloc, "value16")?,
            },
            pm: PmSection {
                persist_calls: u(&pm, "persist_calls")?,
                lines_flushed: u(&pm, "lines_flushed")?,
                fences: u(&pm, "fences")?,
                read_lines: u(&pm, "read_lines")?,
                read_misses: u(&pm, "read_misses")?,
                raw_allocs: u(&pm, "raw_allocs")?,
                raw_frees: u(&pm, "raw_frees")?,
                bytes_in_use: u(&pm, "bytes_in_use")?,
                bytes_peak: u(&pm, "bytes_peak")?,
                write_extra_ns: u(&pm, "write_extra_ns")?,
                read_extra_ns: u(&pm, "read_extra_ns")?,
                alloc_extra_ns: u(&pm, "alloc_extra_ns")?,
            },
            server: ServerSection {
                connections_total: u(&server, "connections_total")?,
                connections_active: u(&server, "connections_active")?,
                requests_total: u(&server, "requests_total")?,
                busy_rejections: u(&server, "busy_rejections")?,
                inflight_peak: u(&server, "inflight_peak")?,
                proto_errors: u(&server, "proto_errors")?,
            },
            group: GroupSection {
                enabled: b(&group, "enabled")?,
                flushes: u(&group, "flushes")?,
                ops_committed: u(&group, "ops_committed")?,
                ops_failed: u(&group, "ops_failed")?,
                persists_deferred: u(&group, "persists_deferred")?,
                occupancy_mean: f(&group, "occupancy_mean")?,
                occupancy_max: u(&group, "occupancy_max")?,
            },
        })
    }

    /// Sorted JSON leaf paths — the schema-stability fingerprint diffed
    /// against `golden/obs_schema_keys.txt` in CI.
    pub fn schema_keys(&self) -> Vec<String> {
        let mut keys = self.to_json_value().leaf_paths();
        keys.sort();
        keys
    }

    /// Prometheus text exposition (one scrape page).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let w = &mut s;
        writeln!(w, "# TYPE hart_obs_enabled gauge").unwrap();
        writeln!(w, "hart_obs_enabled {}", self.enabled as u64).unwrap();
        writeln!(w, "# TYPE hart_ops_total counter").unwrap();
        writeln!(
            w,
            "# HELP hart_op_latency_ns Sampled operation latency in nanoseconds (log2-bucket approximate quantiles)."
        )
        .unwrap();
        writeln!(w, "# TYPE hart_op_latency_ns gauge").unwrap();
        for (name, o) in [
            ("search", &self.ops.search),
            ("insert", &self.ops.insert),
            ("update", &self.ops.update),
            ("remove", &self.ops.remove),
            ("scan", &self.ops.scan),
        ] {
            writeln!(w, "hart_ops_total{{op=\"{name}\"}} {}", o.count).unwrap();
            for (stat, val) in [
                ("mean", o.mean_ns),
                ("p50", o.p50_ns as f64),
                ("p90", o.p90_ns as f64),
                ("p99", o.p99_ns as f64),
                ("p999", o.p999_ns as f64),
                ("max", o.max_ns as f64),
            ] {
                writeln!(
                    w,
                    "hart_op_latency_ns{{op=\"{name}\",stat=\"{stat}\"}} {val}"
                )
                .unwrap();
            }
        }
        writeln!(
            w,
            "# HELP hart_scan_rows Rows returned per ordered scan — a count, NOT a latency; quantiles share the log2 bucket scheme but carry no time unit."
        )
        .unwrap();
        writeln!(w, "# TYPE hart_scan_rows gauge").unwrap();
        for (stat, val) in [
            ("mean", self.scan.rows_mean),
            ("p50", self.scan.rows_p50 as f64),
            ("p99", self.scan.rows_p99 as f64),
            ("max", self.scan.rows_max as f64),
        ] {
            writeln!(w, "hart_scan_rows{{stat=\"{stat}\"}} {val}").unwrap();
        }
        writeln!(w, "# TYPE hart_scan_truncated_total counter").unwrap();
        writeln!(w, "hart_scan_truncated_total {}", self.scan.truncated).unwrap();
        for (name, v) in [
            (
                "hart_read_optimistic_retries_total",
                self.reads.optimistic_retries,
            ),
            ("hart_read_lock_fallbacks_total", self.reads.lock_fallbacks),
            (
                "hart_shard_write_lock_waits_total",
                self.locks.shard_write_waits,
            ),
            (
                "hart_shard_write_lock_wait_ns_total",
                self.locks.shard_write_wait_ns,
            ),
            ("hart_dir_grows_total", self.dir.grows),
            ("hart_dir_bucket_drains_total", self.dir.bucket_drains),
            (
                "hart_dir_migrations_finished_total",
                self.dir.migrations_finished,
            ),
            ("hart_dir_migration_ns_total", self.dir.migration_ns_total),
            ("hart_dir_fp_hits_total", self.dir.fp_hits),
            (
                "hart_dir_fp_false_positives_total",
                self.dir.fp_false_positives,
            ),
            ("hart_dir_stash_probes_total", self.dir.stash_probes),
            ("hart_dir_stash_spills_total", self.dir.stash_spills),
            ("hart_alloc_allocs_total", self.alloc.allocs),
            ("hart_alloc_commits_total", self.alloc.commits),
            ("hart_alloc_retires_total", self.alloc.retires),
            (
                "hart_alloc_chunks_recycled_total",
                self.alloc.chunks_recycled,
            ),
            (
                "hart_alloc_ulog_acquisitions_total",
                self.alloc.ulog_acquisitions,
            ),
            ("hart_pm_persist_calls_total", self.pm.persist_calls),
            ("hart_pm_lines_flushed_total", self.pm.lines_flushed),
            ("hart_pm_fences_total", self.pm.fences),
            ("hart_pm_read_lines_total", self.pm.read_lines),
            ("hart_pm_read_misses_total", self.pm.read_misses),
            ("hart_pm_raw_allocs_total", self.pm.raw_allocs),
            ("hart_pm_raw_frees_total", self.pm.raw_frees),
            (
                "hart_server_connections_total",
                self.server.connections_total,
            ),
            ("hart_server_requests_total", self.server.requests_total),
            (
                "hart_server_busy_rejections_total",
                self.server.busy_rejections,
            ),
            ("hart_server_proto_errors_total", self.server.proto_errors),
            ("hart_group_flushes_total", self.group.flushes),
            ("hart_group_ops_committed_total", self.group.ops_committed),
            ("hart_group_ops_failed_total", self.group.ops_failed),
            (
                "hart_group_persists_deferred_total",
                self.group.persists_deferred,
            ),
        ] {
            writeln!(w, "# TYPE {name} counter").unwrap();
            writeln!(w, "{name} {v}").unwrap();
        }
        for (name, v) in [
            (
                "hart_dir_migration_in_progress",
                self.dir.migration_in_progress as u64,
            ),
            ("hart_dir_buckets", self.dir.buckets),
            ("hart_dir_shards", self.dir.shards),
            ("hart_ebr_pending_garbage", self.ebr.pending_garbage),
            ("hart_pm_bytes_in_use", self.pm.bytes_in_use),
            ("hart_pm_bytes_peak", self.pm.bytes_peak),
            (
                "hart_server_connections_active",
                self.server.connections_active,
            ),
            ("hart_server_inflight_peak", self.server.inflight_peak),
            ("hart_group_enabled", self.group.enabled as u64),
            ("hart_group_occupancy_max", self.group.occupancy_max),
        ] {
            writeln!(w, "# TYPE {name} gauge").unwrap();
            writeln!(w, "{name} {v}").unwrap();
        }
        writeln!(w, "# TYPE hart_alloc_live gauge").unwrap();
        writeln!(w, "# TYPE hart_alloc_chunks gauge").unwrap();
        writeln!(w, "# TYPE hart_alloc_occupancy gauge").unwrap();
        for (class, c) in [
            ("leaf", &self.alloc.leaf),
            ("value8", &self.alloc.value8),
            ("value16", &self.alloc.value16),
        ] {
            writeln!(w, "hart_alloc_live{{class=\"{class}\"}} {}", c.live).unwrap();
            writeln!(w, "hart_alloc_chunks{{class=\"{class}\"}} {}", c.chunks).unwrap();
            writeln!(
                w,
                "hart_alloc_occupancy{{class=\"{class}\"}} {}",
                c.occupancy
            )
            .unwrap();
        }
        writeln!(w, "# TYPE hart_group_occupancy_mean gauge").unwrap();
        writeln!(w, "hart_group_occupancy_mean {}", self.group.occupancy_mean).unwrap();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A snapshot with every field distinct and nonzero, so a dropped or
    /// transposed field cannot round-trip cleanly.
    pub(crate) fn dense_snapshot() -> ObsSnapshot {
        let mut n = 0u64;
        let mut next = || {
            n += 1;
            n
        };
        let mut op = || OpStats {
            count: next(),
            samples: next(),
            mean_ns: next() as f64 + 0.5,
            p50_ns: next(),
            p90_ns: next(),
            p99_ns: next(),
            p999_ns: next(),
            max_ns: next(),
        };
        let search = op();
        let insert = op();
        let update = op();
        let remove = op();
        let scan = op();
        let mut class = || AllocClassStats {
            live: next(),
            chunks: next(),
            slots_per_chunk: next(),
            occupancy: next() as f64 / 128.0,
        };
        let leaf = class();
        let value8 = class();
        let value16 = class();
        ObsSnapshot {
            enabled: true,
            ops: OpsSection {
                sample_every: next(),
                search,
                insert,
                update,
                remove,
                scan,
            },
            scan: ScanSection {
                rows_mean: next() as f64 + 0.25,
                rows_p50: next(),
                rows_p99: next(),
                rows_max: next(),
                truncated: next(),
            },
            reads: ReadsSection {
                optimistic_retries: next(),
                lock_fallbacks: next(),
            },
            locks: LocksSection {
                shard_write_waits: next(),
                shard_write_wait_ns: next(),
            },
            dir: DirSection {
                grows: next(),
                bucket_drains: next(),
                migrations_finished: next(),
                migration_ns_total: next(),
                migration_in_progress: true,
                buckets: next(),
                shards: next(),
                fp_hits: next(),
                fp_false_positives: next(),
                stash_probes: next(),
                stash_spills: next(),
            },
            ebr: EbrSection {
                pending_garbage: next(),
            },
            alloc: AllocSection {
                allocs: next(),
                commits: next(),
                retires: next(),
                chunks_recycled: next(),
                ulog_acquisitions: next(),
                leaf,
                value8,
                value16,
            },
            pm: PmSection {
                persist_calls: next(),
                lines_flushed: next(),
                fences: next(),
                read_lines: next(),
                read_misses: next(),
                raw_allocs: next(),
                raw_frees: next(),
                bytes_in_use: u64::MAX, // must survive JSON exactly
                bytes_peak: next(),
                write_extra_ns: next(),
                read_extra_ns: next(),
                alloc_extra_ns: next(),
            },
            server: ServerSection {
                connections_total: next(),
                connections_active: next(),
                requests_total: next(),
                busy_rejections: next(),
                inflight_peak: next(),
                proto_errors: next(),
            },
            group: GroupSection {
                enabled: true,
                flushes: next(),
                ops_committed: next(),
                ops_failed: next(),
                persists_deferred: next(),
                occupancy_mean: next() as f64 + 0.125,
                occupancy_max: next(),
            },
        }
    }

    #[test]
    fn json_round_trip_dense() {
        let snap = dense_snapshot();
        let back = ObsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        let back_pretty = ObsSnapshot::from_json(&snap.to_json_pretty()).unwrap();
        assert_eq!(back_pretty, snap);
    }

    #[test]
    fn json_round_trip_default() {
        let snap = ObsSnapshot::default();
        let back = ObsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn from_json_rejects_missing_field() {
        let json = dense_snapshot()
            .to_json()
            .replace("\"fences\":", "\"fence_count\":");
        let err = ObsSnapshot::from_json(&json).unwrap_err();
        assert!(err.contains("fences"), "got: {err}");
    }

    #[test]
    fn schema_matches_golden() {
        let keys = ObsSnapshot::default().schema_keys();
        let golden = include_str!("../golden/obs_schema_keys.txt");
        let want: Vec<&str> = golden
            .lines()
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        assert_eq!(
            keys, want,
            "ObsSnapshot JSON schema drifted from golden/obs_schema_keys.txt; \
             if the change is intentional, regenerate the golden (see that file's note)"
        );
    }

    #[test]
    fn dense_and_default_share_schema() {
        assert_eq!(
            dense_snapshot().schema_keys(),
            ObsSnapshot::default().schema_keys()
        );
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = dense_snapshot().to_prometheus();
        for needle in [
            "# TYPE hart_ops_total counter",
            "hart_ops_total{op=\"search\"} 1",
            "hart_op_latency_ns{op=\"remove\",stat=\"p99\"}",
            "hart_dir_grows_total",
            "hart_ebr_pending_garbage",
            "hart_alloc_occupancy{class=\"value16\"}",
            "hart_pm_persist_calls_total",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        // Every non-comment line is `name{labels} value` with a parseable value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let val = line.rsplit(' ').next().unwrap();
            assert!(val.parse::<f64>().is_ok(), "bad sample line: {line}");
        }
    }
}
