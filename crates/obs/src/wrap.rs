//! [`Instrumented`]: op-latency observability for the baseline indexes.
//!
//! HART records into its own embedded [`Recorder`]; the baselines (WOART,
//! ART+CoW, FPTree, WORT) stay untouched — the bench harness wraps them in
//! this [`PersistentIndex`] adapter instead, which times the four point
//! ops and exposes an ops-only [`ObsSnapshot`]. Every other section stays
//! zero: the baselines have no directory, optimistic reads, or epalloc.

use hart_kv::{Key, MemoryStats, PersistentIndex, Result, Value};

use crate::recorder::{Op, Recorder};
use crate::snapshot::ObsSnapshot;
use crate::Observable;

/// A [`PersistentIndex`] that delegates to `inner` and records op latency.
pub struct Instrumented<T: PersistentIndex> {
    inner: T,
    rec: Recorder,
}

impl<T: PersistentIndex> Instrumented<T> {
    /// Wrap `inner` with a fresh enabled recorder.
    pub fn new(inner: T) -> Instrumented<T> {
        Instrumented {
            inner,
            rec: Recorder::new(),
        }
    }

    /// The wrapped index.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The recorder backing this wrapper.
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }
}

impl<T: PersistentIndex> Observable for Instrumented<T> {
    fn obs_snapshot(&self) -> ObsSnapshot {
        let mut snap = ObsSnapshot::default();
        self.rec.fill_snapshot(&mut snap);
        snap
    }
}

impl<T: PersistentIndex> PersistentIndex for Instrumented<T> {
    fn insert(&self, key: &Key, value: &Value) -> Result<()> {
        let t0 = self.rec.op_timer();
        let r = self.inner.insert(key, value);
        self.rec.record_op(Op::Insert, t0);
        r
    }

    fn search(&self, key: &Key) -> Result<Option<Value>> {
        let t0 = self.rec.op_timer();
        let r = self.inner.search(key);
        self.rec.record_op(Op::Search, t0);
        r
    }

    fn update(&self, key: &Key, value: &Value) -> Result<bool> {
        let t0 = self.rec.op_timer();
        let r = self.inner.update(key, value);
        self.rec.record_op(Op::Update, t0);
        r
    }

    fn remove(&self, key: &Key) -> Result<bool> {
        let t0 = self.rec.op_timer();
        let r = self.inner.remove(key);
        self.rec.record_op(Op::Remove, t0);
        r
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn memory_stats(&self) -> MemoryStats {
        self.inner.memory_stats()
    }

    fn range(&self, start: &Key, end: &Key) -> Result<Vec<(Key, Value)>> {
        self.inner.range(start, end)
    }

    fn scan(&self, start: &Key, end: &Key, limit: usize) -> Result<Vec<(Key, Value)>> {
        let t0 = self.rec.op_timer();
        let r = self.inner.scan(start, end, limit);
        match &r {
            Ok(rows) => {
                let truncated = limit > 0 && rows.len() == limit;
                self.rec.record_scan(rows.len() as u64, truncated, t0);
            }
            Err(_) => self.rec.record_scan(0, false, t0),
        }
        r
    }

    fn multi_get(&self, keys: &[Key]) -> Result<Vec<Option<Value>>> {
        self.inner.multi_get(keys)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}
