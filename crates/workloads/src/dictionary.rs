//! Deterministic stand-in for the paper's Dictionary workload.
//!
//! The paper inserts the 466,544 distinct English words of the
//! `dwyl/english-words` file [19]. What the index structures actually see
//! is: ~466 k distinct keys, variable lengths centered around 8–10
//! characters, lower-case-alphabet-heavy bytes, and *dense shared
//! prefixes* (thousands of words per leading two letters — which is what
//! exercises HART's hash split and ART's path compression). This generator
//! reproduces those properties from a closed syllable model, with no data
//! file or network dependency, and returns the words sorted alphabetically
//! — the order in which the paper's harness reads the file.

use hart_kv::{Key, MAX_KEY_LEN};
use std::collections::HashSet;

/// Number of words in dwyl/english-words as the paper cites it.
pub const DICTIONARY_SIZE: usize = 466_544;

const ONSETS: &[&str] = &[
    "", "b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "qu", "r", "s", "t", "v", "w",
    "z", "bl", "br", "ch", "cl", "cr", "dr", "fl", "fr", "gl", "gr", "pl", "pr", "sc", "sh", "sk",
    "sl", "sm", "sn", "sp", "st", "str", "sw", "th", "tr", "wh",
];

const VOWELS: &[&str] = &[
    "a", "e", "i", "o", "u", "y", "ai", "au", "ea", "ee", "ei", "ie", "io", "oa", "oo", "ou",
];

const CODAS: &[&str] = &[
    "", "b", "ck", "d", "f", "g", "k", "l", "ll", "m", "n", "nd", "ng", "nk", "nt", "p", "r", "rd",
    "rk", "rn", "rt", "s", "ss", "st", "t", "x",
];

const SUFFIXES: &[&str] = &["", "s", "ed", "ing", "er", "ly", "ness", "able", "ation"];

/// Append the `i`-th syllable to `buf`.
fn push_syllable(buf: &mut String, mut i: usize) {
    let o = i % ONSETS.len();
    i /= ONSETS.len();
    let v = i % VOWELS.len();
    i /= VOWELS.len();
    let c = i % CODAS.len();
    buf.push_str(ONSETS[o]);
    buf.push_str(VOWELS[v]);
    buf.push_str(CODAS[c]);
}

const SYLLABLES: usize = 45 * 16 * 26; // onset × vowel × coda combinations

/// Generate the full synthetic dictionary: [`DICTIONARY_SIZE`] distinct
/// words, sorted alphabetically. Deterministic (no RNG).
pub fn dictionary() -> Vec<Key> {
    dictionary_of_size(DICTIONARY_SIZE)
}

/// Generate a dictionary of `n` words (tests use small sizes).
pub fn dictionary_of_size(n: usize) -> Vec<Key> {
    let mut seen: HashSet<String> = HashSet::with_capacity(n * 2);
    let mut out: Vec<Key> = Vec::with_capacity(n);
    let mut counter: usize = 0;
    let mut word = String::with_capacity(MAX_KEY_LEN);
    while out.len() < n {
        word.clear();
        // Derive 1–3 syllables plus an optional suffix from the counter,
        // mixing the bits so successive counters differ in early syllables.
        let mut x = counter.wrapping_mul(0x9E37_79B9).rotate_left(7) ^ counter;
        let n_syll = 1 + (x % 3);
        x /= 3;
        for _ in 0..n_syll {
            push_syllable(&mut word, x % SYLLABLES);
            x /= SYLLABLES;
        }
        word.push_str(SUFFIXES[x % SUFFIXES.len()]);
        counter += 1;
        if word.is_empty() || word.len() > MAX_KEY_LEN {
            continue;
        }
        if seen.insert(word.clone()) {
            out.push(Key::new(word.as_bytes()).expect("syllable words are valid keys"));
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_dictionary_is_sorted_distinct_valid() {
        let words = dictionary_of_size(20_000);
        assert_eq!(words.len(), 20_000);
        assert!(words.windows(2).all(|w| w[0] < w[1]), "sorted + distinct");
        for w in &words {
            assert!(!w.is_empty() && w.len() <= MAX_KEY_LEN);
            assert!(w.as_slice().iter().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn word_lengths_resemble_english() {
        let words = dictionary_of_size(50_000);
        let avg: f64 = words.iter().map(|w| w.len() as f64).sum::<f64>() / words.len() as f64;
        assert!((5.0..=14.0).contains(&avg), "average word length {avg:.1}");
        let max = words.iter().map(|w| w.len()).max().unwrap();
        assert!(max <= MAX_KEY_LEN);
    }

    #[test]
    fn prefixes_are_shared() {
        // Dictionary workloads hammer shared prefixes; confirm many words
        // per leading 2 bytes on average.
        let words = dictionary_of_size(50_000);
        let mut prefixes = std::collections::HashSet::new();
        for w in &words {
            let s = w.as_slice();
            prefixes.insert([s[0], *s.get(1).unwrap_or(&0)]);
        }
        assert!(
            prefixes.len() < 1500,
            "too many distinct 2-byte prefixes: {}",
            prefixes.len()
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(dictionary_of_size(1000), dictionary_of_size(1000));
    }

    #[test]
    #[ignore = "full-size generation takes a few seconds; run with --ignored"]
    fn full_dictionary_has_the_papers_size() {
        let words = dictionary();
        assert_eq!(words.len(), DICTIONARY_SIZE);
    }
}
