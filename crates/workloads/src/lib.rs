//! Workload generators reproducing §IV-A of the paper.
//!
//! Three key workloads drive Figs. 4–8 and 10:
//!
//! * **Dictionary** — the paper uses the 466,544-word `dwyl/english-words`
//!   file. This crate has no network access, so [`dictionary`] produces the
//!   same number of distinct, variable-length, heavily prefix-sharing
//!   "words" from a deterministic syllable model, sorted alphabetically
//!   (the order a dictionary file is read in). See DESIGN.md for why this
//!   substitution preserves the experiment.
//! * **Sequential** — fixed-width base-62 counter strings, so numeric order
//!   equals lexicographic order.
//! * **Random** — random strings of 5–16 characters over the paper's
//!   62-character alphabet (A–Z, a–z, 0–9), deduplicated, from a seeded
//!   RNG.
//!
//! [`ycsb`] generates the three YCSB-style mixed workloads of §IV-C
//! (Read-Intensive, Read-Modified-Write, Write-Intensive) with a Uniform
//! request distribution.

pub mod dictionary;
pub mod ycsb;

use hart_kv::{Key, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

pub use dictionary::dictionary;
pub use ycsb::{MixSpec, Op, OpKind, RequestDistribution, YcsbWorkload, ZipfSampler, SCAN_LEN_MAX};

/// The paper's 62-character alphabet: "each character in a key is chosen
/// from the 52 alphabetic characters ... and 10 Arabic numerals".
pub const ALPHABET: &[u8; 62] = b"0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";

/// Which of the paper's key workloads to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    Dictionary,
    Sequential,
    Random,
}

impl Workload {
    /// All three, in paper order.
    pub const ALL: [Workload; 3] = [Workload::Dictionary, Workload::Sequential, Workload::Random];

    /// Label used in benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Dictionary => "Dictionary",
            Workload::Sequential => "Sequential",
            Workload::Random => "Random",
        }
    }

    /// Generate `n` distinct keys (Dictionary is capped at its natural
    /// 466,544 words).
    pub fn keys(&self, n: usize, seed: u64) -> Vec<Key> {
        match self {
            Workload::Dictionary => {
                let mut words = dictionary();
                words.truncate(n);
                words
            }
            Workload::Sequential => sequential(n),
            Workload::Random => random(n, seed),
        }
    }
}

/// `n` sequential keys: fixed-width base-62 counters in increasing order.
pub fn sequential(n: usize) -> Vec<Key> {
    // Width that fits n (minimum 8, like a realistic sequential id).
    let mut width = 8usize;
    let mut cap = 62u128.pow(8);
    while (n as u128) > cap {
        width += 1;
        cap = cap.saturating_mul(62);
    }
    (0..n as u64)
        .map(|i| Key::from_u64_base62(i, width))
        .collect()
}

/// `n` distinct random keys of 5–16 characters from [`ALPHABET`].
pub fn random(n: usize, seed: u64) -> Vec<Key> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<Vec<u8>> = HashSet::with_capacity(n * 2);
    let mut out = Vec::with_capacity(n);
    let mut buf = [0u8; 16];
    while out.len() < n {
        let len = rng.gen_range(5..=16usize);
        for b in buf[..len].iter_mut() {
            *b = ALPHABET[rng.gen_range(0..62)];
        }
        if seen.insert(buf[..len].to_vec()) {
            out.push(Key::new(&buf[..len]).expect("alphabet keys are valid"));
        }
    }
    out
}

/// Deterministic 8-byte value derived from a key (what the paper's
/// harness stores per record).
pub fn value_for(key: &Key) -> Value {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key.as_slice() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    Value::from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_sorted_and_distinct() {
        let keys = sequential(1000);
        assert_eq!(keys.len(), 1000);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(keys[0].len(), 8);
    }

    #[test]
    fn random_is_distinct_and_in_alphabet() {
        let keys = random(5000, 42);
        assert_eq!(keys.len(), 5000);
        let set: HashSet<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        assert_eq!(set.len(), 5000);
        for k in &keys {
            assert!(k.len() >= 5 && k.len() <= 16);
            assert!(k.as_slice().iter().all(|b| ALPHABET.contains(b)));
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        assert_eq!(random(100, 7), random(100, 7));
        assert_ne!(random(100, 7), random(100, 8));
    }

    #[test]
    fn workload_dispatch() {
        assert_eq!(Workload::Sequential.keys(10, 0).len(), 10);
        assert_eq!(Workload::Random.keys(10, 1).len(), 10);
        let d = Workload::Dictionary.keys(100, 0);
        assert_eq!(d.len(), 100);
    }

    #[test]
    fn values_are_deterministic() {
        let k = Key::from_str("hello").unwrap();
        assert_eq!(value_for(&k), value_for(&k));
        assert_ne!(value_for(&k), value_for(&Key::from_str("world").unwrap()));
    }
}
