//! YCSB-style mixed workloads (§IV-C, Fig. 9).
//!
//! "The three mixed workloads ... all employ a Uniform request
//! distribution, which means that all records in the database are equally
//! likely to be chosen when a read or write request arrives":
//!
//! * **Read-Intensive** — 10 % insertion, 70 % search, 10 % update, 10 %
//!   deletion;
//! * **Read-Modified-Write** — 50 % search, 50 % update;
//! * **Write-Intensive** — 40 % insertion, 20 % search, 40 % update.
//!
//! Beyond the paper, [`MixSpec::ycsb_e`] reproduces YCSB core workload E
//! (95 % short ordered scans, 5 % inserts) to exercise the ordered-scan
//! path; its scan-start keys follow the configured request distribution
//! and scan lengths are uniform in `1..=`[`SCAN_LEN_MAX`].

use crate::{random, value_for};
use hart_kv::{Key, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How non-insert operations pick their target record.
///
/// The paper's Fig. 9 uses Uniform only ("all records in the database are
/// equally likely to be chosen"); Zipfian is YCSB's default skewed
/// distribution and is provided as an extension for hot-key studies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RequestDistribution {
    /// Every record equally likely (the paper's setting).
    Uniform,
    /// Zipf-distributed ranks with exponent `theta` (YCSB uses 0.99).
    Zipfian { theta: f64 },
}

/// Draws ranks in `0..n` following a (rejection-inversion approximated)
/// Zipf distribution. Precomputes the harmonic normalizer once.
pub struct ZipfSampler {
    n: usize,
    h_n: f64,
    theta: f64,
    /// `theta ≈ 1`: the integral form `x^(1-θ)/(1-θ)` is singular there
    /// and degenerates to a logarithm, handled as its own branch.
    log_form: bool,
}

/// Width of the `theta ≈ 1.0` band that uses the logarithmic harmonic
/// form; the power form loses all precision inside it (0/0 at exactly 1).
const LOG_FORM_EPS: f64 = 1e-9;

impl ZipfSampler {
    /// Sampler over `n` items with exponent `theta` (0 < theta < 2).
    ///
    /// The classic Zipf exponent `theta = 1.0` is fully supported via the
    /// logarithmic harmonic form (the generic power form divides by
    /// `1 - theta`, which is 0 there).
    pub fn new(n: usize, theta: f64) -> ZipfSampler {
        assert!(n > 0, "zipf over an empty set");
        assert!(theta > 0.0 && theta < 2.0);
        let log_form = (theta - 1.0).abs() <= LOG_FORM_EPS;
        let h_n = Self::harmonic(n as f64, theta, log_form);
        ZipfSampler {
            n,
            h_n,
            theta,
            log_form,
        }
    }

    /// Generalized harmonic number approximation (integral form):
    /// `∫ x^-θ dx` over `[0.5, n+0.5]`, which is a power for `θ ≠ 1` and
    /// `ln((n+0.5)/0.5)` at `θ = 1`.
    fn harmonic(n: f64, theta: f64, log_form: bool) -> f64 {
        if log_form {
            ((n + 0.5) / 0.5).ln()
        } else {
            ((n + 0.5f64).powf(1.0 - theta) - 0.5f64.powf(1.0 - theta)) / (1.0 - theta)
        }
    }

    /// Draw one rank (0 = hottest).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        // Inverse-CDF on the continuous approximation, then round.
        let u: f64 = rng.gen::<f64>() * self.h_n;
        let x = if self.log_form {
            // Invert H(x) = ln((x+0.5)/0.5): x = 0.5·e^u − 0.5.
            0.5 * u.exp() - 0.5
        } else {
            (u * (1.0 - self.theta) + 0.5f64.powf(1.0 - self.theta)).powf(1.0 / (1.0 - self.theta))
                - 0.5
        };
        (x.max(0.0) as usize).min(self.n - 1)
    }
}

/// One generated operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    Insert,
    Search,
    Update,
    Delete,
    /// Ordered scan of up to `Op::scan_len` records starting at `Op::key`
    /// (YCSB-E's workhorse operation).
    Scan,
}

impl OpKind {
    /// Parse a harness op-code. Unknown codes are a hard error — a typo'd
    /// workload string must fail loudly, never silently no-op.
    pub fn parse(s: &str) -> Result<OpKind, String> {
        match s {
            "insert" => Ok(OpKind::Insert),
            "search" | "read" => Ok(OpKind::Search),
            "update" => Ok(OpKind::Update),
            "delete" | "remove" => Ok(OpKind::Delete),
            "scan" => Ok(OpKind::Scan),
            other => Err(format!(
                "unknown op-code `{other}` (expected insert|search|update|delete|scan)"
            )),
        }
    }
}

/// Largest scan length YCSB-E draws (uniform in `1..=SCAN_LEN_MAX`,
/// matching YCSB's default `maxscanlength=100`).
pub const SCAN_LEN_MAX: u32 = 100;

/// An operation with its target key (and payload where applicable).
#[derive(Clone, Copy, Debug)]
pub struct Op {
    pub kind: OpKind,
    pub key: Key,
    pub value: Value,
    /// Row budget for [`OpKind::Scan`] ops; 0 otherwise.
    pub scan_len: u32,
}

/// Operation percentages; must sum to 100.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MixSpec {
    pub insert: u8,
    pub search: u8,
    pub update: u8,
    pub delete: u8,
    pub scan: u8,
    pub label: &'static str,
}

impl MixSpec {
    /// 10/70/10/10 (Fig. 9a).
    pub const fn read_intensive() -> MixSpec {
        MixSpec {
            insert: 10,
            search: 70,
            update: 10,
            delete: 10,
            scan: 0,
            label: "Read-Intensive",
        }
    }

    /// 0/50/50/0 (Fig. 9b).
    pub const fn read_modified_write() -> MixSpec {
        MixSpec {
            insert: 0,
            search: 50,
            update: 50,
            delete: 0,
            scan: 0,
            label: "Read-Modified-Write",
        }
    }

    /// 40/20/40/0 (Fig. 9c).
    pub const fn write_intensive() -> MixSpec {
        MixSpec {
            insert: 40,
            search: 20,
            update: 40,
            delete: 0,
            scan: 0,
            label: "Write-Intensive",
        }
    }

    /// YCSB core workload E (beyond the paper): 95 % short ordered scans,
    /// 5 % inserts. Pair with `RequestDistribution::Zipfian` for YCSB's
    /// skewed scan-start keys.
    pub const fn ycsb_e() -> MixSpec {
        MixSpec {
            insert: 5,
            search: 0,
            update: 0,
            delete: 0,
            scan: 95,
            label: "YCSB-E",
        }
    }

    /// The three mixes of Fig. 9, in paper order.
    pub const ALL: [MixSpec; 3] = [
        Self::read_intensive(),
        Self::read_modified_write(),
        Self::write_intensive(),
    ];

    fn validate(&self) {
        assert_eq!(
            self.insert as u32
                + self.search as u32
                + self.update as u32
                + self.delete as u32
                + self.scan as u32,
            100,
            "mix percentages must sum to 100"
        );
    }
}

/// A generated mixed workload: records to preload, then operations to time.
pub struct YcsbWorkload {
    pub spec: MixSpec,
    pub preload: Vec<(Key, Value)>,
    pub ops: Vec<Op>,
}

impl YcsbWorkload {
    /// Generate a workload: `preload_n` random records loaded before the
    /// clock starts, then `ops_n` operations drawn from `spec` with
    /// Uniform key choice over the preloaded records (inserts target fresh
    /// keys). The paper's configuration.
    pub fn generate(spec: MixSpec, preload_n: usize, ops_n: usize, seed: u64) -> YcsbWorkload {
        Self::generate_with(spec, preload_n, ops_n, seed, RequestDistribution::Uniform)
    }

    /// Generate with an explicit request distribution (Zipfian extension).
    pub fn generate_with(
        spec: MixSpec,
        preload_n: usize,
        ops_n: usize,
        seed: u64,
        dist: RequestDistribution,
    ) -> YcsbWorkload {
        spec.validate();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
        // First decide every operation's kind, so exactly the right number
        // of fresh insert keys can be drawn afterwards.
        let kinds: Vec<OpKind> = (0..ops_n)
            .map(|_| {
                let dice = rng.gen_range(0..100u8);
                if dice < spec.insert {
                    OpKind::Insert
                } else if dice < spec.insert + spec.search {
                    OpKind::Search
                } else if dice < spec.insert + spec.search + spec.update {
                    OpKind::Update
                } else if dice < spec.insert + spec.search + spec.update + spec.delete {
                    OpKind::Delete
                } else {
                    OpKind::Scan
                }
            })
            .collect();
        let n_inserts = kinds.iter().filter(|k| **k == OpKind::Insert).count();
        // One key universe for preload + fresh inserts so they never collide.
        let all = random(preload_n + n_inserts, seed);
        let preload: Vec<(Key, Value)> = all[..preload_n]
            .iter()
            .map(|k| (*k, value_for(k)))
            .collect();
        let mut fresh = all[preload_n..].iter().copied();

        let zipf = match dist {
            RequestDistribution::Uniform => None,
            RequestDistribution::Zipfian { theta } => {
                Some(ZipfSampler::new(preload_n.max(1), theta))
            }
        };
        let ops = kinds
            .into_iter()
            .map(|kind| {
                let key = match kind {
                    OpKind::Insert => fresh.next().expect("budgeted exactly"),
                    // Scans start at an existing record's key (YCSB picks
                    // scan-start keys from the loaded table) — Zipfian when
                    // configured, exactly like the point ops.
                    _ => {
                        let idx = match &zipf {
                            None => rng.gen_range(0..preload_n.max(1)),
                            Some(z) => z.sample(&mut rng),
                        };
                        preload[idx].0
                    }
                };
                let scan_len = if kind == OpKind::Scan {
                    rng.gen_range(1..=SCAN_LEN_MAX)
                } else {
                    0
                };
                Op {
                    kind,
                    key,
                    value: Value::from_u64(rng.gen()),
                    scan_len,
                }
            })
            .collect();
        YcsbWorkload { spec, preload, ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_sum_to_100() {
        for spec in MixSpec::ALL {
            spec.validate();
        }
    }

    #[test]
    fn mix_fractions_are_respected() {
        let w = YcsbWorkload::generate(MixSpec::read_intensive(), 1000, 20_000, 99);
        let count = |k: OpKind| w.ops.iter().filter(|o| o.kind == k).count() as f64 / 20_000.0;
        assert!((count(OpKind::Search) - 0.70).abs() < 0.02);
        assert!((count(OpKind::Insert) - 0.10).abs() < 0.02);
        assert!((count(OpKind::Update) - 0.10).abs() < 0.02);
        assert!((count(OpKind::Delete) - 0.10).abs() < 0.02);
    }

    #[test]
    fn rmw_has_no_inserts_or_deletes() {
        let w = YcsbWorkload::generate(MixSpec::read_modified_write(), 500, 5000, 1);
        assert!(w
            .ops
            .iter()
            .all(|o| matches!(o.kind, OpKind::Search | OpKind::Update)));
    }

    #[test]
    fn inserts_target_fresh_keys() {
        let w = YcsbWorkload::generate(MixSpec::write_intensive(), 500, 5000, 2);
        let preloaded: std::collections::HashSet<&[u8]> =
            w.preload.iter().map(|(k, _)| k.as_slice()).collect();
        for op in &w.ops {
            if op.kind == OpKind::Insert {
                assert!(
                    !preloaded.contains(op.key.as_slice()),
                    "insert hit a preloaded key"
                );
            } else {
                assert!(
                    preloaded.contains(op.key.as_slice()),
                    "non-insert missed preload"
                );
            }
        }
    }

    #[test]
    fn zipfian_is_skewed() {
        let w = YcsbWorkload::generate_with(
            MixSpec::read_modified_write(),
            10_000,
            50_000,
            3,
            RequestDistribution::Zipfian { theta: 0.99 },
        );
        // Count hits on the hottest preloaded key vs a uniform baseline.
        let mut counts = std::collections::HashMap::new();
        for op in &w.ops {
            *counts.entry(op.key.as_slice().to_vec()).or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let uniform_expect = 50_000 / 10_000; // = 5 per key
        assert!(
            max > uniform_expect * 20,
            "hottest key only {max} hits — not skewed"
        );
        // And the distribution still touches a long tail.
        assert!(counts.len() > 1_000, "tail too short: {}", counts.len());
    }

    #[test]
    fn zipfian_theta_one_is_skewed() {
        // The classic Zipf exponent, previously rejected by an assert.
        let w = YcsbWorkload::generate_with(
            MixSpec::read_modified_write(),
            10_000,
            50_000,
            3,
            RequestDistribution::Zipfian { theta: 1.0 },
        );
        let mut counts = std::collections::HashMap::new();
        for op in &w.ops {
            *counts.entry(op.key.as_slice().to_vec()).or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let uniform_expect = 50_000 / 10_000; // = 5 per key
        assert!(
            max > uniform_expect * 20,
            "hottest key only {max} hits — not skewed"
        );
        assert!(counts.len() > 1_000, "tail too short: {}", counts.len());
    }

    #[test]
    fn zipf_sampler_theta_one_matches_neighbors() {
        // θ = 1.0 must sit between θ just below and just above it, not
        // degenerate: same in-range/monotone properties, comparable head
        // mass, and strictly more skew than a mild exponent.
        let head = |theta: f64| {
            let z = ZipfSampler::new(1000, theta);
            let mut rng = StdRng::seed_from_u64(7);
            let mut hist = vec![0u32; 1000];
            for _ in 0..100_000 {
                hist[z.sample(&mut rng)] += 1;
            }
            assert!(hist[0] > hist[10], "rank 0 must beat rank 10 at θ={theta}");
            assert!(
                hist[0] > hist[500] * 5,
                "head must dominate the tail at θ={theta}"
            );
            hist[0]
        };
        let below = head(0.999_999);
        let at_one = head(1.0);
        let above = head(1.000_001);
        let mild = head(0.5);
        assert!(at_one > mild, "θ=1 must be more skewed than θ=0.5");
        // Continuity: within a few percent of the adjacent exponents.
        for (label, other) in [("below", below), ("above", above)] {
            let ratio = at_one as f64 / other as f64;
            assert!(
                (0.9..=1.1).contains(&ratio),
                "θ=1 head mass {at_one} far from θ {label} ({other})"
            );
        }
    }

    #[test]
    fn zipf_sampler_ranks_in_range_and_monotone() {
        let z = ZipfSampler::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        let mut hist = vec![0u32; 1000];
        for _ in 0..100_000 {
            hist[z.sample(&mut rng)] += 1;
        }
        assert!(hist[0] > hist[10], "rank 0 must beat rank 10");
        assert!(hist[0] > hist[500] * 5, "head must dominate the tail");
    }

    #[test]
    fn ycsb_e_is_scan_heavy_with_bounded_lengths() {
        let w = YcsbWorkload::generate_with(
            MixSpec::ycsb_e(),
            2000,
            20_000,
            11,
            RequestDistribution::Zipfian { theta: 0.99 },
        );
        let scans = w.ops.iter().filter(|o| o.kind == OpKind::Scan).count() as f64 / 20_000.0;
        assert!((scans - 0.95).abs() < 0.02, "scan fraction {scans}");
        let preloaded: std::collections::HashSet<&[u8]> =
            w.preload.iter().map(|(k, _)| k.as_slice()).collect();
        let mut lens = std::collections::HashSet::new();
        for op in &w.ops {
            match op.kind {
                OpKind::Scan => {
                    assert!((1..=SCAN_LEN_MAX).contains(&op.scan_len));
                    assert!(
                        preloaded.contains(op.key.as_slice()),
                        "scan start must be a loaded key"
                    );
                    lens.insert(op.scan_len);
                }
                OpKind::Insert => assert_eq!(op.scan_len, 0),
                other => panic!("YCSB-E generated a {other:?}"),
            }
        }
        // Uniform lengths: nearly every value in 1..=100 shows up.
        assert!(lens.len() > 90, "only {} distinct scan lengths", lens.len());
    }

    #[test]
    fn op_code_parsing_is_total_or_loud() {
        assert_eq!(OpKind::parse("insert"), Ok(OpKind::Insert));
        assert_eq!(OpKind::parse("read"), Ok(OpKind::Search));
        assert_eq!(OpKind::parse("scan"), Ok(OpKind::Scan));
        assert_eq!(OpKind::parse("remove"), Ok(OpKind::Delete));
        let err = OpKind::parse("scann").unwrap_err();
        assert!(err.contains("scann") && err.contains("expected"));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = YcsbWorkload::generate(MixSpec::read_intensive(), 100, 1000, 5);
        let b = YcsbWorkload::generate(MixSpec::read_intensive(), 100, 1000, 5);
        assert_eq!(a.ops.len(), b.ops.len());
        for (x, y) in a.ops.iter().zip(&b.ops) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.key, y.key);
        }
    }
}
