//! `hart-cli` binary entry point. All logic lives in the library so
//! integration tests can drive it directly.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `repl` needs the live stdin/stdout, so it is dispatched here rather
    // than through `run`.
    if args.first().map(String::as_str) == Some("repl") {
        let mut opts = hart_cli::Options::default();
        let Some(image) = args.get(1) else {
            eprintln!("usage: hart-cli repl <image>");
            return ExitCode::from(2);
        };
        opts.image = image.into();
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        return match hart_cli::repl(&opts, stdin.lock(), stdout.lock()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    match hart_cli::run(&args) {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
