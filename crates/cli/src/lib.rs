//! `hart-cli` — a command-line key-value tool over HART pool images.
//!
//! The emulated PM pool serializes to an image file
//! ([`hart_pm::PmemPool::save_image`]), so the index genuinely persists
//! across process runs: every mutating command loads the image, runs
//! Algorithm 7 recovery, applies the operation, and writes the image back.
//!
//! ```text
//! hart-cli create store.img --size-mb 64
//! hart-cli put    store.img user:1001 alice
//! hart-cli get    store.img user:1001
//! hart-cli scan   store.img user: user:~ --limit 10
//! hart-cli load   store.img --workload random --n 10000
//! hart-cli stats  store.img
//! hart-cli fsck   store.img
//! hart-cli del    store.img user:1001
//! hart-cli repl   store.img
//! ```
//!
//! The library surface (`run`, `repl`) exists so integration tests can
//! drive the tool without spawning processes.

use hart::{Hart, HartConfig};
use hart_kv::{Key, PersistentIndex, Value};
use hart_pm::{LatencyConfig, PmemPool, PoolConfig, TimeMode};
use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Errors surfaced to the user.
#[derive(Debug)]
pub enum CliError {
    Usage(String),
    Io(std::io::Error),
    Index(hart_kv::Error),
    Corrupt(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Index(e) => write!(f, "index error: {e}"),
            CliError::Corrupt(m) => write!(f, "image problem: {m}"),
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<hart_kv::Error> for CliError {
    fn from(e: hart_kv::Error) -> Self {
        CliError::Index(e)
    }
}

pub type CliResult = Result<String, CliError>;

/// Parsed global options.
#[derive(Debug, Clone)]
pub struct Options {
    pub image: PathBuf,
    pub latency: LatencyConfig,
    pub size_mb: usize,
    pub limit: usize,
    pub n: usize,
    pub workload: String,
    pub seed: u64,
    /// `--locked-reads`: disable the optimistic lock-free read path
    /// (DESIGN.md §Concurrency kill-switch); reads take the per-ART read
    /// lock as in the paper's original protocol.
    pub locked_reads: bool,
    /// `--initial-buckets`: starting size of the DRAM hash directory
    /// (power of two).
    pub initial_buckets: usize,
    /// `--resize-threshold`: mean entries per bucket above which the
    /// directory doubles (DESIGN.md §Resizing); `0` pins it at
    /// `--initial-buckets` forever (kill-switch).
    pub resize_threshold: usize,
    /// `--json`: machine-readable output. `stats` prints the full
    /// [`hart::ObsSnapshot`] as JSON instead of the human summary.
    pub json: bool,
    /// `--metrics-dump <path>`: while a long-running command (`load`)
    /// executes, a background thread rewrites this file with the current
    /// observability snapshot every `--metrics-interval-ms`, plus one
    /// final authoritative write when the command finishes. A `.prom`
    /// extension selects Prometheus text exposition; anything else gets
    /// pretty JSON.
    pub metrics_dump: Option<PathBuf>,
    /// `--metrics-interval-ms`: period of the `--metrics-dump` writer.
    pub metrics_interval_ms: u64,
    /// `--no-obs`: build the tree with
    /// [`HartConfig::without_observability`] — the telemetry kill-switch.
    pub no_obs: bool,
    /// `serve`: bind address (port 0 = ephemeral).
    pub addr: String,
    /// `serve --addr-file <path>`: atomically write the bound address to
    /// this file once listening, so scripts can find an ephemeral port.
    pub addr_file: Option<PathBuf>,
    /// `serve --serve-secs N`: serve for N seconds then shut down and save
    /// the image (0 = forever). Tests and scripted runs use this.
    pub serve_secs: u64,
    /// `serve --serve-workers N`: worker threads executing tree ops.
    pub serve_workers: usize,
    /// `serve --max-inflight N`: admission-control bound.
    pub max_inflight: usize,
    /// `serve --group-commit`: batch write persists through the group
    /// committer (off = per-op persist kill-switch).
    pub group_commit: bool,
    /// `serve --group-max-ops N`: flush a batch at this many ops.
    pub group_max_ops: usize,
    /// `serve --group-window-us N`: flush an open batch after this long.
    pub group_window_us: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            image: PathBuf::new(),
            latency: LatencyConfig::dram(),
            size_mb: 64,
            limit: usize::MAX,
            n: 10_000,
            workload: "random".into(),
            seed: 42,
            locked_reads: false,
            initial_buckets: HartConfig::default().initial_buckets,
            resize_threshold: HartConfig::default().resize_threshold,
            json: false,
            metrics_dump: None,
            metrics_interval_ms: 200,
            no_obs: false,
            addr: "127.0.0.1:0".into(),
            addr_file: None,
            serve_secs: 0,
            serve_workers: 4,
            max_inflight: 1024,
            group_commit: false,
            group_max_ops: 64,
            group_window_us: 100,
        }
    }
}

fn parse_latency(s: &str) -> Result<LatencyConfig, CliError> {
    match s {
        "300/100" => Ok(LatencyConfig::c300_100()),
        "300/300" => Ok(LatencyConfig::c300_300()),
        "600/300" => Ok(LatencyConfig::c600_300()),
        "dram" => Ok(LatencyConfig::dram()),
        other => Err(CliError::Usage(format!(
            "unknown latency {other} (use 300/100, 300/300, 600/300 or dram)"
        ))),
    }
}

fn pool_cfg(opts: &Options) -> PoolConfig {
    PoolConfig {
        size_bytes: opts.size_mb * 1024 * 1024,
        latency: opts.latency,
        time_mode: TimeMode::Inject,
        ..PoolConfig::default()
    }
}

fn hart_cfg(opts: &Options) -> HartConfig {
    let mut cfg = if opts.locked_reads {
        HartConfig::with_locked_reads()
    } else {
        HartConfig::default()
    };
    cfg.initial_buckets = opts.initial_buckets;
    cfg.resize_threshold = opts.resize_threshold;
    cfg.observability = !opts.no_obs;
    cfg
}

fn load(opts: &Options) -> Result<(Arc<PmemPool>, Hart), CliError> {
    let pool = Arc::new(PmemPool::load_image(&opts.image, pool_cfg(opts))?);
    let hart = Hart::recover(Arc::clone(&pool), hart_cfg(opts))?;
    Ok((pool, hart))
}

fn save(pool: &PmemPool, path: &Path) -> Result<(), CliError> {
    pool.save_image(path)?;
    Ok(())
}

fn parse_key(s: &str) -> Result<Key, CliError> {
    Key::new(s.as_bytes()).map_err(CliError::Index)
}

fn parse_value(s: &str) -> Result<Value, CliError> {
    Value::new(s.as_bytes()).map_err(CliError::Index)
}

fn show_value(v: &Value) -> String {
    match std::str::from_utf8(v.as_slice()) {
        Ok(s) if s.chars().all(|c| !c.is_control()) => s.to_string(),
        _ => format!(
            "0x{}",
            v.as_slice()
                .iter()
                .map(|b| format!("{b:02x}"))
                .collect::<String>()
        ),
    }
}

/// Top-level entry: parse `args` (without argv[0]) and execute.
pub fn run(args: &[String]) -> CliResult {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::Usage(usage()));
    };
    let mut opts = Options::default();
    let mut positional: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
        };
        match a.as_str() {
            "--latency" => opts.latency = parse_latency(&grab("--latency")?)?,
            "--size-mb" => {
                opts.size_mb = grab("--size-mb")?
                    .parse()
                    .map_err(|_| CliError::Usage("--size-mb: not a number".into()))?
            }
            "--limit" => {
                opts.limit = grab("--limit")?
                    .parse()
                    .map_err(|_| CliError::Usage("--limit: not a number".into()))?
            }
            "--n" => {
                opts.n = grab("--n")?
                    .parse()
                    .map_err(|_| CliError::Usage("--n: not a number".into()))?
            }
            "--seed" => {
                opts.seed = grab("--seed")?
                    .parse()
                    .map_err(|_| CliError::Usage("--seed: not a number".into()))?
            }
            "--workload" => opts.workload = grab("--workload")?,
            "--locked-reads" => opts.locked_reads = true,
            "--json" => opts.json = true,
            "--no-obs" => opts.no_obs = true,
            "--metrics-dump" => opts.metrics_dump = Some(PathBuf::from(grab("--metrics-dump")?)),
            "--metrics-interval-ms" => {
                opts.metrics_interval_ms = grab("--metrics-interval-ms")?
                    .parse()
                    .map_err(|_| CliError::Usage("--metrics-interval-ms: not a number".into()))?
            }
            "--addr" => opts.addr = grab("--addr")?,
            "--addr-file" => opts.addr_file = Some(PathBuf::from(grab("--addr-file")?)),
            "--serve-secs" => {
                opts.serve_secs = grab("--serve-secs")?
                    .parse()
                    .map_err(|_| CliError::Usage("--serve-secs: not a number".into()))?
            }
            "--serve-workers" => {
                opts.serve_workers = grab("--serve-workers")?
                    .parse()
                    .map_err(|_| CliError::Usage("--serve-workers: not a number".into()))?
            }
            "--max-inflight" => {
                opts.max_inflight = grab("--max-inflight")?
                    .parse()
                    .map_err(|_| CliError::Usage("--max-inflight: not a number".into()))?
            }
            "--group-commit" => opts.group_commit = true,
            "--group-max-ops" => {
                opts.group_max_ops = grab("--group-max-ops")?
                    .parse()
                    .map_err(|_| CliError::Usage("--group-max-ops: not a number".into()))?
            }
            "--group-window-us" => {
                opts.group_window_us = grab("--group-window-us")?
                    .parse()
                    .map_err(|_| CliError::Usage("--group-window-us: not a number".into()))?
            }
            "--initial-buckets" => {
                opts.initial_buckets = grab("--initial-buckets")?
                    .parse()
                    .map_err(|_| CliError::Usage("--initial-buckets: not a number".into()))?
            }
            "--resize-threshold" => {
                opts.resize_threshold = grab("--resize-threshold")?
                    .parse()
                    .map_err(|_| CliError::Usage("--resize-threshold: not a number".into()))?
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown flag {flag}")));
            }
            p => positional.push(p.to_string()),
        }
    }
    if positional.is_empty() && cmd != "help" {
        return Err(CliError::Usage("every command needs an image path".into()));
    }
    if !positional.is_empty() {
        opts.image = PathBuf::from(&positional[0]);
    }
    let args = &positional[1.min(positional.len())..];

    match cmd.as_str() {
        "help" => Ok(usage()),
        "create" => cmd_create(&opts),
        "put" => cmd_put(&opts, args),
        "get" => cmd_get(&opts, args),
        "del" => cmd_del(&opts, args),
        "scan" => cmd_scan(&opts, args),
        "load" => cmd_load(&opts),
        "stats" => cmd_stats(&opts),
        "fsck" => cmd_fsck(&opts),
        "serve" => cmd_serve(&opts),
        other => Err(CliError::Usage(format!(
            "unknown command {other}\n{}",
            usage()
        ))),
    }
}

fn usage() -> String {
    "hart-cli <command> <image> [args] [--latency 300/300] [--size-mb N] [--locked-reads]\n\
     \x20                                  [--initial-buckets N] [--resize-threshold N (0 = fixed)]\n\
     \x20                                  [--no-obs] [--metrics-dump <path> [--metrics-interval-ms N]]\n\
     commands:\n\
     \x20 create <image> [--size-mb N]        format a fresh HART pool image\n\
     \x20 put    <image> <key> <value>        insert or update one record\n\
     \x20 get    <image> <key>                look one key up\n\
     \x20 del    <image> <key>                delete one key\n\
     \x20 scan   <image> <start> <end> [--limit N]   ordered range scan\n\
     \x20 load   <image> [--workload random|sequential|dictionary] [--n N] [--seed S]\n\
     \x20 stats  <image> [--json]             record/ART/memory statistics (JSON = full ObsSnapshot)\n\
     \x20 fsck   <image>                      deep-verify the persistent image\n\
     \x20 serve  <image> [--addr H:P] [--addr-file P] [--serve-secs N] [--serve-workers N]\n\
     \x20        [--max-inflight N] [--group-commit [--group-max-ops N] [--group-window-us N]]\n\
     \x20                                     serve the image over TCP (hart-server protocol)\n\
     \x20 repl   <image>                      interactive session (binary only)"
        .to_string()
}

fn cmd_create(opts: &Options) -> CliResult {
    let pool = Arc::new(PmemPool::new(pool_cfg(opts)));
    let hart = Hart::create(Arc::clone(&pool), hart_cfg(opts))?;
    drop(hart);
    save(&pool, &opts.image)?;
    Ok(format!(
        "created {} ({} MiB)",
        opts.image.display(),
        opts.size_mb
    ))
}

fn cmd_put(opts: &Options, args: &[String]) -> CliResult {
    let [key, value] = args else {
        return Err(CliError::Usage("put <image> <key> <value>".into()));
    };
    let (pool, hart) = load(opts)?;
    hart.insert(&parse_key(key)?, &parse_value(value)?)?;
    drop(hart);
    save(&pool, &opts.image)?;
    Ok(format!("put {key}"))
}

fn cmd_get(opts: &Options, args: &[String]) -> CliResult {
    let [key] = args else {
        return Err(CliError::Usage("get <image> <key>".into()));
    };
    let (_pool, hart) = load(opts)?;
    match hart.search(&parse_key(key)?)? {
        Some(v) => Ok(show_value(&v)),
        None => Ok(format!("(not found: {key})")),
    }
}

fn cmd_del(opts: &Options, args: &[String]) -> CliResult {
    let [key] = args else {
        return Err(CliError::Usage("del <image> <key>".into()));
    };
    let (pool, hart) = load(opts)?;
    let removed = hart.remove(&parse_key(key)?)?;
    drop(hart);
    save(&pool, &opts.image)?;
    Ok(if removed {
        format!("deleted {key}")
    } else {
        format!("(not found: {key})")
    })
}

fn cmd_scan(opts: &Options, args: &[String]) -> CliResult {
    let [start, end] = args else {
        return Err(CliError::Usage("scan <image> <start> <end>".into()));
    };
    let (_pool, hart) = load(opts)?;
    // Trait-level scan: the limit is pushed down into the tree (shards past
    // the quota are never visited) instead of ranging everything and
    // truncating here.
    let hits = hart.scan(&parse_key(start)?, &parse_key(end)?, opts.limit)?;
    let mut out = String::new();
    for (k, v) in &hits {
        writeln!(out, "{k}\t{}", show_value(v)).unwrap();
    }
    write!(out, "{} record(s)", hits.len()).unwrap();
    Ok(out)
}

/// Serialize the current snapshot to `path`. A `.prom` extension picks
/// Prometheus text exposition; everything else gets pretty JSON.
///
/// The write is atomic: the body goes to a unique temp file in the same
/// directory which is then renamed over `path`, so a concurrent reader
/// (Prometheus textfile collector, `tail`, a test) either sees the
/// previous complete snapshot or the new one — never a torn half-file,
/// and never a moment where `path` does not exist.
fn write_metrics(path: &Path, hart: &Hart) -> std::io::Result<()> {
    let snap = hart.obs_snapshot();
    let body = if path.extension().is_some_and(|e| e == "prom") {
        snap.to_prometheus()
    } else {
        snap.to_json_pretty()
    };
    write_atomic(path, body.as_bytes())
}

/// Write `body` to `path` via a same-directory temp file and rename.
/// Unique per process+thread so concurrent dumpers never clobber each
/// other's temp file mid-write.
fn write_atomic(path: &Path, body: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no file name"))?;
    let tmp_name = format!(
        ".{}.tmp-{}-{:?}",
        file_name.to_string_lossy(),
        std::process::id(),
        std::thread::current().id(),
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => PathBuf::from(&tmp_name),
    };
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Background metrics writer driving `--metrics-dump`: rewrites `path`
/// every `interval` until stopped, then the caller does one final write
/// after the workload ends so the file always reflects the finished run.
struct MetricsDumper {
    stop: Arc<std::sync::atomic::AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl MetricsDumper {
    fn spawn(path: PathBuf, hart: Arc<Hart>, interval: std::time::Duration) -> MetricsDumper {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            while !flag.load(std::sync::atomic::Ordering::Acquire) {
                // A failed write (e.g. unmounted target) only costs this
                // interval's sample; the final write reports the error.
                let _ = write_metrics(&path, &hart);
                std::thread::park_timeout(interval);
            }
        });
        MetricsDumper { stop, thread }
    }

    fn finish(self) {
        self.stop.store(true, std::sync::atomic::Ordering::Release);
        self.thread.thread().unpark();
        let _ = self.thread.join();
    }
}

fn cmd_load(opts: &Options) -> CliResult {
    let keys = match opts.workload.as_str() {
        "random" => hart_workloads::random(opts.n, opts.seed),
        "sequential" => hart_workloads::sequential(opts.n),
        "dictionary" => hart_workloads::dictionary::dictionary_of_size(opts.n),
        other => {
            return Err(CliError::Usage(format!(
                "unknown workload {other} (random|sequential|dictionary)"
            )))
        }
    };
    let (pool, hart) = load(opts)?;
    let hart = Arc::new(hart);
    let dumper = opts.metrics_dump.as_ref().map(|path| {
        MetricsDumper::spawn(
            path.clone(),
            Arc::clone(&hart),
            std::time::Duration::from_millis(opts.metrics_interval_ms.max(1)),
        )
    });
    let t0 = std::time::Instant::now();
    for k in &keys {
        hart.insert(k, &hart_workloads::value_for(k))?;
    }
    let dt = t0.elapsed();
    if let Some(d) = dumper {
        d.finish();
    }
    if let Some(path) = &opts.metrics_dump {
        write_metrics(path, &hart)?;
    }
    let total = hart.len();
    drop(hart);
    save(&pool, &opts.image)?;
    let mut out = format!(
        "loaded {} {} keys in {:.2}s ({:.2} µs/op); {} records total",
        keys.len(),
        opts.workload,
        dt.as_secs_f64(),
        dt.as_secs_f64() * 1e6 / keys.len().max(1) as f64,
        total
    );
    if let Some(path) = &opts.metrics_dump {
        write!(out, "; metrics → {}", path.display()).unwrap();
    }
    Ok(out)
}

fn cmd_stats(opts: &Options) -> CliResult {
    let (_pool, hart) = load(opts)?;
    if opts.json {
        return Ok(hart.obs_snapshot().to_json_pretty());
    }
    let m = hart.memory_stats();
    let a = hart.alloc_stats();
    let mut out = String::new();
    writeln!(out, "records : {}", hart.len()).unwrap();
    writeln!(out, "ARTs    : {}", hart.art_count()).unwrap();
    writeln!(out, "memory  : {m}").unwrap();
    writeln!(
        out,
        "alloc   : leaves={} v8={} v16={}",
        a.live[0], a.live[1], a.live[2]
    )
    .unwrap();
    write!(
        out,
        "chunks  : leaf={} v8={} v16={}",
        a.chunks[0], a.chunks[1], a.chunks[2]
    )
    .unwrap();
    Ok(out)
}

fn cmd_fsck(opts: &Options) -> CliResult {
    let (_pool, hart) = load(opts)?;
    let rep = hart.epallocator().verify();
    let dram = hart.check_consistency();
    let mut out = format!("{rep}");
    match dram {
        Ok(()) => out.push_str("\nDRAM structures consistent ✓"),
        Err(e) => {
            return Err(CliError::Corrupt(format!("{out}\nDRAM inconsistency: {e}")));
        }
    }
    if rep.is_healthy() {
        Ok(out)
    } else {
        Err(CliError::Corrupt(out))
    }
}

/// `serve`: recover the image, expose it over TCP with the hart-server
/// protocol, and (when `--serve-secs` bounds the run) save the mutated
/// image back on shutdown. `--group-commit` routes write persists through
/// the group committer; the default is the per-op-persist kill-switch.
fn cmd_serve(opts: &Options) -> CliResult {
    let (pool, hart) = load(opts)?;
    // The tree is already recovered; `--group-commit` only routes the
    // server's write path through the committer (the tree never batches).
    let hart = Arc::new(hart);
    let cfg = hart_server::ServerConfig {
        addr: opts.addr.clone(),
        workers: opts.serve_workers,
        max_inflight: opts.max_inflight,
        group_commit: opts.group_commit,
        group: hart_pm::GroupConfig {
            max_ops: opts.group_max_ops,
            window: std::time::Duration::from_micros(opts.group_window_us),
        },
    };
    let handle = hart_server::start(Arc::clone(&hart), cfg).map_err(CliError::Io)?;
    let addr = handle.local_addr();
    eprintln!("hart-cli: serving {} on {addr}", opts.image.display());
    if let Some(path) = &opts.addr_file {
        write_atomic(path, addr.to_string().as_bytes())?;
    }
    if opts.serve_secs == 0 {
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    std::thread::sleep(std::time::Duration::from_secs(opts.serve_secs));
    let snap = handle.obs_snapshot();
    handle.shutdown();
    save(&pool, &opts.image)?;
    Ok(format!(
        "served {addr} for {}s: {} connection(s), {} request(s), {} busy, {} group flush(es); image saved",
        opts.serve_secs,
        snap.server.connections_total,
        snap.server.requests_total,
        snap.server.busy_rejections,
        snap.group.flushes,
    ))
}

/// Interactive session over any reader/writer (stdin/stdout in the
/// binary; byte buffers in tests). Saves the image on `exit`.
pub fn repl(opts: &Options, input: impl BufRead, mut output: impl Write) -> Result<(), CliError> {
    let (pool, hart) = load(opts)?;
    writeln!(
        output,
        "hart-cli repl — {} records; commands: put get del scan stats fsck exit",
        hart.len()
    )?;
    for line in input.lines() {
        let line = line?;
        let words: Vec<&str> = line.split_whitespace().collect();
        let reply: CliResult = match words.as_slice() {
            [] => continue,
            ["exit"] | ["quit"] => break,
            ["put", k, v] => (|| {
                hart.insert(&parse_key(k)?, &parse_value(v)?)?;
                Ok(format!("put {k}"))
            })(),
            ["get", k] => (|| {
                Ok(match hart.search(&parse_key(k)?)? {
                    Some(v) => show_value(&v),
                    None => format!("(not found: {k})"),
                })
            })(),
            ["del", k] => (|| {
                Ok(if hart.remove(&parse_key(k)?)? {
                    format!("deleted {k}")
                } else {
                    format!("(not found: {k})")
                })
            })(),
            ["scan", a, b] => (|| {
                let hits = hart.scan(&parse_key(a)?, &parse_key(b)?, opts.limit)?;
                let mut s = String::new();
                for (k, v) in &hits {
                    writeln!(s, "{k}\t{}", show_value(v)).unwrap();
                }
                write!(s, "{} record(s)", hits.len()).unwrap();
                Ok(s)
            })(),
            ["stats"] => Ok(format!(
                "{} records, {} ARTs, {}",
                hart.len(),
                hart.art_count(),
                hart.memory_stats()
            )),
            ["fsck"] => {
                let rep = hart.epallocator().verify();
                Ok(format!("{rep}"))
            }
            other => Err(CliError::Usage(format!("unknown repl command {other:?}"))),
        };
        match reply {
            Ok(s) => writeln!(output, "{s}")?,
            Err(e) => writeln!(output, "error: {e}")?,
        }
    }
    drop(hart);
    save(&pool, &opts.image)?;
    writeln!(output, "saved {}", opts.image.display())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("hart-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn runv(args: &[&str]) -> CliResult {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn create_put_get_del_roundtrip() {
        let img = tmp("roundtrip.img");
        let img_s = img.to_str().unwrap();
        runv(&["create", img_s, "--size-mb", "16"]).unwrap();
        runv(&["put", img_s, "user:1", "alice"]).unwrap();
        runv(&["put", img_s, "user:2", "bob"]).unwrap();
        assert_eq!(runv(&["get", img_s, "user:1"]).unwrap(), "alice");
        assert_eq!(
            runv(&["get", img_s, "user:3"]).unwrap(),
            "(not found: user:3)"
        );
        assert_eq!(runv(&["del", img_s, "user:1"]).unwrap(), "deleted user:1");
        assert_eq!(
            runv(&["get", img_s, "user:1"]).unwrap(),
            "(not found: user:1)"
        );
        assert_eq!(runv(&["get", img_s, "user:2"]).unwrap(), "bob");
    }

    #[test]
    fn scan_is_sorted_and_limited() {
        let img = tmp("scan.img");
        let img_s = img.to_str().unwrap();
        runv(&["create", img_s, "--size-mb", "16"]).unwrap();
        for k in ["b", "a", "c", "ab"] {
            runv(&["put", img_s, k, "v"]).unwrap();
        }
        let out = runv(&["scan", img_s, "a", "c"]).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[..4], ["a\tv", "ab\tv", "b\tv", "c\tv"]);
        let out = runv(&["scan", img_s, "a", "c", "--limit", "2"]).unwrap();
        assert!(out.ends_with("2 record(s)"), "{out}");
    }

    #[test]
    fn load_and_stats_and_fsck() {
        let img = tmp("load.img");
        let img_s = img.to_str().unwrap();
        runv(&["create", img_s, "--size-mb", "32"]).unwrap();
        let out = runv(&["load", img_s, "--workload", "sequential", "--n", "500"]).unwrap();
        assert!(out.contains("loaded 500"), "{out}");
        let out = runv(&["stats", img_s]).unwrap();
        assert!(out.contains("records : 500"), "{out}");
        let out = runv(&["fsck", img_s]).unwrap();
        assert!(out.contains("healthy"), "{out}");
        assert!(out.contains("consistent"), "{out}");
    }

    #[test]
    fn usage_errors_are_reported() {
        assert!(matches!(runv(&["put"]), Err(CliError::Usage(_))));
        assert!(matches!(
            runv(&["frobnicate", "x.img"]),
            Err(CliError::Usage(_))
        ));
        let img = tmp("usage.img");
        let img_s = img.to_str().unwrap();
        runv(&["create", img_s, "--size-mb", "16"]).unwrap();
        assert!(matches!(
            runv(&["put", img_s, "only-key"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            runv(&["get", img_s, "key", "--latency", "9000/1"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn locked_reads_flag_round_trips() {
        let img = tmp("locked.img");
        let img_s = img.to_str().unwrap();
        runv(&["create", img_s, "--size-mb", "16", "--locked-reads"]).unwrap();
        runv(&["put", img_s, "k", "v", "--locked-reads"]).unwrap();
        assert_eq!(runv(&["get", img_s, "k", "--locked-reads"]).unwrap(), "v");
        // Images written either way are readable with the other read path.
        assert_eq!(runv(&["get", img_s, "k"]).unwrap(), "v");
    }

    #[test]
    fn directory_flags_round_trip() {
        let img = tmp("dirflags.img");
        let img_s = img.to_str().unwrap();
        // Tiny fixed directory: everything still works, just with chains.
        runv(&[
            "create",
            img_s,
            "--size-mb",
            "16",
            "--initial-buckets",
            "8",
            "--resize-threshold",
            "0",
        ])
        .unwrap();
        for k in ["a1", "b2", "c3"] {
            runv(&[
                "put",
                img_s,
                k,
                "v",
                "--initial-buckets",
                "8",
                "--resize-threshold",
                "0",
            ])
            .unwrap();
        }
        assert_eq!(
            runv(&["get", img_s, "b2", "--initial-buckets", "8"]).unwrap(),
            "v"
        );
        // The directory is DRAM-only, so images round-trip across knobs.
        assert_eq!(runv(&["get", img_s, "b2"]).unwrap(), "v");
        // A non-power-of-two size is rejected by config validation.
        assert!(matches!(
            runv(&["get", img_s, "b2", "--initial-buckets", "100"]),
            Err(CliError::Index(_))
        ));
        assert!(matches!(
            runv(&["get", img_s, "b2", "--resize-threshold", "zero"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn get_on_missing_image_fails() {
        assert!(matches!(
            runv(&["get", "/nonexistent/nope.img", "k"]),
            Err(CliError::Io(_))
        ));
    }

    #[test]
    fn repl_session() {
        let img = tmp("repl.img");
        let img_s = img.to_str().unwrap();
        runv(&["create", img_s, "--size-mb", "16"]).unwrap();
        let script =
            "put k1 hello\nput k2 world\nget k1\nscan k1 k2\ndel k1\nget k1\nstats\nexit\n";
        let mut out = Vec::new();
        let opts = Options {
            image: img.clone(),
            ..Options::default()
        };
        repl(&opts, script.as_bytes(), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("put k1"));
        assert!(out.contains("hello"));
        assert!(out.contains("deleted k1"));
        assert!(out.contains("(not found: k1)"));
        assert!(out.contains("saved"));
        // Effects persisted.
        assert_eq!(runv(&["get", img_s, "k2"]).unwrap(), "world");
        assert_eq!(runv(&["get", img_s, "k1"]).unwrap(), "(not found: k1)");
    }

    #[test]
    fn stats_json_emits_a_parseable_snapshot() {
        let img = tmp("statsjson.img");
        let img_s = img.to_str().unwrap();
        runv(&["create", img_s, "--size-mb", "16"]).unwrap();
        runv(&["load", img_s, "--workload", "sequential", "--n", "300"]).unwrap();
        let out = runv(&["stats", img_s, "--json"]).unwrap();
        let snap = hart::ObsSnapshot::from_json(&out).expect("stats --json must parse");
        assert!(snap.enabled);
        // `stats` recovers the image fresh, so gauges (not op counters)
        // carry the state: 300 live leaves from the load above. Traffic
        // counters like pm.bytes_in_use describe *this* process and may
        // legitimately be zero here.
        assert_eq!(snap.alloc.leaf.live, 300);
        assert!(snap.alloc.leaf.chunks > 0);
        assert!(snap.dir.shards >= 1);
        // The kill-switch flows through the CLI flag.
        let out = runv(&["stats", img_s, "--json", "--no-obs"]).unwrap();
        let snap = hart::ObsSnapshot::from_json(&out).unwrap();
        assert!(!snap.enabled);
        assert_eq!(snap.alloc.leaf.live, 0);
    }

    #[test]
    fn metrics_dump_writes_snapshot_files() {
        let img = tmp("mdump.img");
        let img_s = img.to_str().unwrap();
        let json_path = tmp("mdump.json");
        let prom_path = tmp("mdump.prom");
        runv(&["create", img_s, "--size-mb", "16"]).unwrap();
        let out = runv(&[
            "load",
            img_s,
            "--workload",
            "sequential",
            "--n",
            "400",
            "--metrics-dump",
            json_path.to_str().unwrap(),
            "--metrics-interval-ms",
            "5",
        ])
        .unwrap();
        assert!(out.contains("metrics →"), "{out}");
        // The final write reflects the finished run exactly.
        let body = std::fs::read_to_string(&json_path).unwrap();
        let snap = hart::ObsSnapshot::from_json(&body).unwrap();
        assert_eq!(snap.ops.insert.count, 400);
        assert_eq!(snap.alloc.leaf.live, 400);
        // A .prom target selects Prometheus text exposition.
        runv(&[
            "load",
            img_s,
            "--workload",
            "sequential",
            "--n",
            "50",
            "--metrics-dump",
            prom_path.to_str().unwrap(),
        ])
        .unwrap();
        let prom = std::fs::read_to_string(&prom_path).unwrap();
        assert!(prom.contains("hart_ops_total{op=\"insert\"} 50"), "{prom}");
    }

    #[test]
    fn metrics_dump_is_atomic_under_concurrent_reads() {
        // Regression: `write_metrics` used to rewrite the target in place
        // with `std::fs::write` (truncate + write), so a concurrent reader
        // could observe an empty or half-written snapshot. With the
        // temp-file + rename scheme every read sees a complete document.
        let path = tmp("mdump-hammer.json");
        let _ = std::fs::remove_file(&path);
        let pool = Arc::new(PmemPool::new(PoolConfig {
            size_bytes: 16 * 1024 * 1024,
            ..PoolConfig::default()
        }));
        let hart = Arc::new(Hart::create(pool, HartConfig::default()).unwrap());
        for i in 0..500u64 {
            hart.insert(&Key::from_u64_base62(i, 8), &Value::from_u64(i))
                .unwrap();
        }
        let dumper = MetricsDumper::spawn(
            path.clone(),
            Arc::clone(&hart),
            std::time::Duration::from_micros(200),
        );
        let mut complete_reads = 0u32;
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(300);
        while std::time::Instant::now() < deadline {
            match std::fs::read_to_string(&path) {
                // Only acceptable before the very first rename lands.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    assert_eq!(complete_reads, 0, "file vanished after first dump");
                }
                Err(e) => panic!("reader failed: {e}"),
                Ok(body) => {
                    let snap = hart::ObsSnapshot::from_json(&body)
                        .unwrap_or_else(|e| panic!("torn snapshot ({e}): {body:?}"));
                    assert_eq!(snap.ops.insert.count, 500);
                    complete_reads += 1;
                }
            }
        }
        dumper.finish();
        assert!(complete_reads > 0, "reader never saw a snapshot");
        // The dumper cleans up after itself: no temp files left behind.
        let dir = path.parent().unwrap();
        for entry in std::fs::read_dir(dir).unwrap() {
            let name = entry.unwrap().file_name();
            let name = name.to_string_lossy().into_owned();
            assert!(
                !name.starts_with(".mdump-hammer.json.tmp-"),
                "leftover temp file {name}"
            );
        }
    }

    #[test]
    fn serve_exposes_image_over_tcp_and_saves_on_exit() {
        use hart_server::client::Client;
        let img = tmp("serve.img");
        let img_s = img.to_str().unwrap();
        let addr_file = tmp("serve.addr");
        let _ = std::fs::remove_file(&addr_file);
        runv(&["create", img_s, "--size-mb", "16"]).unwrap();
        runv(&["put", img_s, "seeded", "before"]).unwrap();
        let server = {
            let args: Vec<String> = [
                "serve",
                img_s,
                "--serve-secs",
                "2",
                "--group-commit",
                "--addr-file",
                addr_file.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            std::thread::spawn(move || run(&args))
        };
        // Wait for the ephemeral address to appear.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&addr_file) {
                break s;
            }
            assert!(std::time::Instant::now() < deadline, "no addr file");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let mut c = Client::connect(addr.trim()).unwrap();
        assert_eq!(c.get(b"seeded").unwrap(), Some(b"before".to_vec()));
        c.put(b"via-tcp", b"hello").unwrap();
        assert_eq!(c.get(b"via-tcp").unwrap(), Some(b"hello".to_vec()));
        let out = server.join().unwrap().unwrap();
        assert!(out.contains("image saved"), "{out}");
        // The mutation survived into the saved image.
        assert_eq!(runv(&["get", img_s, "via-tcp"]).unwrap(), "hello");
    }

    #[test]
    fn dictionary_load_works() {
        let img = tmp("dict.img");
        let img_s = img.to_str().unwrap();
        runv(&["create", img_s, "--size-mb", "16"]).unwrap();
        let out = runv(&["load", img_s, "--workload", "dictionary", "--n", "200"]).unwrap();
        assert!(out.contains("loaded 200 dictionary"), "{out}");
    }
}
