//! Benchmark runner library: tree factories, timed phases, and result
//! formatting shared by the figure harness binary and the Criterion
//! benches.
//!
//! Every experiment builds each tree over its **own** fresh PM pool with
//! identical latency settings (`TimeMode::Inject`, so wall-clock numbers
//! already include the emulated PM penalties), then times one operation
//! phase at a time, exactly like §IV-B: insert everything, search
//! everything, update everything, delete everything.

pub use hart_art::simd::HAVE_VECTOR;
pub use hart_obs::{Histogram, Instrumented, ObsSnapshot, Observable};

use hart::{Hart, HartConfig};
use hart_artcow::ArtCow;
use hart_fptree::FpTree;
use hart_kv::{Key, PersistentIndex, Value};
use hart_pm::{LatencyConfig, PmemPool, PoolConfig, TimeMode};
use hart_woart::Woart;
use hart_workloads::{value_for, Workload};
use hart_wort::Wort;
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The four trees of the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeKind {
    Hart,
    Woart,
    ArtCow,
    FpTree,
    /// WORT — not part of the paper's figures; used by the `extras`
    /// comparison (DESIGN.md §6).
    Wort,
}

impl TreeKind {
    /// Paper order: HART, WOART, ART+CoW, FPTree.
    pub const ALL: [TreeKind; 4] = [
        TreeKind::Hart,
        TreeKind::Woart,
        TreeKind::ArtCow,
        TreeKind::FpTree,
    ];

    /// The paper's four plus WORT (the third FAST'17 radix tree).
    pub const EXTENDED: [TreeKind; 5] = [
        TreeKind::Hart,
        TreeKind::Wort,
        TreeKind::Woart,
        TreeKind::ArtCow,
        TreeKind::FpTree,
    ];

    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            TreeKind::Hart => "HART",
            TreeKind::Woart => "WOART",
            TreeKind::ArtCow => "ART+CoW",
            TreeKind::FpTree => "FPTree",
            TreeKind::Wort => "WORT",
        }
    }

    /// Build a fresh tree over its own pool.
    pub fn build(&self, cfg: PoolConfig) -> Box<dyn PersistentIndex> {
        self.build_with_pool(cfg).0
    }

    /// Build a fresh tree and keep a handle to its pool (event profiling).
    pub fn build_with_pool(&self, cfg: PoolConfig) -> (Box<dyn PersistentIndex>, Arc<PmemPool>) {
        let pool = Arc::new(PmemPool::new(cfg));
        let p = Arc::clone(&pool);
        let tree: Box<dyn PersistentIndex> = match self {
            TreeKind::Hart => {
                Box::new(Hart::create(pool, HartConfig::default()).expect("create HART"))
            }
            TreeKind::Woart => Box::new(Woart::create(pool).expect("create WOART")),
            TreeKind::ArtCow => Box::new(ArtCow::create(pool).expect("create ART+CoW")),
            TreeKind::FpTree => Box::new(FpTree::create(pool).expect("create FPTree")),
            TreeKind::Wort => Box::new(Wort::create(pool).expect("create WORT")),
        };
        (tree, p)
    }

    /// Build a fresh tree with an observability snapshot source. HART
    /// exports its full internal telemetry; the baselines are wrapped in
    /// [`Instrumented`], which times the `PersistentIndex` ops and leaves
    /// every other snapshot section zero.
    pub fn build_observed(&self, cfg: PoolConfig) -> (Box<dyn ObservedIndex>, Arc<PmemPool>) {
        let pool = Arc::new(PmemPool::new(cfg));
        let p = Arc::clone(&pool);
        let tree: Box<dyn ObservedIndex> = match self {
            TreeKind::Hart => {
                Box::new(Hart::create(pool, HartConfig::default()).expect("create HART"))
            }
            TreeKind::Woart => Box::new(Instrumented::new(Woart::create(pool).expect("WOART"))),
            TreeKind::ArtCow => Box::new(Instrumented::new(ArtCow::create(pool).expect("ART+CoW"))),
            TreeKind::FpTree => Box::new(Instrumented::new(FpTree::create(pool).expect("FPTree"))),
            TreeKind::Wort => Box::new(Instrumented::new(Wort::create(pool).expect("WORT"))),
        };
        (tree, p)
    }
}

/// A tree that both serves operations and exports an [`ObsSnapshot`].
pub trait ObservedIndex: PersistentIndex + Observable {}

impl<T: PersistentIndex + Observable> ObservedIndex for T {}

/// Pool sizing: generous per-record budget (leaves + values + internal
/// nodes + transient CoW copies) plus fixed slack.
pub fn pool_config(latency: LatencyConfig, records: usize) -> PoolConfig {
    PoolConfig {
        size_bytes: records
            .saturating_mul(384)
            .saturating_add(32 * 1024 * 1024)
            .min(12 * 1024 * 1024 * 1024),
        latency,
        time_mode: TimeMode::Inject,
        crash_sim: false,
        ..PoolConfig::default()
    }
}

/// Average-time-per-operation results of the four basic phases (Figs 4–7).
#[derive(Clone, Copy, Debug, Default)]
pub struct BasicResult {
    pub insert_us: f64,
    pub search_us: f64,
    pub update_us: f64,
    pub delete_us: f64,
    /// Total wall time of each phase (Fig. 8 reports totals).
    pub insert_total: Duration,
    pub search_total: Duration,
    pub update_total: Duration,
    pub delete_total: Duration,
}

fn avg_us(total: Duration, n: usize) -> f64 {
    total.as_secs_f64() * 1e6 / n.max(1) as f64
}

/// Run the four basic phases on a freshly built tree.
pub fn run_basic(kind: TreeKind, latency: LatencyConfig, keys: &[Key]) -> BasicResult {
    let tree = kind.build(pool_config(latency, keys.len()));
    let values: Vec<Value> = keys.iter().map(value_for).collect();
    let n = keys.len();

    let t0 = Instant::now();
    for (k, v) in keys.iter().zip(&values) {
        tree.insert(k, v).expect("insert");
    }
    let insert_total = t0.elapsed();

    let t0 = Instant::now();
    for k in keys {
        let got = tree.search(k).expect("search");
        debug_assert!(got.is_some());
    }
    let search_total = t0.elapsed();

    let t0 = Instant::now();
    for (k, v) in keys.iter().zip(&values) {
        let new = Value::from_u64(v.as_u64().wrapping_add(1));
        let ok = tree.update(k, &new).expect("update");
        debug_assert!(ok);
    }
    let update_total = t0.elapsed();

    let t0 = Instant::now();
    for k in keys {
        let ok = tree.remove(k).expect("delete");
        debug_assert!(ok);
    }
    let delete_total = t0.elapsed();

    BasicResult {
        insert_us: avg_us(insert_total, n),
        search_us: avg_us(search_total, n),
        update_us: avg_us(update_total, n),
        delete_us: avg_us(delete_total, n),
        insert_total,
        search_total,
        update_total,
        delete_total,
    }
}

/// Run one YCSB-style mix (Fig. 9): preload, then time the mixed ops.
pub fn run_mixed(
    kind: TreeKind,
    latency: LatencyConfig,
    workload: &hart_workloads::YcsbWorkload,
) -> f64 {
    use hart_workloads::OpKind;
    let tree = kind.build(pool_config(
        latency,
        workload.preload.len() + workload.ops.len(),
    ));
    for (k, v) in &workload.preload {
        tree.insert(k, v).expect("preload");
    }
    let end = max_key();
    let t0 = Instant::now();
    for op in &workload.ops {
        match op.kind {
            OpKind::Insert => tree.insert(&op.key, &op.value).expect("insert"),
            OpKind::Search => {
                let _ = tree.search(&op.key).expect("search");
            }
            OpKind::Update => {
                let _ = tree.update(&op.key, &op.value).expect("update");
            }
            OpKind::Delete => {
                let _ = tree.remove(&op.key).expect("delete");
            }
            OpKind::Scan => {
                // YCSB-E: open-ended range from the drawn start key, bounded
                // by the requested row count (scan_len), like the reference
                // workload's `scan(startkey, recordcount)`.
                let _ = tree
                    .scan(&op.key, &end, op.scan_len as usize)
                    .expect("scan");
            }
        }
    }
    avg_us(t0.elapsed(), workload.ops.len())
}

/// The greatest valid [`Key`] — the upper bound for open-ended scans.
fn max_key() -> Key {
    Key::new(&[0xFF; hart_kv::MAX_KEY_LEN]).expect("max key is valid")
}

/// One YCSB-E run (scan-heavy mix) with scan-shape telemetry: returns the
/// average µs per op plus the observed rows/scan mean and truncation count
/// from the tree's [`ObsSnapshot`] (the `scan` section added for this
/// experiment).
pub struct ScanMixResult {
    pub avg_us: f64,
    pub scans: u64,
    pub rows_mean: f64,
    pub truncated: u64,
}

/// Run a scan-heavy YCSB-E workload through the observed build of `kind`
/// (HART exports native telemetry, baselines via [`Instrumented`]).
pub fn run_scan_mix(
    kind: TreeKind,
    latency: LatencyConfig,
    workload: &hart_workloads::YcsbWorkload,
) -> ScanMixResult {
    use hart_workloads::OpKind;
    let (tree, _pool) = kind.build_observed(pool_config(
        latency,
        workload.preload.len() + workload.ops.len(),
    ));
    for (k, v) in &workload.preload {
        tree.insert(k, v).expect("preload");
    }
    let end = max_key();
    let t0 = Instant::now();
    for op in &workload.ops {
        match op.kind {
            OpKind::Insert => tree.insert(&op.key, &op.value).expect("insert"),
            OpKind::Search => {
                let _ = tree.search(&op.key).expect("search");
            }
            OpKind::Update => {
                let _ = tree.update(&op.key, &op.value).expect("update");
            }
            OpKind::Delete => {
                let _ = tree.remove(&op.key).expect("delete");
            }
            OpKind::Scan => {
                let _ = tree
                    .scan(&op.key, &end, op.scan_len as usize)
                    .expect("scan");
            }
        }
    }
    let avg = avg_us(t0.elapsed(), workload.ops.len());
    let snap = tree.obs_snapshot();
    ScanMixResult {
        avg_us: avg,
        scans: snap.ops.scan.count,
        rows_mean: snap.scan.rows_mean,
        truncated: snap.scan.truncated,
    }
}

/// SIMD-vs-scalar node-search ablation: time ordered scans over a
/// NODE16-heavy HART (keys drawn from a 16-symbol alphabet, so interior
/// nodes top out at 16 children and every descent step is a `find_key16` /
/// `next_edge48` call). Returns `(vector_secs, scalar_secs)` for the same
/// scan schedule, toggled via [`hart_art::simd::force_scalar`]. On targets
/// without a vector unit both runs take the scalar path and the ratio is
/// ~1.0 (`hart_art::simd::HAVE_VECTOR` tells the caller which case it is).
pub fn simd_scan_probe(latency: LatencyConfig, n_keys: usize, scans: usize) -> (f64, f64) {
    use rand::{Rng, SeedableRng};
    // 16-symbol alphabet, fixed width 8: dense NODE16 fanout at every level.
    const SYMS: &[u8; 16] = b"0123456789ABCDEF";
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed);
    let mut seen = std::collections::HashSet::new();
    let mut keys = Vec::with_capacity(n_keys);
    while keys.len() < n_keys {
        let mut buf = [0u8; 8];
        for b in &mut buf {
            *b = SYMS[rng.gen_range(0..16)];
        }
        if seen.insert(buf) {
            keys.push(Key::new(&buf).expect("hex keys are valid"));
        }
    }
    let pool = Arc::new(PmemPool::new(pool_config(latency, keys.len())));
    let tree = Hart::create(pool, HartConfig::default()).expect("create");
    for k in &keys {
        tree.insert(k, &value_for(k)).expect("preload");
    }
    let starts: Vec<Key> = (0..scans)
        .map(|_| keys[rng.gen_range(0..keys.len())])
        .collect();
    let end = max_key();
    let measure = |tree: &Hart| -> f64 {
        let t0 = Instant::now();
        for s in &starts {
            let rows = tree.ordered_scan(s, &end, 100).expect("scan");
            debug_assert!(!rows.is_empty());
        }
        t0.elapsed().as_secs_f64()
    };
    // Warm both paths once, then interleave best-of-3 so neither mode owns
    // the cache-warming advantage.
    hart_art::simd::force_scalar(false);
    measure(&tree);
    hart_art::simd::force_scalar(true);
    measure(&tree);
    let (mut vec_s, mut scal_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        hart_art::simd::force_scalar(false);
        vec_s = vec_s.min(measure(&tree));
        hart_art::simd::force_scalar(true);
        scal_s = scal_s.min(measure(&tree));
    }
    hart_art::simd::force_scalar(false);
    (vec_s, scal_s)
}

/// Per-kernel timings from [`simd_kernel_probe`], nanoseconds per call,
/// vector vs forced-scalar. On targets without a vector unit the two
/// columns time the same code and the ratio is ~1.0.
pub struct SimdKernelResult {
    pub n16_vec_ns: f64,
    pub n16_scal_ns: f64,
    pub n48_vec_ns: f64,
    pub n48_scal_ns: f64,
}

/// Kernel-granularity SIMD ablation. Whole-scan timing buries the node
/// search under record loads (~µs of PM reads per row vs ~ns of byte
/// search per step), so this times the two vectorized kernels directly,
/// through the same runtime dispatch the trees use:
///
/// * `find_key16` over a full NODE16, alternating hit and miss bytes —
///   the per-level step of every point lookup and scan seek;
/// * `next_edge48` over a sparse, just-promoted NODE48 (17 children
///   spread across the byte space, the shape where the scalar linear
///   probe walks its longest gaps) — the per-row step of ordered
///   iteration through NODE48 interior nodes.
pub fn simd_kernel_probe(iters: usize) -> SimdKernelResult {
    use std::hint::black_box;
    let keys: [u8; 16] = std::array::from_fn(|i| (i * 16 + 3) as u8);
    let mut index = [0xFFu8; 256];
    for i in 0..17 {
        index[i * 15 + 1] = i as u8; // slots 1, 16, 31, … 241: gap 15
    }
    let time = |f: &mut dyn FnMut() -> usize| -> f64 {
        let t0 = Instant::now();
        let sum = f();
        let secs = t0.elapsed().as_secs_f64();
        black_box(sum);
        secs * 1e9 / iters as f64
    };
    let n16 = |scalar: bool| {
        hart_art::simd::force_scalar(scalar);
        time(&mut || {
            let mut sum = 0usize;
            for i in 0..iters {
                // Even i: a present key (hit); odd i: byte 0 (miss).
                let b = if i % 2 == 0 { keys[(i / 2) % 16] } else { 0 };
                sum += hart_art::simd::find_key16(black_box(&keys), 16, b).unwrap_or(17);
            }
            sum
        })
    };
    // Warm, then measure; interleave so neither mode owns cache warming.
    n16(false);
    n16(true);
    let (n16_vec_ns, n16_scal_ns) = (n16(false), n16(true));
    let n48 = |scalar: bool| {
        hart_art::simd::force_scalar(scalar);
        time(&mut || {
            let mut sum = 0usize;
            let mut from = 0usize;
            for _ in 0..iters {
                match hart_art::simd::next_edge48(black_box(&index), from) {
                    Some(b) => {
                        sum += b as usize;
                        from = b as usize + 1;
                    }
                    None => from = 0,
                }
            }
            sum
        })
    };
    n48(false);
    n48(true);
    let (n48_vec_ns, n48_scal_ns) = (n48(false), n48(true));
    hart_art::simd::force_scalar(false);
    SimdKernelResult {
        n16_vec_ns,
        n16_scal_ns,
        n48_vec_ns,
        n48_scal_ns,
    }
}

/// Range-query experiment (Fig. 10a): the tree is loaded with `keys`
/// (Sequential), then `queried` keys are looked up — per-key search for
/// the ART-based trees, a linked-leaf scan for FPTree, exactly as §IV-D
/// describes. Returns avg µs per queried record.
pub fn run_range_query(
    kind: TreeKind,
    latency: LatencyConfig,
    keys: &[Key],
    query_n: usize,
) -> f64 {
    let tree = kind.build(pool_config(latency, keys.len()));
    for k in keys {
        tree.insert(k, &value_for(k)).expect("insert");
    }
    let query_n = query_n.min(keys.len());
    let t0 = Instant::now();
    match kind {
        TreeKind::FpTree => {
            // Sorted linked leaves: one scan.
            let got = tree.range(&keys[0], &keys[query_n - 1]).expect("range");
            assert_eq!(got.len(), query_n);
        }
        _ => {
            // "Simply implemented by calling a search function for each key."
            let got = tree.multi_get(&keys[..query_n]).expect("multi_get");
            debug_assert!(got.iter().all(|o| o.is_some()));
        }
    }
    avg_us(t0.elapsed(), query_n)
}

/// Build-vs-recovery times (Fig. 10c) for HART.
pub fn hart_build_recover(latency: LatencyConfig, keys: &[Key]) -> (Duration, Duration) {
    let pool = Arc::new(PmemPool::new(pool_config(latency, keys.len())));
    let t0 = Instant::now();
    let tree = Hart::create(Arc::clone(&pool), HartConfig::default()).expect("create");
    for k in keys {
        tree.insert(k, &value_for(k)).expect("insert");
    }
    let build = t0.elapsed();
    drop(tree);
    let t0 = Instant::now();
    let rec = Hart::recover(pool, HartConfig::default()).expect("recover");
    let recover = t0.elapsed();
    assert_eq!(rec.len(), keys.len());
    (build, recover)
}

/// Build-vs-recovery times (Fig. 10c) for FPTree.
pub fn fptree_build_recover(latency: LatencyConfig, keys: &[Key]) -> (Duration, Duration) {
    let pool = Arc::new(PmemPool::new(pool_config(latency, keys.len())));
    let t0 = Instant::now();
    let tree = FpTree::create(Arc::clone(&pool)).expect("create");
    for k in keys {
        tree.insert(k, &value_for(k)).expect("insert");
    }
    let build = t0.elapsed();
    drop(tree);
    let t0 = Instant::now();
    let rec = FpTree::recover(pool).expect("recover");
    let recover = t0.elapsed();
    assert_eq!(rec.len(), keys.len());
    (build, recover)
}

/// HART multithreaded throughput in MIOPS (Fig. 10d). `op` is one of
/// "insert", "search", "update", "delete", "scan" (parsed through
/// [`hart_workloads::OpKind::parse`], so a typo is a hard error, not a
/// silently skipped phase). Keys are partitioned across `threads`; for
/// the non-insert ops the tree is pre-populated.
pub fn hart_scalability(latency: LatencyConfig, keys: &[Key], threads: usize, op: &str) -> f64 {
    hart_scalability_cfg(latency, keys, threads, op, HartConfig::default())
}

/// [`hart_scalability`] with an explicit `HartConfig` — used by the
/// read-path ablation to compare `HartConfig::default()` (optimistic
/// lock-free reads) against `HartConfig::with_locked_reads()`.
pub fn hart_scalability_cfg(
    latency: LatencyConfig,
    keys: &[Key],
    threads: usize,
    op: &str,
    cfg: HartConfig,
) -> f64 {
    use hart_workloads::OpKind;
    // Fail fast on op-code typos *before* building pools or spawning
    // threads — an unknown op used to die mid-run inside a worker thread.
    let op = OpKind::parse(op).unwrap_or_else(|e| panic!("{e}"));
    let pool = Arc::new(PmemPool::new(pool_config(latency, keys.len())));
    let tree = Arc::new(Hart::create(pool, cfg).expect("create"));
    if op != OpKind::Insert {
        for k in keys {
            tree.insert(k, &value_for(k)).expect("preload");
        }
    }
    let end = max_key();
    let chunk = keys.len().div_ceil(threads);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for part in keys.chunks(chunk) {
            let tree = Arc::clone(&tree);
            let end = &end;
            s.spawn(move || {
                for k in part {
                    match op {
                        OpKind::Insert => tree.insert(k, &value_for(k)).expect("insert"),
                        OpKind::Search => {
                            let got = tree.search(k).expect("search");
                            debug_assert!(got.is_some());
                        }
                        OpKind::Update => {
                            let _ = tree.update(k, &Value::from_u64(1)).expect("update");
                        }
                        OpKind::Delete => {
                            let _ = tree.remove(k).expect("delete");
                        }
                        OpKind::Scan => {
                            let rows = tree
                                .ordered_scan(k, end, hart_workloads::SCAN_LEN_MAX as usize)
                                .expect("scan");
                            debug_assert!(!rows.is_empty());
                        }
                    }
                }
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    keys.len() as f64 / secs / 1e6
}

/// Per-phase PM event counts: the drivers of every figure, per operation.
#[derive(Clone, Copy, Debug, Default)]
pub struct OpProfile {
    /// `persistent()` calls per operation.
    pub persists: f64,
    /// PM cache lines read per operation.
    pub pm_reads: f64,
    /// Of those, simulated-cache misses per operation.
    pub pm_misses: f64,
    /// Raw allocator calls (alloc + free) per operation.
    pub allocs: f64,
    /// Modeled extra latency per operation (µs) under the pool's config.
    pub modeled_extra_us: f64,
}

/// Event profile of the four basic phases (harness `profile` command).
pub struct BasicProfile {
    pub insert: OpProfile,
    pub search: OpProfile,
    pub update: OpProfile,
    pub delete: OpProfile,
}

/// Count PM events per op for each phase. Uses `TimeMode::Model` so no
/// latency is injected — this is pure event accounting, and it explains
/// *why* the timed figures look the way they do.
pub fn run_profile(kind: TreeKind, latency: LatencyConfig, keys: &[Key]) -> BasicProfile {
    let cfg = PoolConfig {
        time_mode: TimeMode::Model,
        ..pool_config(latency, keys.len())
    };
    let (tree, pool) = kind.build_with_pool(cfg);
    let values: Vec<Value> = keys.iter().map(value_for).collect();
    let n = keys.len() as f64;
    let stats = pool.stats();

    let snap0 = stats.snapshot();
    for (k, v) in keys.iter().zip(&values) {
        tree.insert(k, v).expect("insert");
    }
    let snap1 = stats.snapshot();
    for k in keys {
        let _ = tree.search(k).expect("search");
    }
    let snap2 = stats.snapshot();
    for (k, v) in keys.iter().zip(&values) {
        tree.update(k, &Value::from_u64(v.as_u64() ^ 1))
            .expect("update");
    }
    let snap3 = stats.snapshot();
    for k in keys {
        tree.remove(k).expect("delete");
    }
    let snap4 = stats.snapshot();

    let diff = |a: hart_pm::PmStatsSnapshot, b: hart_pm::PmStatsSnapshot| OpProfile {
        persists: (b.persist_calls - a.persist_calls) as f64 / n,
        pm_reads: (b.read_lines - a.read_lines) as f64 / n,
        pm_misses: (b.read_misses - a.read_misses) as f64 / n,
        allocs: ((b.raw_allocs - a.raw_allocs) + (b.raw_frees - a.raw_frees)) as f64 / n,
        modeled_extra_us: (b.extra_ns() - a.extra_ns()) as f64 / n / 1e3,
    };
    BasicProfile {
        insert: diff(snap0, snap1),
        search: diff(snap1, snap2),
        update: diff(snap2, snap3),
        delete: diff(snap3, snap4),
    }
}

/// Per-operation latency histograms of the four basic phases — the
/// tail-latency extension (harness `tail` command). More expensive than
/// [`run_basic`] (one `Instant` pair per op).
pub struct BasicHistograms {
    pub insert: Histogram,
    pub search: Histogram,
    pub update: Histogram,
    pub delete: Histogram,
    /// Cumulative [`ObsSnapshot`] taken after each phase, in phase order
    /// (`insert`, `search`, `update`, `delete`). Full telemetry for HART,
    /// op-latency-only for the wrapped baselines.
    pub snapshots: Vec<(&'static str, ObsSnapshot)>,
}

/// Like [`run_basic`] but recording every single operation's latency and
/// an observability snapshot at each phase boundary.
pub fn run_basic_histograms(
    kind: TreeKind,
    latency: LatencyConfig,
    keys: &[Key],
) -> BasicHistograms {
    let (tree, _pool) = kind.build_observed(pool_config(latency, keys.len()));
    let values: Vec<Value> = keys.iter().map(value_for).collect();
    let mut out = BasicHistograms {
        insert: Histogram::new(),
        search: Histogram::new(),
        update: Histogram::new(),
        delete: Histogram::new(),
        snapshots: Vec::new(),
    };
    for (k, v) in keys.iter().zip(&values) {
        let t0 = Instant::now();
        tree.insert(k, v).expect("insert");
        out.insert.record(t0.elapsed());
    }
    out.snapshots.push(("insert", tree.obs_snapshot()));
    for k in keys {
        let t0 = Instant::now();
        let got = tree.search(k).expect("search");
        out.search.record(t0.elapsed());
        debug_assert!(got.is_some());
    }
    out.snapshots.push(("search", tree.obs_snapshot()));
    for (k, v) in keys.iter().zip(&values) {
        let new = Value::from_u64(v.as_u64().wrapping_add(1));
        let t0 = Instant::now();
        let ok = tree.update(k, &new).expect("update");
        out.update.record(t0.elapsed());
        debug_assert!(ok);
    }
    out.snapshots.push(("update", tree.obs_snapshot()));
    for k in keys {
        let t0 = Instant::now();
        let ok = tree.remove(k).expect("delete");
        out.delete.record(t0.elapsed());
        debug_assert!(ok);
    }
    out.snapshots.push(("delete", tree.obs_snapshot()));
    out
}

/// Single-thread wall time of the read path with observability enabled
/// vs disabled — the < 3 % overhead-budget ablation behind the harness
/// `obsoverhead` command (DESIGN.md §Observability). Runs `trials`
/// independent tree pairs and returns the `(enabled_secs, disabled_secs)`
/// pair with the median ratio, for `keys.len()` searches.
pub fn obs_overhead_probe(latency: LatencyConfig, keys: &[Key], trials: usize) -> (f64, f64) {
    let build = |cfg: HartConfig| {
        let pool = Arc::new(PmemPool::new(pool_config(latency, keys.len())));
        let tree = Hart::create(pool, cfg).expect("create");
        for k in keys {
            tree.insert(k, &value_for(k)).expect("preload");
        }
        tree
    };
    let measure = |tree: &Hart| -> f64 {
        let t0 = Instant::now();
        for k in keys {
            let got = tree.search(k).expect("search");
            debug_assert!(got.is_some());
        }
        t0.elapsed().as_secs_f64()
    };
    // A single tree pair is not a fair comparison: where each pool lands
    // in the address space (TLB/cache aliasing, hugepage boundaries) can
    // bias one tree by ±20 % for the whole process lifetime, swamping the
    // few-percent effect under test. So: `trials` independent pairs with
    // alternating build order, each measured best-of-3 interleaved after
    // an unmeasured warm pass, and the pair with the *median* ratio wins —
    // discarding the layout-lottery outliers on both sides.
    let mut pairs = Vec::new();
    for round in 0..trials.max(1) {
        let (on_tree, off_tree) = if round % 2 == 0 {
            let on = build(HartConfig::default());
            (on, build(HartConfig::without_observability()))
        } else {
            let off = build(HartConfig::without_observability());
            (build(HartConfig::default()), off)
        };
        measure(&on_tree);
        measure(&off_tree);
        let (mut on, mut off) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..3 {
            on = on.min(measure(&on_tree));
            off = off.min(measure(&off_tree));
        }
        pairs.push((on, off));
    }
    pairs.sort_by(|a, b| (a.0 / a.1).total_cmp(&(b.0 / b.1)));
    pairs[pairs.len() / 2]
}

// ------------------------------------------------------------- reporting

/// A simple fixed-width table printer + CSV writer.
pub struct Report {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    pub fn new(title: &str, header: &[&str]) -> Report {
        Report {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Print as an aligned table to stdout.
    pub fn print(&self) {
        println!("\n=== {} ===", self.title);
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:<width$}  ", c, width = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.header);
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            line(row);
        }
    }

    /// Write as CSV under `dir`.
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(name))?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Shared key-set cache so the harness generates each workload once.
pub fn workload_keys(w: Workload, n: usize, seed: u64) -> Vec<Key> {
    w.keys(n, seed)
}

// ---------------------------------------------------------------------------
// Server front-end benchmark (the group-commit ablation).
// ---------------------------------------------------------------------------

/// Knobs for one [`run_server_mix`] measurement.
#[derive(Clone, Copy, Debug)]
pub struct ServerMixSpec {
    /// Group-commit batching on (`Some(max_ops)`) or the per-op-persist
    /// kill-switch (`None`).
    pub group_max_ops: Option<usize>,
    /// Batch window when group commit is on.
    pub window_us: u64,
    /// Concurrent client connections, each on its own thread.
    pub conns: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Operations issued per connection.
    pub ops_per_conn: usize,
    /// Percentage of GETs in the mix (0 = pure writes, 50 = YCSB-A-ish).
    pub read_pct: u32,
    /// PM latency model (injected — wall-clock numbers include it).
    pub latency: LatencyConfig,
    /// Pipelining window per connection (outstanding requests).
    pub pipeline: usize,
}

/// What one server-mode run measured.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerMixResult {
    pub ops: u64,
    pub secs: f64,
    pub kops: f64,
    /// Amortized group flushes (0 on the per-op path).
    pub flushes: u64,
    /// Persist fences recorded instead of paid (0 on the per-op path).
    pub persists_deferred: u64,
    /// Mean ops per flush batch.
    pub occupancy_mean: f64,
    /// Admission-control rejections observed by clients.
    pub busy: u64,
}

/// Drive a fresh server over real sockets with `conns` pipelining client
/// threads and return wall-clock throughput plus the group-commit
/// counters. Each connection works a private key range, so writes never
/// contend on the same key while GETs always hit that connection's own
/// previously written keys.
pub fn run_server_mix(spec: ServerMixSpec) -> ServerMixResult {
    use hart_server::client::Client;
    use hart_server::proto::{Request, ST_BUSY};

    let records = spec.conns * spec.ops_per_conn;
    let pool = Arc::new(PmemPool::new(pool_config(
        spec.latency,
        records.max(10_000),
    )));
    let hcfg = HartConfig {
        group_commit: spec.group_max_ops.is_some(),
        ..Default::default()
    };
    let tree = Arc::new(Hart::create(pool, hcfg).expect("server bench tree"));
    let cfg = hart_server::ServerConfig {
        workers: spec.workers,
        max_inflight: (spec.conns * spec.pipeline * 2).max(64),
        group_commit: spec.group_max_ops.is_some(),
        group: hart_pm::GroupConfig {
            max_ops: spec.group_max_ops.unwrap_or(64),
            window: Duration::from_micros(spec.window_us),
        },
        ..hart_server::ServerConfig::default()
    };
    let handle = hart_server::start(Arc::clone(&tree), cfg).expect("server start");
    let addr = handle.local_addr();

    let busy = std::sync::atomic::AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..spec.conns {
            let busy = &busy;
            s.spawn(move || {
                let mut cl = Client::connect(addr).expect("connect");
                // Cheap per-connection LCG deciding read vs write per op.
                let mut rng: u64 = 0x9E37_79B9_7F4A_7C15 ^ (c as u64) << 17;
                let mut written = 0usize;
                let mut outstanding = 0usize;
                let drain = |cl: &mut Client, outstanding: &mut usize| {
                    let r = cl.recv().expect("recv");
                    if r.status == ST_BUSY {
                        busy.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    *outstanding -= 1;
                };
                for i in 0..spec.ops_per_conn {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let read = written > 0 && (rng >> 33) % 100 < spec.read_pct as u64;
                    let req = if read {
                        let j = (rng >> 13) as usize % written;
                        Request::Get { key: mix_key(c, j) }
                    } else {
                        let key = mix_key(c, written);
                        written += 1;
                        Request::Put {
                            key,
                            value: (i as u64).to_le_bytes().to_vec(),
                        }
                    };
                    if outstanding >= spec.pipeline {
                        drain(&mut cl, &mut outstanding);
                    }
                    cl.send(&req).expect("send");
                    outstanding += 1;
                }
                while outstanding > 0 {
                    drain(&mut cl, &mut outstanding);
                }
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();

    let snap = handle.obs_snapshot();
    handle.shutdown();
    let ops = (spec.conns * spec.ops_per_conn) as u64;
    ServerMixResult {
        ops,
        secs,
        kops: ops as f64 / secs / 1e3,
        flushes: snap.group.flushes,
        persists_deferred: snap.group.persists_deferred,
        occupancy_mean: snap.group.occupancy_mean,
        busy: busy.load(std::sync::atomic::Ordering::Relaxed),
    }
}

fn mix_key(conn: usize, i: usize) -> Vec<u8> {
    format!("c{conn:03}x{i:07}").into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_trees_run_small_basic() {
        let keys = hart_workloads::random(2000, 3);
        for kind in TreeKind::ALL {
            let r = run_basic(kind, LatencyConfig::dram(), &keys);
            assert!(r.insert_us > 0.0, "{}", kind.label());
            assert!(r.search_us > 0.0);
            assert!(r.update_us > 0.0);
            assert!(r.delete_us > 0.0);
        }
    }

    #[test]
    fn mixed_runs_on_all_trees() {
        let w = hart_workloads::YcsbWorkload::generate(
            hart_workloads::MixSpec::read_intensive(),
            500,
            1000,
            9,
        );
        for kind in TreeKind::ALL {
            let us = run_mixed(kind, LatencyConfig::dram(), &w);
            assert!(us > 0.0);
        }
    }

    #[test]
    fn scan_mix_runs_on_all_trees() {
        let w =
            hart_workloads::YcsbWorkload::generate(hart_workloads::MixSpec::ycsb_e(), 400, 800, 21);
        for kind in TreeKind::ALL {
            let r = run_scan_mix(kind, LatencyConfig::dram(), &w);
            assert!(r.avg_us > 0.0, "{}", kind.label());
            assert!(r.scans > 0, "{}", kind.label());
            assert!(r.rows_mean > 0.0, "{}", kind.label());
        }
    }

    #[test]
    fn simd_probe_measures_both_modes() {
        let (v, s) = simd_scan_probe(LatencyConfig::dram(), 2000, 32);
        assert!(v > 0.0 && s > 0.0);
    }

    #[test]
    fn simd_kernel_probe_measures_both_kernels() {
        let k = simd_kernel_probe(10_000);
        assert!(k.n16_vec_ns > 0.0 && k.n16_scal_ns > 0.0);
        assert!(k.n48_vec_ns > 0.0 && k.n48_scal_ns > 0.0);
    }

    #[test]
    fn scalability_scan_op_runs() {
        let keys = hart_workloads::random(2000, 19);
        let miops = hart_scalability(LatencyConfig::dram(), &keys, 2, "scan");
        assert!(miops > 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown op-code")]
    fn scalability_rejects_unknown_op() {
        let keys = hart_workloads::random(10, 1);
        hart_scalability(LatencyConfig::dram(), &keys, 1, "scna");
    }

    #[test]
    fn range_query_runs() {
        let keys = hart_workloads::sequential(2000);
        for kind in TreeKind::ALL {
            let us = run_range_query(kind, LatencyConfig::dram(), &keys, 1000);
            assert!(us > 0.0, "{}", kind.label());
        }
    }

    #[test]
    fn recovery_helpers_roundtrip() {
        let keys = hart_workloads::random(2000, 5);
        let (b, r) = hart_build_recover(LatencyConfig::dram(), &keys);
        assert!(b > Duration::ZERO && r > Duration::ZERO);
        let (b, r) = fptree_build_recover(LatencyConfig::dram(), &keys);
        assert!(b > Duration::ZERO && r > Duration::ZERO);
    }

    #[test]
    fn scalability_runs_two_threads() {
        let keys = hart_workloads::random(4000, 11);
        let miops = hart_scalability(LatencyConfig::c300_100(), &keys, 2, "insert");
        assert!(miops > 0.0);
        let miops = hart_scalability(LatencyConfig::c300_100(), &keys, 2, "search");
        assert!(miops > 0.0);
    }

    #[test]
    fn read_ablation_runs_both_paths() {
        let keys = hart_workloads::random(4000, 13);
        for cfg in [HartConfig::default(), HartConfig::with_locked_reads()] {
            let miops = hart_scalability_cfg(LatencyConfig::c300_100(), &keys, 2, "search", cfg);
            assert!(miops > 0.0, "optimistic_reads={}", cfg.optimistic_reads);
        }
    }

    #[test]
    fn histograms_capture_phase_snapshots() {
        let keys = hart_workloads::random(1500, 7);
        let h = run_basic_histograms(TreeKind::Hart, LatencyConfig::dram(), &keys);
        assert_eq!(h.snapshots.len(), 4);
        let (name, s) = &h.snapshots[0];
        assert_eq!(*name, "insert");
        assert!(s.enabled);
        assert_eq!(s.ops.insert.count, 1500);
        assert!(s.alloc.allocs >= 3000, "leaf + value per insert");
        assert_eq!(h.snapshots[3].1.ops.remove.count, 1500);
        // Baselines are wrapped: op latency only, other sections zero.
        let h = run_basic_histograms(TreeKind::FpTree, LatencyConfig::dram(), &keys);
        let s = &h.snapshots[3].1;
        assert!(s.enabled);
        assert_eq!(s.ops.search.count, 1500);
        assert_eq!(s.alloc.allocs, 0);
    }

    #[test]
    fn overhead_probe_measures_both_configs() {
        let keys = hart_workloads::random(2000, 17);
        let (on, off) = obs_overhead_probe(LatencyConfig::dram(), &keys, 1);
        assert!(on > 0.0 && off > 0.0);
    }

    #[test]
    fn report_formats() {
        let mut r = Report::new("t", &["a", "b"]);
        r.row(vec!["1".into(), "2".into()]);
        r.print();
        let dir = std::env::temp_dir().join("hart-bench-test");
        r.write_csv(&dir, "t.csv").unwrap();
        let s = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(s, "a,b\n1,2\n");
    }
}
