//! Power-of-two latency histograms for tail-latency reporting — an
//! extension beyond the paper, which reports only averages. PM indexes
//! have strongly bimodal operation costs (a search that stays in cache vs
//! one that misses; an insert that fits a chunk vs one that allocates), so
//! percentiles tell a sharper story than means.

use std::fmt;
use std::time::Duration;

const BUCKETS: usize = 64;

/// A fixed-size log₂ histogram of nanosecond latencies.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` ns; recording is branch-light and
/// allocation-free, so per-op instrumentation stays cheap.
#[derive(Clone)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, d: Duration) {
        let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Approximate `p`-quantile (0 < p ≤ 1) in nanoseconds: the upper edge
    /// of the bucket containing the quantile (conservative).
    pub fn quantile_ns(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bucket edge, capped by the observed max.
                return (1u64 << (i + 1).min(63)).min(self.max_ns.max(1));
            }
        }
        self.max_ns
    }

    /// Largest observed sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// One summary line: mean / p50 / p90 / p99 / p99.9 / max in µs.
    pub fn summary(&self) -> String {
        format!(
            "mean {:>8.2}µs  p50 {:>8.2}µs  p90 {:>8.2}µs  p99 {:>8.2}µs  p99.9 {:>8.2}µs  max {:>8.2}µs",
            self.mean_ns() / 1e3,
            self.quantile_ns(0.50) as f64 / 1e3,
            self.quantile_ns(0.90) as f64 / 1e3,
            self.quantile_ns(0.99) as f64 / 1e3,
            self.quantile_ns(0.999) as f64 / 1e3,
            self.max_ns as f64 / 1e3,
        )
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Histogram({} samples, {})", self.total, self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_quantiles() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(Duration::from_nanos(1_000)); // bucket ~2^10
        }
        for _ in 0..10 {
            h.record(Duration::from_nanos(1_000_000)); // bucket ~2^20
        }
        assert_eq!(h.count(), 100);
        assert!(h.mean_ns() > 1_000.0 && h.mean_ns() < 200_000.0);
        assert!(h.quantile_ns(0.5) < 10_000, "p50 in the fast mode");
        assert!(h.quantile_ns(0.99) >= 1_000_000 / 2, "p99 in the slow mode");
        assert_eq!(h.max_ns(), 1_000_000);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Duration::from_nanos(100));
        b.record(Duration::from_nanos(200_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ns(), 200_000);
    }

    #[test]
    fn empty_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert!(h.summary().contains("p99"));
    }

    #[test]
    fn zero_duration_goes_to_first_bucket() {
        let mut h = Histogram::new();
        h.record(Duration::from_nanos(0));
        assert_eq!(h.count(), 1);
        let _ = h.quantile_ns(1.0);
    }
}
