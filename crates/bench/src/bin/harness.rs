//! Figure harness: regenerates the data behind every table and figure of
//! the paper's evaluation (§IV).
//!
//! ```text
//! cargo run --release -p bench --bin harness -- all
//! cargo run --release -p bench --bin harness -- fig4 --records 1000000
//! cargo run --release -p bench --bin harness -- fig10d --records 500000
//! ```
//!
//! Output: aligned tables on stdout plus CSV files under `bench-results/`
//! (override with `--out DIR`). Defaults are scaled down from the paper's
//! record counts (see DESIGN.md §2); pass `--records` to raise them.

use bench::*;
use hart_pm::LatencyConfig;
use hart_workloads::{MixSpec, Workload, YcsbWorkload};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    cmd: String,
    records: usize,
    dict_records: usize,
    query_n: usize,
    out: PathBuf,
    threads: Vec<usize>,
    scale: Vec<usize>,
    seed: u64,
    /// `obsoverhead` fails when the observability layer costs more than
    /// this percentage on the read path (CI smoke gate).
    max_overhead_pct: f64,
    /// `server`: concurrent client connections.
    conns: usize,
    /// `server`: group-commit batch sizes to ablate against per-op persist.
    batches: Vec<usize>,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut a = Args {
        cmd: String::new(),
        records: 200_000,
        dict_records: hart_workloads::dictionary::DICTIONARY_SIZE,
        query_n: 100_000,
        out: PathBuf::from("bench-results"),
        threads: vec![1, 2, 4, 8, 16],
        scale: Vec::new(),
        seed: 42,
        max_overhead_pct: 5.0,
        conns: 64,
        batches: vec![64, 256],
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--records" => a.records = args.next().expect("--records N").parse().expect("number"),
            "--dict-records" => {
                a.dict_records = args
                    .next()
                    .expect("--dict-records N")
                    .parse()
                    .expect("number")
            }
            "--query-n" => a.query_n = args.next().expect("--query-n N").parse().expect("number"),
            "--out" => a.out = PathBuf::from(args.next().expect("--out DIR")),
            "--seed" => a.seed = args.next().expect("--seed N").parse().expect("number"),
            "--max-overhead-pct" => {
                a.max_overhead_pct = args
                    .next()
                    .expect("--max-overhead-pct P")
                    .parse()
                    .expect("number")
            }
            "--threads" => {
                a.threads = args
                    .next()
                    .expect("--threads 1,2,4")
                    .split(',')
                    .map(|s| s.parse().expect("number"))
                    .collect()
            }
            "--scale" => {
                a.scale = args
                    .next()
                    .expect("--scale n1,n2,...")
                    .split(',')
                    .map(|s| s.parse().expect("number"))
                    .collect()
            }
            "--conns" => a.conns = args.next().expect("--conns N").parse().expect("number"),
            "--batches" => {
                a.batches = args
                    .next()
                    .expect("--batches n1,n2,...")
                    .split(',')
                    .map(|s| s.parse().expect("number"))
                    .collect()
            }
            "--quick" => {
                a.records = 50_000;
                a.dict_records = 50_000;
                a.query_n = 20_000;
            }
            cmd if !cmd.starts_with("--") => a.cmd = cmd.to_string(),
            other => panic!("unknown flag {other}"),
        }
    }
    if a.scale.is_empty() {
        a.scale = vec![a.records / 10, a.records / 2, a.records, a.records * 2];
    }
    if a.cmd.is_empty() {
        a.cmd = "all".into();
    }
    a
}

/// One grid cell: (workload, latency) → per-tree basic results.
type Grid = BTreeMap<(String, String), Vec<(TreeKind, BasicResult)>>;

/// Run the Fig. 4–7 grid: 3 workloads × 3 latency configs × 4 trees.
fn run_grid(a: &Args) -> Grid {
    let mut grid = Grid::new();
    for w in Workload::ALL {
        let n = if w == Workload::Dictionary {
            a.dict_records
        } else {
            a.records
        };
        let keys = workload_keys(w, n, a.seed);
        eprintln!("[grid] {} keys for {}", keys.len(), w.label());
        for lat in LatencyConfig::paper_configs() {
            let mut cell = Vec::new();
            for kind in TreeKind::ALL {
                let t0 = Instant::now();
                let r = run_basic(kind, lat, &keys);
                eprintln!(
                    "[grid] {} / {} / {}: done in {:.1}s",
                    w.label(),
                    lat.label(),
                    kind.label(),
                    t0.elapsed().as_secs_f64()
                );
                cell.push((kind, r));
            }
            grid.insert((w.label().to_string(), lat.label()), cell);
        }
    }
    grid
}

fn emit_op_figure(a: &Args, grid: &Grid, fig: &str, op_name: &str, pick: fn(&BasicResult) -> f64) {
    let mut rep = Report::new(
        &format!("{fig}: {op_name} — avg time/record (µs)"),
        &["workload", "latency", "HART", "WOART", "ART+CoW", "FPTree"],
    );
    for w in Workload::ALL {
        for lat in LatencyConfig::paper_configs() {
            let cell = &grid[&(w.label().to_string(), lat.label())];
            let mut row = vec![w.label().to_string(), lat.label()];
            for (_, r) in cell {
                row.push(format!("{:.3}", pick(r)));
            }
            rep.row(row);
        }
    }
    rep.print();
    rep.write_csv(&a.out, &format!("{fig}.csv"))
        .expect("write csv");
}

fn fig8(a: &Args) {
    let mut rep = Report::new(
        "fig8: record-count scaling, Random @ 300/100 — total seconds",
        &["records", "op", "HART", "WOART", "ART+CoW", "FPTree"],
    );
    for &n in &a.scale {
        let keys = hart_workloads::random(n, a.seed);
        let results: Vec<BasicResult> = TreeKind::ALL
            .iter()
            .map(|kind| {
                let t0 = Instant::now();
                let r = run_basic(*kind, LatencyConfig::c300_100(), &keys);
                eprintln!(
                    "[fig8] n={n} {}: {:.1}s",
                    kind.label(),
                    t0.elapsed().as_secs_f64()
                );
                r
            })
            .collect();
        for (op, pick) in [
            (
                "insert",
                (|r: &BasicResult| r.insert_total.as_secs_f64()) as fn(&BasicResult) -> f64,
            ),
            ("search", |r| r.search_total.as_secs_f64()),
            ("update", |r| r.update_total.as_secs_f64()),
            ("delete", |r| r.delete_total.as_secs_f64()),
        ] {
            let mut row = vec![n.to_string(), op.to_string()];
            for r in &results {
                row.push(format!("{:.3}", pick(r)));
            }
            rep.row(row);
        }
    }
    rep.print();
    rep.write_csv(&a.out, "fig8.csv").expect("write csv");
}

fn fig9(a: &Args) {
    let mut rep = Report::new(
        "fig9: YCSB-style mixed workloads — avg time/op (µs)",
        &["mix", "latency", "HART", "WOART", "ART+CoW", "FPTree"],
    );
    for spec in MixSpec::ALL {
        let w = YcsbWorkload::generate(spec, a.records, a.records, a.seed);
        for lat in LatencyConfig::paper_configs() {
            let mut row = vec![spec.label.to_string(), lat.label()];
            for kind in TreeKind::ALL {
                let t0 = Instant::now();
                let us = run_mixed(kind, lat, &w);
                eprintln!(
                    "[fig9] {} / {} / {}: {:.1}s",
                    spec.label,
                    lat.label(),
                    kind.label(),
                    t0.elapsed().as_secs_f64()
                );
                row.push(format!("{us:.3}"));
            }
            rep.row(row);
        }
    }
    rep.print();
    rep.write_csv(&a.out, "fig9.csv").expect("write csv");
}

fn fig10a(a: &Args) {
    let keys = hart_workloads::sequential(a.records.max(a.query_n));
    let mut rep = Report::new(
        "fig10a: range query (Sequential) — avg time/record (µs)",
        &["latency", "HART", "WOART", "ART+CoW", "FPTree"],
    );
    for lat in LatencyConfig::paper_configs() {
        let mut row = vec![lat.label()];
        for kind in TreeKind::ALL {
            row.push(format!(
                "{:.3}",
                run_range_query(kind, lat, &keys, a.query_n)
            ));
        }
        rep.row(row);
    }
    rep.print();
    rep.write_csv(&a.out, "fig10a.csv").expect("write csv");
}

fn fig10b(a: &Args) {
    let keys = hart_workloads::sequential(a.records);
    let mut rep = Report::new(
        "fig10b: memory consumption (Sequential) — MiB",
        &["tree", "DRAM_MiB", "PM_MiB"],
    );
    for kind in TreeKind::ALL {
        let tree = kind.build(pool_config(LatencyConfig::dram(), keys.len()));
        for k in &keys {
            tree.insert(k, &hart_workloads::value_for(k))
                .expect("insert");
        }
        let m = tree.memory_stats();
        rep.row(vec![
            kind.label().to_string(),
            format!("{:.2}", m.dram_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.2}", m.pm_bytes as f64 / (1024.0 * 1024.0)),
        ]);
    }
    rep.print();
    rep.write_csv(&a.out, "fig10b.csv").expect("write csv");
}

fn fig10c(a: &Args) {
    let mut rep = Report::new(
        "fig10c: build vs recovery (Random @ 300/100) — seconds",
        &[
            "records",
            "HART_build",
            "HART_recovery",
            "FPTree_build",
            "FPTree_recovery",
        ],
    );
    for &n in &a.scale {
        let keys = hart_workloads::random(n, a.seed);
        let (hb, hr) = hart_build_recover(LatencyConfig::c300_100(), &keys);
        let (fb, fr) = fptree_build_recover(LatencyConfig::c300_100(), &keys);
        rep.row(vec![
            n.to_string(),
            format!("{:.3}", hb.as_secs_f64()),
            format!("{:.3}", hr.as_secs_f64()),
            format!("{:.3}", fb.as_secs_f64()),
            format!("{:.3}", fr.as_secs_f64()),
        ]);
    }
    rep.print();
    rep.write_csv(&a.out, "fig10c.csv").expect("write csv");
}

fn fig10d(a: &Args) {
    let keys = hart_workloads::random(a.records, a.seed);
    let mut rep = Report::new(
        "fig10d: HART scalability (Random @ 300/100) — MIOPS",
        &["threads", "insert", "search", "update", "delete"],
    );
    for &t in &a.threads {
        let mut row = vec![t.to_string()];
        for op in ["insert", "search", "update", "delete"] {
            let miops = hart_scalability(LatencyConfig::c300_100(), &keys, t, op);
            eprintln!("[fig10d] threads={t} {op}: {miops:.2} MIOPS");
            row.push(format!("{miops:.3}"));
        }
        rep.row(row);
    }
    rep.print();
    rep.write_csv(&a.out, "fig10d.csv").expect("write csv");
}

/// Read-path ablation (beyond the paper, DESIGN.md §Concurrency):
/// read-only lookup throughput with the version-validated lock-free path
/// versus the original read-locked path, across thread counts.
fn readpath(a: &Args) {
    let keys = hart_workloads::random(a.records, a.seed);
    let lat = LatencyConfig::c300_100();
    let mut rep = Report::new(
        "readpath: search throughput, locked vs optimistic (Random @ 300/100) — MIOPS",
        &["threads", "locked", "optimistic", "speedup"],
    );
    for &t in &a.threads {
        let locked = hart_scalability_cfg(
            lat,
            &keys,
            t,
            "search",
            hart::HartConfig::with_locked_reads(),
        );
        let opt = hart_scalability_cfg(lat, &keys, t, "search", hart::HartConfig::default());
        eprintln!("[readpath] threads={t}: locked {locked:.2} vs optimistic {opt:.2} MIOPS");
        rep.row(vec![
            t.to_string(),
            format!("{locked:.3}"),
            format!("{opt:.3}"),
            format!("{:.2}", opt / locked.max(f64::MIN_POSITIVE)),
        ]);
    }
    rep.print();
    rep.write_csv(&a.out, "readpath.csv").expect("write csv");
}

/// Directory-resizing ablation (beyond the paper, DESIGN.md §Resizing):
/// search throughput with the bucket array pinned at the default 4096
/// (`resize_threshold = 0`) versus load-aware doubling, across key counts.
/// Runs with `k_h = 3` so the shard count tracks the key count — with the
/// paper's `k_h = 2` at most ~3.8 k shards exist and the default directory
/// never needs to grow (which is why resizing changes nothing for the
/// fig4–10 experiments).
fn rehash(a: &Args) {
    let lat = LatencyConfig::c300_100();
    let mut rep = Report::new(
        "rehash: search MIOPS, fixed vs resizing directory, fingerprint probes vs full-key kill-switch (k_h=3, Random @ 300/100, 1 thread, best of 3 passes)",
        &[
            "records",
            "fixed-4096",
            "resizing",
            "speedup",
            "fixed-fullkey",
            "fixed-fp-speedup",
            "rz-fullkey",
            "rz-fp-speedup",
            "buckets",
            "grows",
        ],
    );
    let kh3 = |threshold, full_key_probes| hart::HartConfig {
        hash_key_len: 3,
        resize_threshold: threshold,
        full_key_probes,
        ..hart::HartConfig::default()
    };
    // Preload once per config, then time three search passes over a
    // fixed query subsample (uniform stride over the uniform-random key
    // set, capped at 200 k queries so the slowest configuration — full-key
    // probes over an undersized directory's multi-thousand-entry stash
    // chains — stays measurable) and keep the fastest pass: back-to-back
    // passes over an identical tree differ only by scheduler/cache
    // interference, so best-of suppresses host noise without favoring any
    // configuration.
    use hart_kv::PersistentIndex;
    let run = |cfg: hart::HartConfig, keys: &[hart_kv::Key], queries: &[&hart_kv::Key]| {
        let pool = std::sync::Arc::new(hart_pm::PmemPool::new(bench::pool_config(lat, keys.len())));
        let tree = hart::Hart::create(pool, cfg).expect("create");
        for k in keys {
            tree.insert(k, &hart_workloads::value_for(k))
                .expect("preload");
        }
        let mut best = f64::MIN_POSITIVE;
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            for k in queries {
                std::hint::black_box(tree.search(k).expect("search"));
            }
            best = best.max(queries.len() as f64 / t0.elapsed().as_secs_f64() / 1e6);
        }
        (best, tree.hash_bucket_count(), tree.hash_resize_count())
    };
    for &n in &a.scale {
        let keys = hart_workloads::random(n, a.seed);
        let queries: Vec<&hart_kv::Key> = keys.iter().step_by((n / 200_000).max(1)).collect();
        let (fixed, _, _) = run(kh3(0, false), &keys, &queries);
        let (resizing, buckets, grows) = run(kh3(1, false), &keys, &queries);
        // The `full_key_probes` kill-switch ablation, once per directory
        // regime: the fixed directory (long stash chains — the scans the
        // fingerprint filter exists for) and the resizing one (short
        // post-growth chains, which skip the filter below FP_SCAN_MIN and
        // should measure as a wash).
        let (fixed_fk, _, _) = run(kh3(0, true), &keys, &queries);
        let (rz_fk, _, _) = run(kh3(1, true), &keys, &queries);
        eprintln!(
            "[rehash] n={n}: fixed {fixed:.2}/{fixed_fk:.2} vs resizing {resizing:.2}/{rz_fk:.2} MIOPS (fp/fullkey; {buckets} buckets, {grows} grows)"
        );
        rep.row(vec![
            n.to_string(),
            format!("{fixed:.3}"),
            format!("{resizing:.3}"),
            format!("{:.2}", resizing / fixed.max(f64::MIN_POSITIVE)),
            format!("{fixed_fk:.3}"),
            format!("{:.2}", fixed / fixed_fk.max(f64::MIN_POSITIVE)),
            format!("{rz_fk:.3}"),
            format!("{:.2}", resizing / rz_fk.max(f64::MIN_POSITIVE)),
            buckets.to_string(),
            grows.to_string(),
        ]);
    }
    rep.print();
    rep.write_csv(&a.out, "rehash.csv").expect("write csv");
}

/// Extras: the full FAST'17 radix trio (WORT, WOART, ART+CoW) against
/// HART and FPTree — beyond the paper's figure set (DESIGN.md §6).
fn extras(a: &Args) {
    let keys = hart_workloads::random(a.records, a.seed);
    let mut rep = Report::new(
        "extras: radix-family comparison incl. WORT — avg time/record (µs)",
        &[
            "latency", "op", "HART", "WORT", "WOART", "ART+CoW", "FPTree",
        ],
    );
    for lat in [
        hart_pm::LatencyConfig::c300_100(),
        hart_pm::LatencyConfig::c300_300(),
    ] {
        let results: Vec<BasicResult> = TreeKind::EXTENDED
            .iter()
            .map(|k| run_basic(*k, lat, &keys))
            .collect();
        for (op, pick) in [
            (
                "insert",
                (|r: &BasicResult| r.insert_us) as fn(&BasicResult) -> f64,
            ),
            ("search", |r| r.search_us),
            ("update", |r| r.update_us),
            ("delete", |r| r.delete_us),
        ] {
            let mut row = vec![lat.label(), op.to_string()];
            for r in &results {
                row.push(format!("{:.3}", pick(r)));
            }
            rep.row(row);
        }
    }
    rep.print();
    rep.write_csv(&a.out, "extras.csv").expect("write csv");
}

/// Event-count profile: *why* the figures look the way they do.
fn profile(a: &Args) {
    let keys = hart_workloads::random(a.records, a.seed);
    let lat = hart_pm::LatencyConfig::c300_300();
    let mut rep = Report::new(
        "profile: PM events per operation (Random @ 300/300, modeled)",
        &[
            "tree",
            "op",
            "persists/op",
            "pm_lines/op",
            "misses/op",
            "allocs/op",
            "extra_µs/op",
        ],
    );
    for kind in TreeKind::EXTENDED {
        let pr = run_profile(kind, lat, &keys);
        for (op, p) in [
            ("insert", pr.insert),
            ("search", pr.search),
            ("update", pr.update),
            ("delete", pr.delete),
        ] {
            rep.row(vec![
                kind.label().to_string(),
                op.to_string(),
                format!("{:.2}", p.persists),
                format!("{:.2}", p.pm_reads),
                format!("{:.2}", p.pm_misses),
                format!("{:.3}", p.allocs),
                format!("{:.3}", p.modeled_extra_us),
            ]);
        }
        eprintln!("[profile] {} done", kind.label());
    }
    rep.print();
    rep.write_csv(&a.out, "profile.csv").expect("write csv");
}

/// Tail latency: per-op percentiles — beyond the paper's averages.
fn tail(a: &Args) {
    let keys = hart_workloads::random(a.records, a.seed);
    let lat = hart_pm::LatencyConfig::c300_300();
    let mut rep = Report::new(
        "tail: per-op latency percentiles @ 300/300 (µs)",
        &["tree", "op", "mean", "p50", "p90", "p99", "p99.9", "max"],
    );
    for kind in TreeKind::ALL {
        let h = bench::run_basic_histograms(kind, lat, &keys);
        for (op, hist) in [
            ("insert", &h.insert),
            ("search", &h.search),
            ("update", &h.update),
            ("delete", &h.delete),
        ] {
            rep.row(vec![
                kind.label().to_string(),
                op.to_string(),
                format!("{:.2}", hist.mean_ns() / 1e3),
                format!("{:.2}", hist.quantile_ns(0.50) as f64 / 1e3),
                format!("{:.2}", hist.quantile_ns(0.90) as f64 / 1e3),
                format!("{:.2}", hist.quantile_ns(0.99) as f64 / 1e3),
                format!("{:.2}", hist.quantile_ns(0.999) as f64 / 1e3),
                format!("{:.2}", hist.max_ns() as f64 / 1e3),
            ]);
        }
        write_phase_snapshots(&a.out, "tail", kind, &h.snapshots);
        eprintln!("[tail] {} done", kind.label());
    }
    rep.print();
    rep.write_csv(&a.out, "tail.csv").expect("write csv");
}

/// Drop each per-phase [`bench::ObsSnapshot`] next to the CSVs as
/// `obs-<cmd>-<tree>-<phase>.json`.
fn write_phase_snapshots(
    out: &PathBuf,
    cmd: &str,
    kind: TreeKind,
    snaps: &[(&'static str, bench::ObsSnapshot)],
) {
    std::fs::create_dir_all(out).expect("create out dir");
    let tree: String = kind
        .label()
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase();
    for (phase, snap) in snaps {
        let path = out.join(format!("obs-{cmd}-{tree}-{phase}.json"));
        std::fs::write(&path, snap.to_json_pretty()).expect("write snapshot");
    }
}

/// Observability-overhead smoke gate (DESIGN.md §Observability): single
/// thread search throughput with the recorder enabled vs the
/// `HartConfig::without_observability()` kill-switch. Exits nonzero when
/// the enabled run is more than `--max-overhead-pct` slower — the CI
/// `obs-overhead` job runs this with the default 5 % budget (the design
/// target is 3 %; the gate leaves room for runner noise).
fn obsoverhead(a: &Args) {
    let keys = hart_workloads::random(a.records, a.seed);
    let lat = hart_pm::LatencyConfig::c300_100();
    let (on, off) = bench::obs_overhead_probe(lat, &keys, 5);
    let pct = (on / off - 1.0) * 100.0;
    let mut rep = Report::new(
        "obsoverhead: read-path cost of the observability layer (median of 5 tree pairs)",
        &["config", "secs", "Mops", "overhead_pct"],
    );
    let mops = |secs: f64| keys.len() as f64 / secs / 1e6;
    rep.row(vec![
        "enabled".into(),
        format!("{on:.4}"),
        format!("{:.3}", mops(on)),
        format!("{pct:.2}"),
    ]);
    rep.row(vec![
        "disabled".into(),
        format!("{off:.4}"),
        format!("{:.3}", mops(off)),
        "0.00".into(),
    ]);
    rep.print();
    rep.write_csv(&a.out, "obs-overhead.csv")
        .expect("write csv");
    println!(
        "observability overhead: {pct:.2}% (budget {:.2}%)",
        a.max_overhead_pct
    );
    if pct > a.max_overhead_pct {
        eprintln!(
            "FAIL: observability overhead {pct:.2}% exceeds budget {:.2}%",
            a.max_overhead_pct
        );
        std::process::exit(1);
    }
}

/// Ordered-scan experiment (beyond the paper's figures, DESIGN.md §Scans):
/// the YCSB-E scan-heavy mix (95 % scans, Zipfian start keys, uniform
/// lengths 1..=100) across all five trees, plus the SIMD-vs-scalar
/// node-search ablation on a NODE16-heavy HART. The `speedup` column is
/// only meaningful on the `simd-vector` row (scalar-secs / vector-secs).
fn scan(a: &Args) {
    let mut rep = Report::new(
        "scan: YCSB-E scan-heavy mix + SIMD node-search ablation",
        &[
            "experiment",
            "latency",
            "tree",
            "avg_us",
            "scans",
            "rows_mean",
            "truncated",
            "speedup",
        ],
    );
    let w = YcsbWorkload::generate(MixSpec::ycsb_e(), a.records, a.records, a.seed);
    for lat in [LatencyConfig::dram(), LatencyConfig::c300_100()] {
        for kind in TreeKind::EXTENDED {
            let t0 = Instant::now();
            let r = run_scan_mix(kind, lat, &w);
            eprintln!(
                "[scan] ycsb-e / {} / {}: {:.3} µs/op ({} scans, {:.1} rows/scan) in {:.1}s",
                lat.label(),
                kind.label(),
                r.avg_us,
                r.scans,
                r.rows_mean,
                t0.elapsed().as_secs_f64()
            );
            rep.row(vec![
                "ycsb-e".into(),
                lat.label(),
                kind.label().to_string(),
                format!("{:.3}", r.avg_us),
                r.scans.to_string(),
                format!("{:.2}", r.rows_mean),
                r.truncated.to_string(),
                "".into(),
            ]);
        }
    }
    // SIMD ablation: same scan schedule over a NODE16-heavy tree, vector
    // vs forced-scalar node search. DRAM latency so the CPU-side search
    // cost under test is not drowned by injected PM stalls.
    let n = a.records.min(200_000);
    let scans = 2000.min(n);
    let (vec_s, scal_s) = simd_scan_probe(LatencyConfig::dram(), n, scans);
    let per_scan_us = |secs: f64| secs * 1e6 / scans as f64;
    let speedup = scal_s / vec_s.max(f64::MIN_POSITIVE);
    eprintln!(
        "[scan] simd: vector {:.3} µs/scan vs scalar {:.3} µs/scan ({speedup:.2}x, vector unit: {})",
        per_scan_us(vec_s),
        per_scan_us(scal_s),
        bench::HAVE_VECTOR
    );
    rep.row(vec![
        "simd-vector".into(),
        "DRAM".into(),
        "HART".into(),
        format!("{:.3}", per_scan_us(vec_s)),
        scans.to_string(),
        "".into(),
        "".into(),
        format!("{speedup:.2}"),
    ]);
    rep.row(vec![
        "simd-scalar".into(),
        "DRAM".into(),
        "HART".into(),
        format!("{:.3}", per_scan_us(scal_s)),
        scans.to_string(),
        "".into(),
        "".into(),
        "1.00".into(),
    ]);
    // Kernel-granularity ablation: whole-scan timing buries the ~ns node
    // search under ~µs of record loads, so also time the two vectorized
    // kernels directly through the same runtime dispatch (avg_us is per
    // kernel call; `scans` is the call count).
    let iters = 2_000_000usize;
    let k = simd_kernel_probe(iters);
    eprintln!(
        "[scan] simd kernels: find_key16 {:.2} ns vs {:.2} ns ({:.2}x), \
         next_edge48 {:.2} ns vs {:.2} ns ({:.2}x)",
        k.n16_vec_ns,
        k.n16_scal_ns,
        k.n16_scal_ns / k.n16_vec_ns.max(f64::MIN_POSITIVE),
        k.n48_vec_ns,
        k.n48_scal_ns,
        k.n48_scal_ns / k.n48_vec_ns.max(f64::MIN_POSITIVE),
    );
    for (label, vec_ns, scal_ns) in [
        ("simd-kernel-n16", k.n16_vec_ns, k.n16_scal_ns),
        ("simd-kernel-n48", k.n48_vec_ns, k.n48_scal_ns),
    ] {
        rep.row(vec![
            label.into(),
            "DRAM".into(),
            "HART".into(),
            format!("{:.5}", vec_ns / 1e3),
            iters.to_string(),
            "".into(),
            "".into(),
            format!("{:.2}", scal_ns / vec_ns.max(f64::MIN_POSITIVE)),
        ]);
    }
    rep.print();
    rep.write_csv(&a.out, "scan.csv").expect("write csv");
}

/// Server front-end ablation (DESIGN.md §Server): YCSB-style mixes over
/// real sockets against `hart-server`, per-op persist vs group commit at
/// each `--batches` size, all at `--conns` concurrent pipelining
/// connections under injected PM latency (600/300 — the harshest paper
/// config, where fence amortization matters most). The `speedup` column
/// is each row's throughput relative to the per-op row of the same mix.
fn server_bench(a: &Args) {
    let mut rep = Report::new(
        &format!(
            "server: group-commit ablation over sockets — {} conns, 600/300 latency",
            a.conns
        ),
        &[
            "mode",
            "mix",
            "conns",
            "workers",
            "ops",
            "secs",
            "kops_s",
            "speedup",
            "flushes",
            "persists_deferred",
            "occupancy_mean",
            "busy",
        ],
    );
    let ops_per_conn = (a.query_n / a.conns).max(100);
    for (mix_label, read_pct) in [("write", 0u32), ("ycsb-a", 50u32)] {
        let mut baseline_kops = 0.0;
        let modes: Vec<(String, Option<usize>)> = std::iter::once(("per-op".to_string(), None))
            .chain(a.batches.iter().map(|&b| (format!("group-{b}"), Some(b))))
            .collect();
        for (label, group_max_ops) in modes {
            let spec = ServerMixSpec {
                group_max_ops,
                window_us: 100,
                conns: a.conns,
                workers: 4,
                ops_per_conn,
                read_pct,
                latency: LatencyConfig::c600_300(),
                pipeline: 32,
            };
            let t0 = Instant::now();
            let r = run_server_mix(spec);
            eprintln!(
                "[server] {mix_label}/{label}: {:.1} kops/s in {:.1}s",
                r.kops,
                t0.elapsed().as_secs_f64()
            );
            if group_max_ops.is_none() {
                baseline_kops = r.kops;
            }
            let speedup = if baseline_kops > 0.0 {
                r.kops / baseline_kops
            } else {
                1.0
            };
            rep.row(vec![
                label,
                mix_label.to_string(),
                a.conns.to_string(),
                spec.workers.to_string(),
                r.ops.to_string(),
                format!("{:.3}", r.secs),
                format!("{:.1}", r.kops),
                format!("{speedup:.2}"),
                r.flushes.to_string(),
                r.persists_deferred.to_string(),
                format!("{:.1}", r.occupancy_mean),
                r.busy.to_string(),
            ]);
        }
    }
    rep.print();
    rep.write_csv(&a.out, "server.csv").expect("write csv");
}

fn summary(a: &Args, grid: &Grid) {
    // Best-case speedups of HART vs each competitor per op (§I's headline).
    let mut rep = Report::new(
        "summary: best-case HART speedup over each competitor (×)",
        &["competitor", "insert", "search", "update", "delete"],
    );
    for (ci, comp) in [(1usize, "WOART"), (2, "ART+CoW"), (3, "FPTree")] {
        let mut best = [0.0f64; 4];
        for cell in grid.values() {
            let hart = &cell[0].1;
            let other = &cell[ci].1;
            for (i, (h, o)) in [
                (hart.insert_us, other.insert_us),
                (hart.search_us, other.search_us),
                (hart.update_us, other.update_us),
                (hart.delete_us, other.delete_us),
            ]
            .iter()
            .enumerate()
            {
                if *h > 0.0 {
                    best[i] = best[i].max(o / h);
                }
            }
        }
        rep.row(vec![
            comp.to_string(),
            format!("{:.1}", best[0]),
            format!("{:.1}", best[1]),
            format!("{:.1}", best[2]),
            format!("{:.1}", best[3]),
        ]);
    }
    rep.print();
    rep.write_csv(&a.out, "summary.csv").expect("write csv");
}

fn main() {
    let a = parse_args();
    println!(
        "HART reproduction harness — cmd={} records={} dict={} out={}",
        a.cmd,
        a.records,
        a.dict_records,
        a.out.display()
    );
    let t0 = Instant::now();
    match a.cmd.as_str() {
        "fig4" | "fig5" | "fig6" | "fig7" | "figs4-7" => {
            let grid = run_grid(&a);
            emit_op_figure(&a, &grid, "fig4", "insertion", |r| r.insert_us);
            emit_op_figure(&a, &grid, "fig5", "search", |r| r.search_us);
            emit_op_figure(&a, &grid, "fig6", "update", |r| r.update_us);
            emit_op_figure(&a, &grid, "fig7", "deletion", |r| r.delete_us);
            summary(&a, &grid);
        }
        "fig8" => fig8(&a),
        "readpath" => readpath(&a),
        "rehash" => rehash(&a),
        "extras" => extras(&a),
        "scan" => scan(&a),
        "profile" => profile(&a),
        "tail" => tail(&a),
        "obsoverhead" => obsoverhead(&a),
        "fig9" => fig9(&a),
        "fig10a" => fig10a(&a),
        "fig10b" => fig10b(&a),
        "fig10c" => fig10c(&a),
        "fig10d" => fig10d(&a),
        "server" => server_bench(&a),
        "all" => {
            let grid = run_grid(&a);
            emit_op_figure(&a, &grid, "fig4", "insertion", |r| r.insert_us);
            emit_op_figure(&a, &grid, "fig5", "search", |r| r.search_us);
            emit_op_figure(&a, &grid, "fig6", "update", |r| r.update_us);
            emit_op_figure(&a, &grid, "fig7", "deletion", |r| r.delete_us);
            fig8(&a);
            fig9(&a);
            fig10a(&a);
            fig10b(&a);
            fig10c(&a);
            fig10d(&a);
            readpath(&a);
            rehash(&a);
            scan(&a);
            summary(&a, &grid);
        }
        other => {
            eprintln!("unknown command {other}");
            eprintln!(
                "commands: fig4 fig5 fig6 fig7 fig8 fig9 fig10a fig10b fig10c fig10d readpath rehash extras scan tail obsoverhead profile server all"
            );
            std::process::exit(2);
        }
    }
    println!("\ntotal harness time: {:.1}s", t0.elapsed().as_secs_f64());
}
