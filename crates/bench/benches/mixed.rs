//! Criterion benchmark for the YCSB-style mixed workloads of Fig. 9
//! (Read-Intensive 10/70/10/10, Read-Modified-Write 50/50,
//! Write-Intensive 40/20/40; Uniform request distribution).

use bench::{pool_config, TreeKind};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hart_pm::LatencyConfig;
use hart_workloads::{MixSpec, OpKind, YcsbWorkload};
use std::time::Duration;

const PRELOAD: usize = 10_000;
const OPS: usize = 10_000;

fn bench_mixed(c: &mut Criterion) {
    for spec in MixSpec::ALL {
        let w = YcsbWorkload::generate(spec, PRELOAD, OPS, 7);
        for lat in [LatencyConfig::c300_100(), LatencyConfig::c300_300()] {
            for kind in TreeKind::ALL {
                let id = format!("mixed/{}/{}/{}", spec.label, kind.label(), lat.label());
                c.bench_function(&id, |b| {
                    b.iter_batched(
                        || {
                            let tree = kind.build(pool_config(lat, PRELOAD + OPS));
                            for (k, v) in &w.preload {
                                tree.insert(k, v).unwrap();
                            }
                            tree
                        },
                        |tree| {
                            for op in &w.ops {
                                match op.kind {
                                    OpKind::Insert => tree.insert(&op.key, &op.value).unwrap(),
                                    OpKind::Search => {
                                        std::hint::black_box(tree.search(&op.key).unwrap());
                                    }
                                    OpKind::Update => {
                                        tree.update(&op.key, &op.value).unwrap();
                                    }
                                    OpKind::Delete => {
                                        tree.remove(&op.key).unwrap();
                                    }
                                }
                            }
                            tree
                        },
                        BatchSize::PerIteration,
                    )
                });
            }
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_mixed
}
criterion_main!(benches);
