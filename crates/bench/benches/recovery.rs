//! Criterion benchmark for the recovery experiment of Fig. 10c: rebuild
//! times of HART (full reinsertion of PM leaves into DRAM structures) vs
//! FPTree (linked-leaf walk), against their build times.

use bench::pool_config;
use criterion::{criterion_group, criterion_main, Criterion};
use hart::{Hart, HartConfig};
use hart_fptree::FpTree;
use hart_kv::PersistentIndex;
use hart_pm::{LatencyConfig, PmemPool};
use hart_workloads::{random, value_for};
use std::sync::Arc;
use std::time::Duration;

const N: usize = 50_000;

fn bench_recovery(c: &mut Criterion) {
    let keys = random(N, 42);
    let lat = LatencyConfig::c300_100();

    // HART: build once, then benchmark recovery from the same pool (opening
    // is idempotent — logs are clean, bitmaps unchanged).
    let hart_pool = Arc::new(PmemPool::new(pool_config(lat, N)));
    {
        let tree = Hart::create(Arc::clone(&hart_pool), HartConfig::default()).unwrap();
        for k in &keys {
            tree.insert(k, &value_for(k)).unwrap();
        }
    }
    c.bench_function("recovery/HART", |b| {
        b.iter(|| {
            let t = Hart::recover(Arc::clone(&hart_pool), HartConfig::default()).unwrap();
            assert_eq!(t.len(), N);
            t
        })
    });
    // Parallel variant (DESIGN.md §6): the live-leaf list is striped
    // round-robin across workers so consecutively allocated leaves — which
    // share hot shards — spread across all of them instead of serializing
    // one worker on a few shard write locks. Needs a multicore host for
    // wall-clock speedup over `recovery/HART`.
    for threads in [2usize, 4] {
        c.bench_function(format!("recovery/HART-parallel{threads}"), |b| {
            b.iter(|| {
                let t =
                    Hart::recover_parallel(Arc::clone(&hart_pool), HartConfig::default(), threads)
                        .unwrap();
                assert_eq!(t.len(), N);
                t
            })
        });
    }

    let fp_pool = Arc::new(PmemPool::new(pool_config(lat, N)));
    {
        let tree = FpTree::create(Arc::clone(&fp_pool)).unwrap();
        for k in &keys {
            tree.insert(k, &value_for(k)).unwrap();
        }
    }
    c.bench_function("recovery/FPTree", |b| {
        b.iter(|| {
            let t = FpTree::recover(Arc::clone(&fp_pool)).unwrap();
            assert_eq!(t.len(), N);
            t
        })
    });

    // Build times for the ratio (Fig. 10c plots both).
    c.bench_function("build/HART", |b| {
        b.iter(|| {
            let pool = Arc::new(PmemPool::new(pool_config(lat, N)));
            let tree = Hart::create(pool, HartConfig::default()).unwrap();
            for k in &keys {
                tree.insert(k, &value_for(k)).unwrap();
            }
            tree
        })
    });
    c.bench_function("build/FPTree", |b| {
        b.iter(|| {
            let pool = Arc::new(PmemPool::new(pool_config(lat, N)));
            let tree = FpTree::create(pool).unwrap();
            for k in &keys {
                tree.insert(k, &value_for(k)).unwrap();
            }
            tree
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_recovery
}
criterion_main!(benches);
