//! Criterion benchmark for Fig. 10d: HART throughput scaling across
//! threads (per-ART reader-writer locks; writes on distinct ARTs proceed
//! in parallel).

use bench::hart_scalability;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hart_pm::LatencyConfig;
use hart_workloads::random;
use std::time::Duration;

const N: usize = 50_000;

fn bench_scalability(c: &mut Criterion) {
    let keys = random(N, 42);
    let max_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    for op in ["insert", "search", "update", "delete"] {
        let mut group = c.benchmark_group(format!("scalability/{op}"));
        group.throughput(Throughput::Elements(N as u64));
        for threads in [1usize, 2, 4, 8, 16] {
            if threads > max_threads * 2 {
                continue; // pointless oversubscription on small hosts
            }
            group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
                b.iter(|| hart_scalability(LatencyConfig::c300_100(), &keys, t, op))
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_scalability
}
criterion_main!(benches);
