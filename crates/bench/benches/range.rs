//! Criterion benchmark for the range-query experiment of Fig. 10a:
//! Sequential keys; the ART-based trees answer a range by per-key point
//! searches (as the paper implemented them), FPTree by a linked-leaf scan.

use bench::{pool_config, TreeKind};
use criterion::{criterion_group, criterion_main, Criterion};
use hart_pm::LatencyConfig;
use hart_workloads::{sequential, value_for};
use std::time::Duration;

const N: usize = 20_000;
const QUERY: usize = 10_000;

fn bench_range(c: &mut Criterion) {
    let keys = sequential(N);
    for lat in [LatencyConfig::c300_100(), LatencyConfig::c300_300()] {
        for kind in TreeKind::ALL {
            let tree = kind.build(pool_config(lat, N));
            for k in &keys {
                tree.insert(k, &value_for(k)).unwrap();
            }
            let id = format!("range/{}/{}", kind.label(), lat.label());
            c.bench_function(&id, |b| {
                b.iter(|| match kind {
                    TreeKind::FpTree => {
                        std::hint::black_box(tree.range(&keys[0], &keys[QUERY - 1]).unwrap()).len()
                    }
                    _ => std::hint::black_box(tree.multi_get(&keys[..QUERY]).unwrap()).len(),
                })
            });

            // Ablation: HART's ordered-scan extension vs its paper-style
            // per-key loop.
            if kind == TreeKind::Hart {
                let id = format!("range/HART-ordered-scan/{}", lat.label());
                c.bench_function(&id, |b| {
                    b.iter(|| {
                        std::hint::black_box(tree.range(&keys[0], &keys[QUERY - 1]).unwrap()).len()
                    })
                });
            }
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_range
}
criterion_main!(benches);
