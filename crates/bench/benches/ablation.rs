//! Ablation benchmarks for HART's design choices (DESIGN.md §6):
//!
//! * **Hash-key length `k_h`** — 0 turns HART into one big ART behind a
//!   single lock; the paper fixes `k_h = 2`. Sweeping 0–3 shows the
//!   hash-directory contribution (§III-A.1's `k − k_h + 1` complexity
//!   argument).
//! * **Allocator-overhead sensitivity** — HART amortizes raw PM
//!   allocations 56:1 through EPallocator, so its insert latency should be
//!   nearly flat as the modeled general-allocator cost grows, while WOART
//!   (one raw allocation per leaf/value) degrades linearly (§III-A.4).

use bench::pool_config;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use hart::{Hart, HartConfig};
use hart_kv::PersistentIndex;
use hart_pm::{LatencyConfig, PmemPool, PoolConfig};
use hart_woart::Woart;
use hart_workloads::{random, value_for};
use std::sync::Arc;
use std::time::Duration;

const N: usize = 10_000;

fn bench_hash_key_len(c: &mut Criterion) {
    let keys = random(N, 42);
    let lat = LatencyConfig::c300_300();
    let mut group = c.benchmark_group("ablation/hash_key_len");
    for kh in [0usize, 1, 2, 3] {
        group.bench_with_input(BenchmarkId::new("insert", kh), &kh, |b, &kh| {
            b.iter_batched(
                || {
                    let pool = Arc::new(PmemPool::new(pool_config(lat, N)));
                    Hart::create(pool, HartConfig::with_hash_key_len(kh)).unwrap()
                },
                |tree| {
                    for k in &keys {
                        tree.insert(k, &value_for(k)).unwrap();
                    }
                    tree
                },
                BatchSize::PerIteration,
            )
        });
        // Search over a preloaded tree.
        let pool = Arc::new(PmemPool::new(pool_config(lat, N)));
        let tree = Hart::create(pool, HartConfig::with_hash_key_len(kh)).unwrap();
        for k in &keys {
            tree.insert(k, &value_for(k)).unwrap();
        }
        group.bench_with_input(BenchmarkId::new("search", kh), &kh, |b, _| {
            b.iter(|| {
                for k in &keys {
                    std::hint::black_box(tree.search(k).unwrap());
                }
            })
        });
    }
    group.finish();
}

fn bench_alloc_overhead(c: &mut Criterion) {
    let keys = random(N, 42);
    let mut group = c.benchmark_group("ablation/alloc_overhead");
    for overhead_ns in [0u64, 500, 1500, 3000] {
        let cfg = || PoolConfig {
            alloc_overhead_ns: overhead_ns,
            latency: LatencyConfig::c300_100(),
            ..pool_config(LatencyConfig::c300_100(), N)
        };
        group.bench_with_input(
            BenchmarkId::new("HART-insert", overhead_ns),
            &overhead_ns,
            |b, _| {
                b.iter_batched(
                    || Hart::create(Arc::new(PmemPool::new(cfg())), HartConfig::default()).unwrap(),
                    |tree| {
                        for k in &keys {
                            tree.insert(k, &value_for(k)).unwrap();
                        }
                        tree
                    },
                    BatchSize::PerIteration,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("WOART-insert", overhead_ns),
            &overhead_ns,
            |b, _| {
                b.iter_batched(
                    || Woart::create(Arc::new(PmemPool::new(cfg()))).unwrap(),
                    |tree| {
                        for k in &keys {
                            tree.insert(k, &value_for(k)).unwrap();
                        }
                        tree
                    },
                    BatchSize::PerIteration,
                )
            },
        );
    }
    group.finish();
}

fn bench_selective_persistence(c: &mut Criterion) {
    // §III-A.2 quantified: the same HART with internal-node persistence
    // costs charged (as if inner nodes were PM-resident) vs the paper's
    // selective design.
    let keys = random(N, 42);
    let lat = LatencyConfig::c300_300();
    let mut group = c.benchmark_group("ablation/selective_persistence");
    for (label, cfg) in [
        ("selective (paper)", HartConfig::default()),
        (
            "persist-all (off)",
            HartConfig::without_selective_persistence(),
        ),
    ] {
        group.bench_function(BenchmarkId::new("insert", label), |b| {
            b.iter_batched(
                || Hart::create(Arc::new(PmemPool::new(pool_config(lat, N))), cfg).unwrap(),
                |tree| {
                    for k in &keys {
                        tree.insert(k, &value_for(k)).unwrap();
                    }
                    tree
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_read_path(c: &mut Criterion) {
    // DESIGN.md §Concurrency quantified: version-validated lock-free
    // lookups vs the original read-locked path, single- and multi-threaded
    // over a preloaded tree. The harness `readpath` command produces the
    // thread-sweep CSV; this group tracks regressions per commit.
    let keys = random(N, 42);
    let lat = LatencyConfig::c300_100();
    let mut group = c.benchmark_group("ablation/read_path");
    for (label, cfg) in [
        ("optimistic (default)", HartConfig::default()),
        ("locked (kill-switch)", HartConfig::with_locked_reads()),
    ] {
        let pool = Arc::new(PmemPool::new(pool_config(lat, N)));
        let tree = Arc::new(Hart::create(pool, cfg).unwrap());
        for k in &keys {
            tree.insert(k, &value_for(k)).unwrap();
        }
        group.bench_function(BenchmarkId::new("search-1t", label), |b| {
            b.iter(|| {
                for k in &keys {
                    std::hint::black_box(tree.search(k).unwrap());
                }
            })
        });
        group.bench_function(BenchmarkId::new("search-4t", label), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for part in keys.chunks(keys.len().div_ceil(4)) {
                        let tree = Arc::clone(&tree);
                        s.spawn(move || {
                            for k in part {
                                std::hint::black_box(tree.search(k).unwrap());
                            }
                        });
                    }
                })
            })
        });
    }
    group.finish();
}

fn bench_rehash(c: &mut Criterion) {
    // DESIGN.md §Resizing quantified: search cost under a directory pinned
    // at a small bucket count (every lookup walks an O(load-factor) chain)
    // vs one that doubled its way to load factor ≤ 1 during the preload.
    // `k_h = 3` makes the shard count track the key count, so the fixed
    // directory is genuinely overloaded at this N. The harness `rehash`
    // command produces the key-count sweep CSV; this group tracks
    // regressions per commit.
    let keys = random(N, 42);
    let lat = LatencyConfig::c300_100();
    let mut group = c.benchmark_group("ablation/rehash");
    let kh3 = |initial, threshold| HartConfig {
        hash_key_len: 3,
        ..HartConfig::with_directory(initial, threshold)
    };
    for (label, cfg) in [
        ("fixed-256", kh3(256, 0)),
        ("resizing (default threshold)", kh3(256, 1)),
    ] {
        let pool = Arc::new(PmemPool::new(pool_config(lat, N)));
        let tree = Hart::create(pool, cfg).unwrap();
        for k in &keys {
            tree.insert(k, &value_for(k)).unwrap();
        }
        group.bench_function(BenchmarkId::new("search", label), |b| {
            b.iter(|| {
                for k in &keys {
                    std::hint::black_box(tree.search(k).unwrap());
                }
            })
        });
    }
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    // DESIGN.md §Scans quantified: (a) HART's directory-merge ordered scan
    // against every baseline's native ordered traversal at a fixed YCSB-E
    // style limit, and (b) the SIMD node search vs its forced-scalar
    // fallback on the same descent (the NODE16/NODE48 fast paths are
    // shared by point lookups and scan stepping). The harness `scan`
    // command produces the run-of-record CSV; this group tracks
    // regressions per commit.
    use bench::TreeKind;
    use hart_kv::{Key, MAX_KEY_LEN};

    let keys = random(N, 42);
    let lat = LatencyConfig::c300_100();
    let end = Key::new(&[0xFF; MAX_KEY_LEN]).unwrap();
    let starts: Vec<&Key> = keys.iter().step_by(16).collect();
    let mut group = c.benchmark_group("ablation/scan");
    for kind in TreeKind::EXTENDED {
        let tree = kind.build(pool_config(lat, N));
        for k in &keys {
            tree.insert(k, &value_for(k)).unwrap();
        }
        group.bench_function(BenchmarkId::new("scan-100", kind.label()), |b| {
            b.iter(|| {
                for s in &starts {
                    std::hint::black_box(tree.scan(s, &end, 100).unwrap());
                }
            })
        });
    }
    // SIMD vs scalar on a NODE16-heavy HART (16-symbol alphabet keys).
    let hexkeys: Vec<Key> = (0..N as u64)
        .map(|i| {
            let mut buf = [0u8; 8];
            for (j, b) in buf.iter_mut().enumerate() {
                *b = b"0123456789ABCDEF"[((i >> (4 * j)) & 0xF) as usize];
            }
            Key::new(&buf).unwrap()
        })
        .collect();
    let pool = Arc::new(PmemPool::new(pool_config(lat, N)));
    let tree = Hart::create(pool, HartConfig::default()).unwrap();
    for k in &hexkeys {
        tree.insert(k, &value_for(k)).unwrap();
    }
    let hexstarts: Vec<&Key> = hexkeys.iter().step_by(16).collect();
    for (label, scalar) in [("vector", false), ("scalar", true)] {
        group.bench_function(BenchmarkId::new("simd", label), |b| {
            hart_art::simd::force_scalar(scalar);
            b.iter(|| {
                for s in &hexstarts {
                    std::hint::black_box(tree.ordered_scan(s, &end, 100).unwrap());
                }
            });
            hart_art::simd::force_scalar(false);
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_hash_key_len, bench_alloc_overhead, bench_selective_persistence,
        bench_read_path, bench_rehash, bench_scan
}
criterion_main!(benches);
