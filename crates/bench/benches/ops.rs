//! Criterion micro-benchmarks for the four basic operations — the
//! per-operation view behind Figs. 4–7 (insertion, search, update,
//! deletion) at benchmark-friendly scale.
//!
//! The figure harness (`cargo run --release -p bench --bin harness`)
//! produces the full paper-sized grids; these benches give
//! statistically-tracked per-op latencies for regression detection.

use bench::{pool_config, TreeKind};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hart_kv::Value;
use hart_pm::LatencyConfig;
use hart_workloads::{random, value_for};
use std::time::Duration;

const N: usize = 10_000;

fn bench_ops(c: &mut Criterion) {
    let keys = random(N, 42);
    let values: Vec<Value> = keys.iter().map(value_for).collect();

    for lat in [LatencyConfig::c300_100(), LatencyConfig::c300_300()] {
        for kind in TreeKind::ALL {
            let tag = format!("{}/{}", kind.label(), lat.label());

            // Fig. 4: insertion — fresh tree per batch.
            c.bench_function(format!("ops_insert/{tag}"), |b| {
                b.iter_batched(
                    || kind.build(pool_config(lat, N)),
                    |tree| {
                        for (k, v) in keys.iter().zip(&values) {
                            tree.insert(k, v).unwrap();
                        }
                        tree
                    },
                    BatchSize::PerIteration,
                )
            });

            // Fig. 5: search — read-only over a preloaded tree.
            let tree = kind.build(pool_config(lat, N));
            for (k, v) in keys.iter().zip(&values) {
                tree.insert(k, v).unwrap();
            }
            c.bench_function(format!("ops_search/{tag}"), |b| {
                b.iter(|| {
                    for k in &keys {
                        std::hint::black_box(tree.search(k).unwrap());
                    }
                })
            });

            // Fig. 6: update — in-place value swaps on the preloaded tree.
            c.bench_function(format!("ops_update/{tag}"), |b| {
                let mut round = 0u64;
                b.iter(|| {
                    round += 1;
                    for k in &keys {
                        tree.update(k, &Value::from_u64(round)).unwrap();
                    }
                })
            });

            // Fig. 7: deletion — fresh preloaded tree per batch.
            c.bench_function(format!("ops_delete/{tag}"), |b| {
                b.iter_batched(
                    || {
                        let tree = kind.build(pool_config(lat, N));
                        for (k, v) in keys.iter().zip(&values) {
                            tree.insert(k, v).unwrap();
                        }
                        tree
                    },
                    |tree| {
                        for k in &keys {
                            tree.remove(k).unwrap();
                        }
                        tree
                    },
                    BatchSize::PerIteration,
                )
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_ops
}
criterion_main!(benches);
