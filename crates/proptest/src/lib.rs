//! A drop-in subset of the `proptest` API for offline builds.
//!
//! Implements random-input property testing with the same macro surface
//! the workspace's tests use (`proptest!`, `prop_oneof!`, `prop_assert!`,
//! `prop_assert_eq!`, `Just`, `any`, `collection::vec`, `prop_map`,
//! ranges as strategies) but **without shrinking**: a failing case reports
//! its seed and fully-formatted inputs instead of a minimized example.
//!
//! Case generation is deterministic: the base seed is fixed (overridable
//! via `PROPTEST_SEED`) and each case derives its own seed from it, so a
//! reported `case=<n> seed=<s>` line always reproduces with
//! `PROPTEST_SEED=<s>` and `with_cases(1)` — or simply by re-running the
//! test, since nothing is time- or thread-dependent.

use rand::rngs::StdRng;

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Runner configuration (subset: case count only).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (also produced by `prop_assert*` macros).
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure from any message.
    pub fn fail<M: Into<String>>(message: M) -> TestCaseError {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A generator of random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking; `generate`
/// produces the final value directly.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between equally-weighted alternatives (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from boxed alternatives; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        use rand::Rng as _;
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Integer ranges are strategies (`0u8..3`, `1..=10usize`, …).
impl<T: rand::UniformInt + 'static> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::Rng as _;
        rng.gen_range(self.clone())
    }
}

impl<T: rand::UniformInt + 'static> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::Rng as _;
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl<T: rand::Standard> Arbitrary for T {
    fn arbitrary(rng: &mut StdRng) -> T {
        use rand::Rng as _;
        rng.gen::<T>()
    }
}

/// Strategy for the whole domain of `T` — `any::<u64>()` etc.
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng as _;

    /// Size specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    /// See `proptest::collection::VecStrategy`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// One property case outcome.
pub type TestCaseResult = Result<(), TestCaseError>;

#[doc(hidden)]
pub mod __runtime {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Derive the seed of case `case` from `base`.
#[doc(hidden)]
pub fn case_seed(base: u64, case: u64) -> u64 {
    base ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(17)
}

/// The base seed: `PROPTEST_SEED` env var, or a fixed default.
#[doc(hidden)]
pub fn base_seed() -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.trim().parse().expect("PROPTEST_SEED must be a u64"),
        Err(_) => 0x9E37_79B9_7F4A_7C15,
    }
}

/// Run the body of one case, converting panics and `TestCaseError`s into
/// a report that names the case seed and its generated inputs.
#[doc(hidden)]
pub fn run_case<F>(case: u32, seed: u64, inputs: &str, body: F)
where
    F: FnOnce() -> TestCaseResult,
{
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            panic!("property failed at case={case} (PROPTEST_SEED={seed}):\n{e}\ninputs:\n{inputs}")
        }
        Err(payload) => {
            eprintln!("property panicked at case={case} (PROPTEST_SEED={seed}); inputs:\n{inputs}");
            resume_unwind(payload);
        }
    }
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// `assert!` that fails the property (with location) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            )));
        }
    };
}

/// `assert_eq!` that fails the property instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n at {}:{}",
                l, r, file!(), line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right` ({})\n  left: {:?}\n right: {:?}\n at {}:{}",
                format!($($fmt)+), l, r, file!(), line!()
            )));
        }
    }};
}

/// `assert_ne!` that fails the property instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}\n at {}:{}",
                l,
                file!(),
                line!()
            )));
        }
    }};
}

/// The property-test block macro. Each contained `fn name(x in strategy)`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let base = $crate::base_seed();
            for case in 0..config.cases {
                let seed = $crate::case_seed(base, case as u64);
                let mut __rng = <$crate::__runtime::StdRng as $crate::__runtime::SeedableRng>
                    ::seed_from_u64(seed);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                let __inputs = [$(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),+]
                    .join("\n");
                $crate::run_case(case, seed, &__inputs, move || {
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_in_range(v in vec(any::<u8>(), 3..10)) {
            prop_assert!(v.len() >= 3 && v.len() < 10, "len={}", v.len());
        }

        #[test]
        fn oneof_hits_every_arm(picks in vec(prop_oneof![Just(1u8), Just(2u8), Just(3u8)], 64..65)) {
            for p in &picks {
                prop_assert!((1..=3).contains(p));
            }
        }

        #[test]
        fn tuples_and_map_compose(pair in (0u8..10, any::<u64>()).prop_map(|(a, b)| (a as u64) + (b % 7)) ) {
            prop_assert!(pair < 17);
        }
    }

    #[test]
    fn deterministic_generation() {
        use crate::Strategy;
        use rand::{rngs::StdRng, SeedableRng};
        let s = vec(any::<u64>(), 5..6);
        let a = s.generate(&mut StdRng::seed_from_u64(9));
        let b = s.generate(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn failing_case_reports_seed() {
        let result = std::panic::catch_unwind(|| {
            crate::run_case(3, 42, "x = 1", || {
                Err(crate::TestCaseError::fail("intentional"))
            })
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("PROPTEST_SEED=42"), "{msg}");
        assert!(msg.contains("intentional"), "{msg}");
    }
}
