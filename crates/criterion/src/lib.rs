//! A drop-in subset of the `criterion` API for offline builds.
//!
//! The workspace's `harness = false` benches keep their sources unchanged;
//! this shim times them with a plain warm-up + fixed-sample loop and
//! prints one line per benchmark:
//!
//! ```text
//! bench ops_insert/HART ........ 1.234 ms/iter (min 1.101, max 1.402, 10 samples) 40.5 Melem/s
//! ```
//!
//! There is no statistical analysis, outlier rejection, or HTML report —
//! numbers are honest wall-clock means over the configured sample count.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batching modes for [`Bencher::iter_batched`]. Only `PerIteration` is
/// used by this workspace; the others behave identically here.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Fresh setup for every routine call.
    PerIteration,
    /// Criterion-compat alias (same behavior in this shim).
    SmallInput,
    /// Criterion-compat alias (same behavior in this shim).
    LargeInput,
}

/// Throughput annotation: scales the per-iteration time into elem/s or
/// bytes/s on the report line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (the group supplies the function name).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark id by `bench_function`.
pub trait IntoLabel {
    /// The display label.
    fn into_label(self) -> String;
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoLabel for &BenchmarkId {
    fn into_label(self) -> String {
        self.label.clone()
    }
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for &String {
    fn into_label(self) -> String {
        self.clone()
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    cfg: &'a Criterion,
    /// Mean seconds per iteration, collected by `iter*`.
    samples: Vec<f64>,
}

impl Bencher<'_> {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent.
        let warm_until = Instant::now() + self.cfg.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_started = Instant::now();
        while Instant::now() < warm_until {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_started.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Split the measurement budget into sample_size samples.
        let per_sample =
            self.cfg.measurement_time.as_secs_f64() / self.cfg.sample_size.max(1) as f64;
        let iters_per_sample = ((per_sample / per_iter.max(1e-9)) as u64).max(1);
        for _ in 0..self.cfg.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }

    /// Time `routine` on inputs produced by an untimed `setup`.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        // Warm-up with a single batch.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let mut per_iter = start.elapsed().as_secs_f64();
        if per_iter <= 0.0 {
            per_iter = 1e-9;
        }
        let per_sample =
            self.cfg.measurement_time.as_secs_f64() / self.cfg.sample_size.max(1) as f64;
        let iters_per_sample = ((per_sample / per_iter) as u64).clamp(1, 1_000_000);
        for _ in 0..self.cfg.sample_size {
            let mut timed = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                timed += start.elapsed();
            }
            self.samples
                .push(timed.as_secs_f64() / iters_per_sample as f64);
        }
    }
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn report(label: &str, samples: &[f64], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("bench {label:<48} <no samples>");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:.2} Melem/s", n as f64 / mean / 1e6),
        Some(Throughput::Bytes(n)) => format!("  {:.2} MiB/s", n as f64 / mean / (1 << 20) as f64),
        None => String::new(),
    };
    println!(
        "bench {label:<48} {}/iter (min {}, max {}, {} samples){rate}",
        human_time(mean),
        human_time(min),
        human_time(max),
        samples.len(),
    );
}

/// The harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Total timed budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Untimed warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Compat no-op (CLI args are ignored by the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl IntoLabel,
        mut f: F,
    ) -> &mut Self {
        let label = id.into_label();
        let mut b = Bencher {
            cfg: self,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&label, &b.samples, None);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Compat no-op: the shim prints as it goes.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl IntoLabel,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        let mut b = Bencher {
            cfg: self.parent,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&label, &b.samples, self.throughput);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: impl IntoLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        let mut b = Bencher {
            cfg: self.parent,
            samples: Vec::new(),
        };
        f(&mut b, input);
        report(&label, &b.samples, self.throughput);
        self
    }

    /// Close the group (compat no-op).
    pub fn finish(self) {}
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("smoke/iter", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 3, "routine should run many times, ran {calls}");
    }

    #[test]
    fn group_with_input_and_batched() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::PerIteration)
        });
        group.finish();
    }
}
